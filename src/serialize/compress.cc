#include "serialize/compress.h"

#include <cstring>

#include "serialize/binary_io.h"

namespace mmm {
namespace {

constexpr uint8_t kMagic[4] = {'M', 'M', 'Z', '1'};
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 16;

uint32_t HashWindow(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void WriteLength(std::vector<uint8_t>* out, size_t value) {
  // LZ4-style length extension: 255-continuation bytes.
  while (value >= 255) {
    out->push_back(255);
    value -= 255;
  }
  out->push_back(static_cast<uint8_t>(value));
}

}  // namespace

std::string_view CompressionName(Compression method) {
  switch (method) {
    case Compression::kNone:
      return "none";
    case Compression::kLz:
      return "lz";
    case Compression::kShuffleLz:
      return "shuffle-lz";
  }
  return "?";
}

Result<Compression> CompressionFromName(std::string_view name) {
  if (name == "none") return Compression::kNone;
  if (name == "lz") return Compression::kLz;
  if (name == "shuffle-lz") return Compression::kShuffleLz;
  return Status::InvalidArgument("unknown compression '", name, "'");
}

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 32);
  const size_t n = input.size();
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0xffffffffu);

  size_t anchor = 0;  // start of pending literals
  size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    // Find a match candidate via the hash table.
    uint32_t hash = HashWindow(input.data() + pos);
    uint32_t candidate = table[hash];
    table[hash] = static_cast<uint32_t>(pos);
    bool has_match = candidate != 0xffffffffu && pos - candidate <= kMaxOffset &&
                     std::memcmp(input.data() + candidate, input.data() + pos,
                                 kMinMatch) == 0;
    if (!has_match) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    size_t match_len = kMinMatch;
    while (pos + match_len < n &&
           input[candidate + match_len] == input[pos + match_len]) {
      ++match_len;
    }
    // Emit [token][literal ext][literals][offset][match ext].
    size_t literal_len = pos - anchor;
    size_t offset = pos - candidate;
    size_t match_code = match_len - kMinMatch;
    uint8_t token = static_cast<uint8_t>(
        (std::min<size_t>(literal_len, 15) << 4) |
        std::min<size_t>(match_code, 15));
    out.push_back(token);
    if (literal_len >= 15) WriteLength(&out, literal_len - 15);
    out.insert(out.end(), input.begin() + anchor, input.begin() + pos);
    out.push_back(static_cast<uint8_t>(offset));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (match_code >= 15) WriteLength(&out, match_code - 15);

    pos += match_len;
    anchor = pos;
    if (pos + kMinMatch <= n) {
      // Insert one more table entry inside the match for better coverage.
      table[HashWindow(input.data() + pos - 2)] = static_cast<uint32_t>(pos - 2);
    }
  }
  // Trailing literals.
  size_t literal_len = n - anchor;
  if (literal_len > 0 || n == 0) {
    uint8_t token = static_cast<uint8_t>(std::min<size_t>(literal_len, 15) << 4);
    out.push_back(token);
    if (literal_len >= 15) WriteLength(&out, literal_len - 15);
    out.insert(out.end(), input.begin() + anchor, input.end());
  }
  return out;
}

Result<std::vector<uint8_t>> LzDecompress(std::span<const uint8_t> input,
                                          size_t raw_size) {
  // `raw_size` may come from a corrupted header and must not drive
  // allocation: every extension byte of this token format yields at most
  // 255 output bytes, so no valid stream expands more than ~256x.
  if (raw_size > input.size() * 256 + 64) {
    return Status::Corruption("lz: implausible raw size ", raw_size, " for ",
                              input.size(), " compressed bytes");
  }
  std::vector<uint8_t> out;
  out.reserve(raw_size);
  size_t pos = 0;
  auto read_length = [&](size_t base) -> Result<size_t> {
    size_t value = base;
    if (base == 15) {
      while (true) {
        if (pos >= input.size()) {
          return Status::Corruption("lz: truncated length at ", pos);
        }
        uint8_t byte = input[pos++];
        value += byte;
        if (byte != 255) break;
      }
    }
    return value;
  };

  while (out.size() < raw_size) {
    if (pos >= input.size()) {
      return Status::Corruption("lz: truncated stream at ", pos);
    }
    uint8_t token = input[pos++];
    MMM_ASSIGN_OR_RETURN(size_t literal_len, read_length(token >> 4));
    if (pos + literal_len > input.size()) {
      return Status::Corruption("lz: literals run past end at ", pos);
    }
    if (out.size() + literal_len > raw_size) {
      return Status::Corruption("lz: output overflow in literals");
    }
    out.insert(out.end(), input.begin() + pos, input.begin() + pos + literal_len);
    pos += literal_len;
    if (out.size() >= raw_size) break;

    if (pos + 2 > input.size()) {
      return Status::Corruption("lz: truncated match offset at ", pos);
    }
    size_t offset = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz: invalid match offset ", offset);
    }
    MMM_ASSIGN_OR_RETURN(size_t match_code, read_length(token & 0x0f));
    size_t match_len = match_code + kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::Corruption("lz: output overflow in match");
    }
    // Byte-by-byte copy: overlapping matches (offset < match_len) are the
    // run-length case and must replicate already-written output.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz: decompressed ", out.size(), " bytes, want ",
                              raw_size);
  }
  return out;
}

std::vector<uint8_t> ShuffleBytes(std::span<const uint8_t> input, size_t stride) {
  if (stride <= 1) return {input.begin(), input.end()};
  const size_t groups = input.size() / stride;
  std::vector<uint8_t> out;
  out.reserve(input.size());
  for (size_t plane = 0; plane < stride; ++plane) {
    for (size_t g = 0; g < groups; ++g) {
      out.push_back(input[g * stride + plane]);
    }
  }
  out.insert(out.end(), input.begin() + groups * stride, input.end());
  return out;
}

std::vector<uint8_t> UnshuffleBytes(std::span<const uint8_t> input,
                                    size_t stride) {
  if (stride <= 1) return {input.begin(), input.end()};
  const size_t groups = input.size() / stride;
  std::vector<uint8_t> out(input.size());
  for (size_t plane = 0; plane < stride; ++plane) {
    for (size_t g = 0; g < groups; ++g) {
      out[g * stride + plane] = input[plane * groups + g];
    }
  }
  for (size_t i = groups * stride; i < input.size(); ++i) out[i] = input[i];
  return out;
}

std::vector<uint8_t> CompressBlob(Compression method,
                                  std::span<const uint8_t> input) {
  BinaryWriter header;
  header.WriteBytes(std::span<const uint8_t>(kMagic, 4));
  header.WriteUint8(static_cast<uint8_t>(method));
  header.WriteVarint(input.size());
  std::vector<uint8_t> out = header.TakeBuffer();

  switch (method) {
    case Compression::kNone:
      out.insert(out.end(), input.begin(), input.end());
      break;
    case Compression::kLz: {
      std::vector<uint8_t> payload = LzCompress(input);
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    }
    case Compression::kShuffleLz: {
      std::vector<uint8_t> shuffled = ShuffleBytes(input, 4);
      std::vector<uint8_t> payload = LzCompress(shuffled);
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    }
  }
  return out;
}

Result<std::vector<uint8_t>> DecompressBlob(std::span<const uint8_t> input) {
  if (input.size() < 5 || std::memcmp(input.data(), kMagic, 4) != 0) {
    // Raw legacy blob.
    return std::vector<uint8_t>(input.begin(), input.end());
  }
  BinaryReader reader(input);
  MMM_RETURN_NOT_OK(reader.Skip(4));
  MMM_ASSIGN_OR_RETURN(uint8_t method_byte, reader.ReadUint8());
  if (method_byte > static_cast<uint8_t>(Compression::kShuffleLz)) {
    return Status::Corruption("unknown compression method ", method_byte);
  }
  auto method = static_cast<Compression>(method_byte);
  MMM_ASSIGN_OR_RETURN(uint64_t raw_size, reader.ReadVarint());
  std::span<const uint8_t> payload = input.subspan(reader.offset());

  switch (method) {
    case Compression::kNone:
      if (payload.size() != raw_size) {
        return Status::Corruption("stored blob size mismatch");
      }
      return std::vector<uint8_t>(payload.begin(), payload.end());
    case Compression::kLz:
      return LzDecompress(payload, raw_size);
    case Compression::kShuffleLz: {
      MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> shuffled,
                           LzDecompress(payload, raw_size));
      return UnshuffleBytes(shuffled, 4);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace mmm
