
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/mmm_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/architecture.cc" "src/nn/CMakeFiles/mmm_nn.dir/architecture.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/architecture.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/mmm_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/mmm_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/mmm_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/mmm_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/nn/CMakeFiles/mmm_nn.dir/metrics.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/metrics.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/mmm_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/mmm_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/mmm_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/sequential.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/mmm_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/mmm_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
