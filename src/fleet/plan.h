#ifndef MMM_FLEET_PLAN_H_
#define MMM_FLEET_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/manager.h"

namespace mmm {

/// \brief One step of a fleet-lifecycle trace.
///
/// Operations refer to model sets by *save ordinal* — the index of the save
/// operation that (would have) created the set — never by store-assigned id.
/// Ordinals are assigned at plan-generation time and carried on the op, so
/// any subsequence of a plan (the unit the trace minimizer works on) keeps
/// every reference stable: dropping a save simply leaves later references to
/// its ordinal dangling, and the simulator skips those deterministically.
enum class FleetOpKind : int {
  kSaveInitial = 0,   ///< commission a new fleet family (full snapshot)
  kSaveDerived = 1,   ///< OTA retraining wave member: derive from `base`
  kRecoverBurst = 2,  ///< Zipfian burst of recoveries through the service
  kPinSet = 3,        ///< pin a hot set in the layer cache
  kUnpinSet = 4,      ///< release a pin
  kDeleteSet = 5,     ///< decommission one set (optionally cascading)
  kRetainOnly = 6,    ///< retention sweep: keep `targets` + lineage + pins
  kCompactChains = 7, ///< rebase chains deeper than `target`
  kCheckpoint = 8,    ///< fsck + full shadow-model audit
  kKillShard = 9,     ///< cluster: fail shard `target % shards` over
  kAddShard = 10,     ///< cluster: grow the ring by one shard
  kRebalance = 11,    ///< cluster: move misplaced sets to ring owners
};

/// Canonical kind name ("save-initial", "recover", ...).
const char* FleetOpKindName(FleetOpKind kind);

struct FleetOp {
  FleetOpKind kind = FleetOpKind::kCheckpoint;
  /// kSaveInitial / kSaveDerived: this save's ordinal (plan-wide unique).
  uint64_t ordinal = 0;
  /// Saves: the approach the set is saved with.
  ApproachType approach = ApproachType::kMMlibBase;
  /// kSaveDerived: ordinal of the base set.
  uint64_t base = 0;
  /// kPinSet/kUnpinSet/kDeleteSet: target ordinal. kCompactChains: the
  /// policy's max chain depth. kKillShard: raw shard draw (mod shard count
  /// at execution time).
  uint64_t target = 0;
  /// kDeleteSet: delete dependent delta/provenance descendants too.
  bool cascade = false;
  /// kRecoverBurst: recovery target ordinals (Zipfian, newest hottest).
  /// kRetainOnly: ordinals to keep.
  std::vector<uint64_t> targets;

  /// Canonical one-line rendering, e.g. "save-derived o=7 base=3 a=update".
  std::string Render() const;
};

/// \brief Knobs of the deterministic plan generator.
///
/// Two generations from equal configs produce byte-identical plans
/// (FleetPlan::Render compares equal), independent of platform, worker
/// count, or how often generation is repeated.
struct FleetPlanConfig {
  uint64_t seed = 7;
  /// Operations to generate (a trailing checkpoint is always appended).
  size_t steps = 120;
  /// Fleet families commissioned up front (one initial save each).
  size_t families = 3;
  /// Cells per fleet (models per set). Small by default: the simulator's
  /// oracles compare every recovered byte, so horizon length, not set size,
  /// is the dimension long-horizon runs scale.
  size_t models_per_set = 4;
  /// Samples per synthetic retraining dataset (content-engine knob).
  size_t samples_per_dataset = 32;
  /// Fraction of models fully / partially retrained per derived save.
  double full_update_fraction = 0.25;
  double partial_update_fraction = 0.25;
  /// Approaches new families rotate through (family f gets entry f % size).
  std::vector<ApproachType> approaches{
      ApproachType::kMMlibBase, ApproachType::kBaseline, ApproachType::kUpdate,
      ApproachType::kProvenance};
  /// Zipfian skew of recovery targets (newest live set is hottest).
  double theta = 0.99;
  /// Recoveries per kRecoverBurst op.
  size_t burst_len = 8;
  /// Depth bound handed to kCompactChains ops.
  uint64_t compact_max_depth = 3;
  /// Ops between kCheckpoint audits (0 = only the final checkpoint).
  size_t checkpoint_interval = 25;
  /// Every `wave_interval` ops, a staggered OTA retraining wave derives a
  /// new set from every family's newest live version (0 = no waves).
  size_t wave_interval = 30;
  /// Emit kKillShard/kAddShard/kRebalance events (cluster plans only).
  bool cluster_events = false;
};

/// \brief Symbolic model of the store a fleet plan acts on.
///
/// Shared by the plan generator (to emit mostly-valid operations) and by the
/// simulator's shadow oracle (to predict the exact effect of every
/// operation). It mirrors, per saved set: liveness, the recorded base link,
/// whether the set document's kind is "full" (initial saves, Baseline/MMlib
/// saves, and compactor-rebased sets), the recorded chain depth, and pins.
///
/// The GC semantics mirrored here (see core/gc.cc): cascade deletion follows
/// *non-full* children only (full snapshots merely record lineage);
/// RetainOnly keeps the transitive base-link closure of the keep list plus
/// every pinned set; the serving layer refuses to delete any set on a pinned
/// set's full lineage walk.
class FleetSymbolicState {
 public:
  struct SymSet {
    int64_t parent = -1;  ///< base ordinal, -1 for initial saves
    ApproachType approach = ApproachType::kMMlibBase;
    uint64_t family = 0;
    bool alive = false;
    bool is_full = true;
    uint64_t depth = 0;
    bool pinned = false;
  };

  /// Registers a save op's set as alive; computes kind and depth from the
  /// approach and the base's current state. Ordinals must arrive in
  /// increasing order; gaps (skipped saves) are fine.
  void ApplySave(const FleetOp& op);

  /// Marks a save ordinal dead again (a crashed save that rolled back).
  void KillSave(uint64_t ordinal);

  bool Known(uint64_t ordinal) const;
  bool Alive(uint64_t ordinal) const;
  const SymSet& at(uint64_t ordinal) const { return sets_[ordinal]; }

  /// Live ordinals, ascending (== save order == store insertion order).
  std::vector<uint64_t> Live() const;
  /// Live ordinals of `family`, ascending.
  std::vector<uint64_t> LiveOfFamily(uint64_t family) const;
  /// Currently pinned ordinals, ascending.
  std::vector<uint64_t> Pinned() const;

  /// The sets DeleteSet(ordinal, cascade) would delete: the target plus its
  /// transitive live non-full descendants. Ascending.
  std::vector<uint64_t> DeleteClosure(uint64_t ordinal) const;
  /// True if the target has live non-full children (non-cascade delete
  /// would fail with InvalidArgument).
  bool HasDependents(uint64_t ordinal) const;
  /// Every ordinal some pinned set's full lineage walk touches (the serving
  /// layer's pin-fail guard protects exactly these).
  std::vector<uint64_t> PinProtected() const;
  /// The survivors of RetainOnly(keep): base-link closure of keep + pinned.
  std::vector<uint64_t> RetainSurvivors(const std::vector<uint64_t>& keep) const;

  /// Applies a deletion (closure already computed by the caller).
  void ApplyDelete(const std::vector<uint64_t>& closure);
  /// Applies a retention sweep; returns the deleted ordinals, ascending.
  std::vector<uint64_t> ApplyRetain(const std::vector<uint64_t>& keep);
  /// Predicts and applies one compactor pass with the given depth bound:
  /// walking every live chain root-first, a non-full set whose effective
  /// depth exceeds `max_chain_depth` is rebased to a full snapshot (depth 0)
  /// and its descendants' depths are rewritten. Returns the rebased
  /// ordinals, ascending.
  std::vector<uint64_t> ApplyCompact(uint64_t max_chain_depth);

  void Pin(uint64_t ordinal) { sets_[ordinal].pinned = true; }
  void Unpin(uint64_t ordinal) { sets_[ordinal].pinned = false; }

  /// Overrides kind/depth for one set (cluster rebalance flattens chains
  /// ring-dependently; the shadow re-bases on the store's own summaries).
  void Resync(uint64_t ordinal, bool is_full, uint64_t depth);

  /// \name Chunk-refcount shadow (CAS runs, see cas/cas_store.h).
  ///
  /// After every operation that (re)writes a set's blobs — save, crash
  /// roll-forward, compactor rebase — the simulator reads the set's
  /// manifests back from the CAS index and records, per ordinal, how many
  /// references that set holds on each chunk. The shadow then predicts the
  /// store-wide refcount map as the sum over *alive* ordinals, which the
  /// chunk oracle compares against CasStore::ChunkRefsSnapshot() and the
  /// literal `cas-` listing of the file store after every step: GC must
  /// decrement exactly the dead sets' references and sweep exactly the
  /// chunks that reached zero.
  /// @{
  /// Replaces `ordinal`'s observed chunk references (hex -> refs).
  void SetChunkOwnership(uint64_t ordinal,
                         std::map<std::string, uint64_t> refs);
  /// Predicted store-wide refcounts: sum of ownership over alive ordinals.
  std::map<std::string, uint64_t> PredictedChunkRefs() const;
  /// @}

 private:
  std::vector<SymSet> sets_;  ///< indexed by ordinal
  /// ordinal -> observed chunk references; erased by KillSave (a rolled-back
  /// save wrote nothing durable), ignored for dead ordinals.
  std::map<uint64_t, std::map<std::string, uint64_t>> chunk_refs_;
};

/// \brief A generated fleet-lifecycle trace.
struct FleetPlan {
  FleetPlanConfig config;
  std::vector<FleetOp> ops;
  /// Save ops carry ordinals 0 .. save_count-1.
  uint64_t save_count = 0;

  /// Generates the trace for `config`. Pure: equal configs yield
  /// byte-identical plans.
  static FleetPlan Generate(const FleetPlanConfig& config);

  /// Canonical multi-line rendering (config header + one line per op);
  /// the determinism tests compare this byte-for-byte.
  std::string Render() const;

  /// Copy with every save op's approach forced to `type` (the differential
  /// cross-approach harness: identical structure, different approach).
  FleetPlan WithApproach(ApproachType type) const;
};

}  // namespace mmm

#endif  // MMM_FLEET_PLAN_H_
