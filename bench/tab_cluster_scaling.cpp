// Cluster scaling benchmark: save / recover throughput and per-request
// recovery cost vs shard count under Zipfian traffic.
//
// For each shard count in {1, 2, 4, 8} a fresh cluster is built over its own
// in-memory Env from identically seeded scenarios, so the id stream, the set
// bytes, and the request trace are the same in every configuration — only
// the placement changes. The workload is `MMM_CHAINS` independent Update
// chains (initial snapshot + one delta per cycle); initial ids spread over
// the ring while derived sets colocate with their base, exactly as a fleet
// of independently updated deployments would. A newest-hottest Zipfian trace
// then replays through Coordinator::Replay, which partitions requests by
// owning shard and serves the per-shard sub-traces in parallel.
//
// Reported per shard count: save and replay wall throughput, the modeled
// per-request recovery cost (mean / p99, bit-deterministic because each
// shard serves with workers=1 and the cache disabled), and the modeled
// recovery makespan — the busiest shard's summed store latency, i.e. the
// modeled wall time of the parallel replay. Expected shape: per-request cost
// is flat (sharding never adds store reads to a request), while the makespan
// falls as the Zipfian head spreads over more shards — sublinearly, because
// the hottest chain always lives on a single shard. The makespan, not wall
// time, is the machine-independent scaling signal (see DESIGN.md §1: wall
// throughput only rises with real cores to run the shard replays on).
//
// Results are also written to BENCH_cluster.json.
//
// Knobs: MMM_MODELS (default 64), MMM_SAMPLES (64), MMM_CHAINS (8),
// MMM_U3_ITERATIONS (4), MMM_REQUESTS (400).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/coordinator.h"
#include "common/clock.h"
#include "serve/trace.h"
#include "storage/env.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/64,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 64));
  knobs.u3_iterations = static_cast<size_t>(GetEnvInt64("MMM_U3_ITERATIONS", 4));
  size_t chains = static_cast<size_t>(GetEnvInt64("MMM_CHAINS", 8));
  size_t requests = static_cast<size_t>(GetEnvInt64("MMM_REQUESTS", 400));
  knobs.Describe("tab_cluster_scaling");

  const size_t shard_counts[] = {1, 2, 4, 8};

  std::printf(
      "\n%zu Update chains x %zu cycles, %zu Zipfian requests (theta 0.99, "
      "newest hottest):\n",
      chains, knobs.u3_iterations, requests);
  std::printf("%6s | %9s | %9s | %9s | %9s | %11s | %8s\n", "shards",
              "save /s", "recov /s", "mean ms", "p99 ms", "makespan ms",
              "speedup");

  JsonValue out_rows = JsonValue::Array();
  double base_makespan_ms = 0;
  for (size_t shard_count : shard_counts) {
    // Fresh world per configuration: same seeds everywhere, so every
    // configuration saves byte-identical sets under the same ids. The real
    // filesystem env lets shard replays run truly in parallel (InMemoryEnv
    // would serialize every read behind one lock).
    ScenarioConfig config = ScenarioConfig::Battery(knobs.models);
    config.samples_per_dataset = knobs.samples;
    MultiModelScenario scenario(config);
    scenario.Init().Check();

    ClusterOptions options;
    options.root_dir =
        StringFormat("/tmp/mmm-bench-cluster/c%zu", shard_count);
    options.env = Env::Default();
    options.shard_count = shard_count;
    options.resolver = &scenario;
    options.profile = SetupProfile::Server();
    options.service.workers = 1;        // exact per-request counters
    options.service.cache_enabled = false;  // measure recovery, not caching
    auto cluster = Coordinator::Open(std::move(options)).ValueOrDie();

    // Save phase: `chains` initial snapshots, then one delta per chain per
    // cycle. Modeled store latency is attributed to the owning shard so the
    // save makespan reflects shard-parallel storage, even though the driver
    // issues saves sequentially.
    std::vector<std::string> ids;
    std::vector<std::string> heads(chains);
    std::map<std::string, uint64_t> save_nanos_by_shard;
    StopWatch save_watch;
    for (size_t chain = 0; chain < chains; ++chain) {
      SaveResult saved =
          cluster->SaveInitial(ApproachType::kUpdate, scenario.current_set())
              .ValueOrDie();
      heads[chain] = saved.set_id;
      ids.push_back(saved.set_id);
      save_nanos_by_shard[cluster->OwnerOf(saved.set_id).ValueOrDie()] +=
          saved.simulated_store_nanos;
    }
    for (size_t cycle = 0; cycle < knobs.u3_iterations; ++cycle) {
      for (size_t chain = 0; chain < chains; ++chain) {
        ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
        update.base_set_id = heads[chain];
        SaveResult saved = cluster
                               ->SaveDerived(ApproachType::kUpdate,
                                             scenario.current_set(), update)
                               .ValueOrDie();
        heads[chain] = saved.set_id;
        ids.push_back(saved.set_id);
        save_nanos_by_shard[cluster->OwnerOf(saved.set_id).ValueOrDie()] +=
            saved.simulated_store_nanos;
      }
    }
    double save_secs = save_watch.ElapsedSeconds();

    // Replay phase: newest versions take the head of the Zipfian
    // distribution. The trace is identical across shard counts.
    std::vector<std::string> hot_first(ids.rbegin(), ids.rend());
    std::vector<std::string> trace =
        BuildZipfianTrace(hot_first, requests, /*theta=*/0.99, /*seed=*/21);

    StopWatch replay_watch;
    std::vector<ServeResult> results = cluster->Replay(trace);
    double replay_secs = replay_watch.ElapsedSeconds();

    std::vector<uint64_t> modeled;
    modeled.reserve(results.size());
    std::map<std::string, uint64_t> recover_nanos_by_shard;
    for (size_t i = 0; i < results.size(); ++i) {
      results[i].status.Check();  // every request must succeed
      modeled.push_back(results[i].modeled_store_nanos);
      recover_nanos_by_shard[cluster->OwnerOf(trace[i]).ValueOrDie()] +=
          results[i].modeled_store_nanos;
    }
    LatencySummary lat = Summarize(modeled);

    // Makespan: the busiest shard bounds the modeled parallel replay.
    uint64_t save_makespan = 0, recover_makespan = 0;
    for (const auto& [shard, nanos] : save_nanos_by_shard) {
      save_makespan = std::max(save_makespan, nanos);
    }
    for (const auto& [shard, nanos] : recover_nanos_by_shard) {
      recover_makespan = std::max(recover_makespan, nanos);
    }
    double makespan_ms = static_cast<double>(recover_makespan) / 1e6;
    if (shard_count == 1) base_makespan_ms = makespan_ms;
    double speedup = makespan_ms == 0 ? 0 : base_makespan_ms / makespan_ms;

    std::printf("%6zu | %9.1f | %9.1f | %9.3f | %9.3f | %11.3f | %7.2fx\n",
                shard_count,
                static_cast<double>(ids.size()) / save_secs,
                static_cast<double>(trace.size()) / replay_secs,
                lat.mean / 1e6, static_cast<double>(lat.p99) / 1e6,
                makespan_ms, speedup);

    JsonValue entry = JsonValue::Object();
    entry.Set("shards", static_cast<uint64_t>(shard_count));
    entry.Set("sets", static_cast<uint64_t>(ids.size()));
    entry.Set("save_wall_seconds", save_secs);
    entry.Set("saves_per_second",
              static_cast<double>(ids.size()) / save_secs);
    entry.Set("save_modeled_makespan_nanos", save_makespan);
    entry.Set("replay_wall_seconds", replay_secs);
    entry.Set("recoveries_per_second",
              static_cast<double>(trace.size()) / replay_secs);
    entry.Set("recover_mean_nanos", lat.mean);
    entry.Set("recover_p50_nanos", lat.p50);
    entry.Set("recover_p99_nanos", lat.p99);
    entry.Set("recover_modeled_makespan_nanos", recover_makespan);
    entry.Set("makespan_speedup_vs_1_shard", speedup);
    out_rows.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "tab_cluster_scaling");
  doc.Set("models", static_cast<uint64_t>(knobs.models));
  doc.Set("chains", static_cast<uint64_t>(chains));
  doc.Set("cycles", static_cast<uint64_t>(knobs.u3_iterations));
  doc.Set("requests", static_cast<uint64_t>(requests));
  doc.Set("theta", 0.99);
  doc.Set("rows", std::move(out_rows));
  std::string json = doc.DumpPretty() + "\n";
  Env::Default()
      ->WriteFile("BENCH_cluster.json",
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size()))
      .Check();
  std::printf(
      "\nwrote BENCH_cluster.json\n"
      "(Expected: per-request mean/p99 stay flat while the modeled recovery "
      "makespan falls\n with shard count — sublinearly, since the hottest "
      "chain is pinned to one shard.)\n");
  CleanupWorkDir(knobs, "/tmp/mmm-bench-cluster");
  return 0;
}
