#include "data/dataset.h"

#include <algorithm>

namespace mmm {

TrainingData TrainingData::Head(size_t count) const {
  size_t n = std::min(count, size());
  if (n == size()) return *this;
  size_t in_sample = inputs.numel() / inputs.dim(0);
  size_t out_sample = targets.numel() / targets.dim(0);

  Shape in_shape = inputs.shape();
  in_shape[0] = n;
  Shape out_shape = targets.shape();
  out_shape[0] = n;

  std::vector<float> in_data(inputs.data().begin(),
                             inputs.data().begin() + n * in_sample);
  std::vector<float> out_data(targets.data().begin(),
                              targets.data().begin() + n * out_sample);
  return TrainingData{Tensor(std::move(in_shape), std::move(in_data)),
                      Tensor(std::move(out_shape), std::move(out_data))};
}

}  // namespace mmm
