#ifndef MMM_TENSOR_OPS_H_
#define MMM_TENSOR_OPS_H_

#include <functional>

#include "tensor/tensor.h"

namespace mmm {

/// \file
/// Dense tensor operations used by the NN substrate. All ops allocate their
/// result; *InPlace variants mutate the first argument. Shape mismatches are
/// programmer errors (MMM_DCHECK). Reductions use a fixed left-to-right
/// order, which keeps training bit-deterministic across runs — a requirement
/// for the Provenance approach's exact replay.

/// \name Elementwise binary ops (equal shapes).
/// @{
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
void AddInPlace(Tensor* a, const Tensor& b);
void SubInPlace(Tensor* a, const Tensor& b);
/// a += scale * b  (the SGD update step).
void Axpy(Tensor* a, float scale, const Tensor& b);
/// @}

/// \name Scalar ops.
/// @{
Tensor Scale(const Tensor& a, float factor);
void ScaleInPlace(Tensor* a, float factor);
Tensor AddScalar(const Tensor& a, float value);
/// @}

/// Applies `fn` elementwise.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// \name Matrix ops (2-D tensors).
/// @{
/// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// [m,k] x [n,k]^T -> [m,n] (right operand transposed; avoids materializing
/// the transpose in Linear::Forward).
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);
/// [m,k]^T x [m,n] -> [k,n] (left operand transposed; used for weight grads).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);
Tensor Transpose2D(const Tensor& a);
/// Adds a length-n row vector to every row of an [m,n] matrix.
Tensor AddRowVector(const Tensor& matrix, const Tensor& row);
/// Sums an [m,n] matrix over rows into a length-n vector.
Tensor SumRows(const Tensor& matrix);
/// @}

/// \name Reductions.
/// @{
float Sum(const Tensor& a);
float Mean(const Tensor& a);
float MaxAbs(const Tensor& a);
/// Index of the max element in each row of an [m,n] matrix.
std::vector<size_t> ArgMaxRows(const Tensor& matrix);
/// @}

/// Row-wise softmax of an [m,n] matrix (numerically stabilized).
Tensor SoftmaxRows(const Tensor& logits);

}  // namespace mmm

#endif  // MMM_TENSOR_OPS_H_
