#ifndef MMM_NN_METRICS_H_
#define MMM_NN_METRICS_H_

#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace mmm {

/// \file
/// Model-quality metrics used by the examples and the workload driver to
/// show that managed models genuinely improve when retrained.

/// Fraction of rows whose argmax matches the label. `logits` is [n, k],
/// `labels` is [n] class indices.
Result<double> Accuracy(const Tensor& logits, const Tensor& labels);

/// Root-mean-square error over all elements (shapes must match).
Result<double> Rmse(const Tensor& prediction, const Tensor& target);

/// Mean absolute error over all elements (shapes must match).
Result<double> MeanAbsoluteError(const Tensor& prediction, const Tensor& target);

/// Coefficient of determination (R^2) of a regression, computed over all
/// elements. 1 = perfect, 0 = predicting the mean, negative = worse.
Result<double> RSquared(const Tensor& prediction, const Tensor& target);

/// k x k confusion matrix; entry [actual][predicted] counts samples.
Result<std::vector<std::vector<size_t>>> ConfusionMatrix(const Tensor& logits,
                                                         const Tensor& labels,
                                                         size_t num_classes);

}  // namespace mmm

#endif  // MMM_NN_METRICS_H_
