file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation_compression.dir/tab_ablation_compression.cpp.o"
  "CMakeFiles/tab_ablation_compression.dir/tab_ablation_compression.cpp.o.d"
  "tab_ablation_compression"
  "tab_ablation_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
