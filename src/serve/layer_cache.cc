#include "serve/layer_cache.h"

namespace mmm {

LayerCache::LayerCache(uint64_t capacity_bytes, size_t shards) {
  if (shards == 0) shards = 1;
  shard_capacity_ = capacity_bytes / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t LayerCache::ChargeOf(const Tensor& value) {
  // Payload plus an estimate of list/map node + Entry overhead, so capacity
  // also bounds the footprint of many tiny layers.
  return value.numel() * sizeof(float) + 96;
}

LayerCache::Shard& LayerCache::ShardOf(const Sha256Digest& hash) {
  uint64_t h;
  std::memcpy(&h, hash.bytes.data() + 8, sizeof(h));
  return *shards_[h % shards_.size()];
}

const LayerCache::Shard& LayerCache::ShardOf(const Sha256Digest& hash) const {
  uint64_t h;
  std::memcpy(&h, hash.bytes.data() + 8, sizeof(h));
  return *shards_[h % shards_.size()];
}

bool LayerCache::Get(const Sha256Digest& hash, Tensor* out) {
  Shard& shard = ShardOf(hash);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{hash.bytes});
  if (it == shard.index.end()) {
    shard.misses += 1;
    return false;
  }
  shard.hits += 1;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->value;
  return true;
}

bool LayerCache::Contains(const Sha256Digest& hash) const {
  const Shard& shard = ShardOf(hash);
  MutexLock lock(shard.mu);
  return shard.index.find(Key{hash.bytes}) != shard.index.end();
}

bool LayerCache::Put(const Sha256Digest& hash, const Tensor& value,
                     bool pinned) {
  Shard& shard = ShardOf(hash);
  uint64_t charge = ChargeOf(value);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{hash.bytes});
  if (it != shard.index.end()) {
    // Content-hash keys are immutable: the resident value is already
    // correct. Honor a pin request, otherwise decline the duplicate.
    if (pinned && !it->second->pinned) {
      it->second->pinned = true;
      shard.bytes_pinned += it->second->charge;
      return true;
    }
    shard.rejected += 1;
    return false;
  }
  if (charge > shard_capacity_) {
    shard.rejected += 1;
    return false;
  }
  // Evict from the LRU tail, skipping pinned entries.
  auto victim = shard.lru.end();
  while (shard.bytes_used + charge > shard_capacity_) {
    // Find the least-recently-used unpinned entry before `victim`.
    auto scan = victim;
    bool found = false;
    while (scan != shard.lru.begin()) {
      --scan;
      if (!scan->pinned) {
        found = true;
        break;
      }
    }
    if (!found) {
      shard.rejected += 1;  // everything left is pinned; cannot fit
      return false;
    }
    victim = scan;
    shard.bytes_used -= victim->charge;
    shard.index.erase(victim->key);
    victim = shard.lru.erase(victim);
    shard.evictions += 1;
  }
  shard.lru.push_front(Entry{Key{hash.bytes}, value, charge, pinned});
  shard.index[Key{hash.bytes}] = shard.lru.begin();
  shard.bytes_used += charge;
  if (pinned) shard.bytes_pinned += charge;
  shard.inserts += 1;
  return true;
}

bool LayerCache::Pin(const Sha256Digest& hash) {
  Shard& shard = ShardOf(hash);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{hash.bytes});
  if (it == shard.index.end()) return false;
  if (!it->second->pinned) {
    it->second->pinned = true;
    shard.bytes_pinned += it->second->charge;
  }
  return true;
}

void LayerCache::Unpin(const Sha256Digest& hash) {
  Shard& shard = ShardOf(hash);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{hash.bytes});
  if (it == shard.index.end() || !it->second->pinned) return;
  it->second->pinned = false;
  shard.bytes_pinned -= it->second->charge;
}

bool LayerCache::Invalidate(const Sha256Digest& hash) {
  Shard& shard = ShardOf(hash);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{hash.bytes});
  if (it == shard.index.end()) return false;
  shard.bytes_used -= it->second->charge;
  if (it->second->pinned) shard.bytes_pinned -= it->second->charge;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  shard.invalidated += 1;
  return true;
}

void LayerCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->invalidated += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
    shard->bytes_used = 0;
    shard->bytes_pinned = 0;
  }
}

LayerCacheStats LayerCache::stats() const {
  LayerCacheStats out;
  out.capacity_bytes = capacity_bytes();
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.inserts += shard->inserts;
    out.evictions += shard->evictions;
    out.rejected += shard->rejected;
    out.invalidated += shard->invalidated;
    out.bytes_used += shard->bytes_used;
    out.bytes_pinned += shard->bytes_pinned;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace mmm
