
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/document_store.cc" "src/storage/CMakeFiles/mmm_storage.dir/document_store.cc.o" "gcc" "src/storage/CMakeFiles/mmm_storage.dir/document_store.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/mmm_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/mmm_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/file_store.cc" "src/storage/CMakeFiles/mmm_storage.dir/file_store.cc.o" "gcc" "src/storage/CMakeFiles/mmm_storage.dir/file_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
