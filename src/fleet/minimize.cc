#include "fleet/minimize.h"

#include <algorithm>

#include "serialize/json.h"

namespace mmm {
namespace {

/// Replays the subsequence of `ops` selected by `keep` (ascending indices).
/// True iff the replay completed and an oracle tripped.
bool Fails(FleetSimulator* simulator, const std::vector<FleetOp>& ops,
           const std::vector<size_t>& keep, size_t* runs,
           FleetRunReport* report) {
  std::vector<FleetOp> candidate;
  candidate.reserve(keep.size());
  for (size_t index : keep) candidate.push_back(ops[index]);
  ++*runs;
  Result<FleetRunReport> replayed = simulator->RunOps(candidate);
  if (!replayed.ok()) return false;
  *report = std::move(replayed).ValueOrDie();
  return !report->ok();
}

}  // namespace

Result<FleetMinimizeResult> MinimizeFailingTrace(
    FleetSimulator* simulator, const std::vector<FleetOp>& ops,
    const FleetMinimizeOptions& options) {
  FleetMinimizeResult result;
  std::vector<size_t> current(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) current[i] = i;

  if (!Fails(simulator, ops, current, &result.runs, &result.report)) {
    return Status::InvalidArgument(
        "minimizer input does not fail: nothing to shrink");
  }

  // ddmin: split into n chunks; try each chunk alone, then each complement;
  // on a hit, restart from the reduced trace. n doubles when nothing
  // reproduces, and 1-minimality is reached at n == |trace| with no hit.
  size_t chunks = std::min<size_t>(2, std::max<size_t>(1, current.size()));
  while (current.size() >= 2 && result.runs < options.max_runs) {
    const size_t chunk_len =
        (current.size() + chunks - 1) / chunks;  // ceil division
    bool reduced = false;
    FleetRunReport report;

    for (size_t start = 0;
         start < current.size() && result.runs < options.max_runs;
         start += chunk_len) {
      const size_t end = std::min(start + chunk_len, current.size());
      std::vector<size_t> subset(current.begin() + start,
                                 current.begin() + end);
      if (subset.size() < current.size() &&
          Fails(simulator, ops, subset, &result.runs, &report)) {
        current = std::move(subset);
        chunks = std::min<size_t>(2, current.size());
        result.report = std::move(report);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    for (size_t start = 0;
         start < current.size() && result.runs < options.max_runs;
         start += chunk_len) {
      const size_t end = std::min(start + chunk_len, current.size());
      std::vector<size_t> complement;
      complement.reserve(current.size() - (end - start));
      complement.insert(complement.end(), current.begin(),
                        current.begin() + start);
      complement.insert(complement.end(), current.begin() + end,
                        current.end());
      if (!complement.empty() && complement.size() < current.size() &&
          Fails(simulator, ops, complement, &result.runs, &report)) {
        current = std::move(complement);
        chunks = std::max<size_t>(2, chunks - 1);
        result.report = std::move(report);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    if (chunks >= current.size()) {
      result.minimal = true;
      break;
    }
    chunks = std::min(current.size(), chunks * 2);
  }
  if (current.size() < 2) result.minimal = true;

  result.steps = std::move(current);
  result.ops.reserve(result.steps.size());
  for (size_t index : result.steps) result.ops.push_back(ops[index]);
  // The last Fails call may have been a non-failing candidate; re-establish
  // the minimized trace as the simulator's final world so callers can
  // inspect the failure state directly.
  FleetRunReport final_report;
  if (Fails(simulator, ops, result.steps, &result.runs, &final_report)) {
    result.report = std::move(final_report);
  }
  return result;
}

std::string RenderRepro(const FleetPlan& plan, const FleetSimOptions& options,
                        const FleetMinimizeResult& minimized) {
  JsonValue root = JsonValue::Object();

  JsonValue plan_json = JsonValue::Object();
  plan_json.Set("seed", plan.config.seed);
  plan_json.Set("steps", static_cast<uint64_t>(plan.config.steps));
  plan_json.Set("families", static_cast<uint64_t>(plan.config.families));
  plan_json.Set("models_per_set",
                static_cast<uint64_t>(plan.config.models_per_set));
  plan_json.Set("samples_per_dataset",
                static_cast<uint64_t>(plan.config.samples_per_dataset));
  plan_json.Set("theta", plan.config.theta);
  plan_json.Set("burst_len", static_cast<uint64_t>(plan.config.burst_len));
  plan_json.Set("compact_max_depth", plan.config.compact_max_depth);
  plan_json.Set("checkpoint_interval",
                static_cast<uint64_t>(plan.config.checkpoint_interval));
  plan_json.Set("wave_interval",
                static_cast<uint64_t>(plan.config.wave_interval));
  plan_json.Set("cluster_events", plan.config.cluster_events);
  JsonValue approaches = JsonValue::Array();
  for (ApproachType type : plan.config.approaches) {
    approaches.Append(ApproachTypeName(type));
  }
  plan_json.Set("approaches", std::move(approaches));
  root.Set("plan", std::move(plan_json));

  JsonValue world = JsonValue::Object();
  world.Set("shards", static_cast<uint64_t>(options.shards));
  world.Set("workers", static_cast<uint64_t>(options.workers));
  world.Set("lanes", static_cast<uint64_t>(options.lanes));
  world.Set("cache_enabled", options.cache_enabled);
  world.Set("inject_crashes", options.inject_crashes);
  world.Set("crash_seed", options.crash_seed);
  world.Set("crash_percent", options.crash_percent);
  world.Set("crash_window", options.crash_window);
  world.Set("deep_checkpoints", options.deep_checkpoints);
  root.Set("world", std::move(world));

  JsonValue problem = JsonValue::Object();
  if (!minimized.report.problems.empty()) {
    const FleetProblem& first = minimized.report.problems.front();
    problem.Set("step", static_cast<uint64_t>(first.step));
    problem.Set("op", first.op);
    problem.Set("detail", first.detail);
  }
  root.Set("problem", std::move(problem));

  root.Set("minimal", minimized.minimal);
  root.Set("runs", static_cast<uint64_t>(minimized.runs));

  JsonValue trace = JsonValue::Array();
  for (size_t i = 0; i < minimized.ops.size(); ++i) {
    JsonValue entry = JsonValue::Object();
    entry.Set("plan_step", static_cast<uint64_t>(minimized.steps[i]));
    entry.Set("op", minimized.ops[i].Render());
    trace.Append(std::move(entry));
  }
  root.Set("trace", std::move(trace));

  return root.DumpPretty();
}

}  // namespace mmm
