// Ablation (the paper's §4.5 future work, implemented): compression of the
// binary artifacts.
//
// "Another direction of future work is to evaluate if it is beneficial to
// integrate compression techniques into our approaches and with what
// trade-offs different algorithms come."
//
// Runs U1 + one update cycle for Baseline and Update under three codecs and
// reports storage and TTS. Float32 parameters are high-entropy in their
// mantissa bytes, so plain LZ saves little; the byte-shuffle filter groups
// exponent bytes and recovers most of the achievable redundancy.
//
// Knobs: MMM_MODELS (default 2000), MMM_SAMPLES (128).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/2000,
                                         /*default_runs=*/3);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 128));
  knobs.Describe("tab_ablation_compression");

  std::printf(
      "\nCompression ablation, %zu FFNN-48 models, one 10%% update cycle:\n",
      knobs.models);
  std::printf("%-11s | %-9s | %12s | %12s | %10s | %10s\n", "codec", "approach",
              "U1 MB", "U3-1 MB", "TTS U1 (s)", "TTS U3 (s)");

  for (Compression codec :
       {Compression::kNone, Compression::kLz, Compression::kShuffleLz}) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.u3_iterations = 1;
    config.runs = knobs.runs;
    config.measure_ttr = false;
    config.approaches = {ApproachType::kBaseline, ApproachType::kUpdate};
    config.work_dir = "/tmp/mmm-bench-compression";

    // Thread the codec through the managers the runner opens.
    config.blob_compression = codec;
    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();

    for (ApproachType type : config.approaches) {
      std::printf("%-11s | %-9s | %12.2f | %12.2f | %10.3f | %10.3f\n",
                  std::string(CompressionName(codec)).c_str(),
                  ApproachTypeName(type).c_str(),
                  static_cast<double>(results[0].metrics.at(type).storage_bytes) /
                      1e6,
                  static_cast<double>(results[1].metrics.at(type).storage_bytes) /
                      1e6,
                  results[0].metrics.at(type).tts_seconds,
                  results[1].metrics.at(type).tts_seconds);
    }
    CleanupWorkDir(knobs, config.work_dir);
  }
  std::printf(
      "\n(Expected: shuffle-lz shaves 5-15%% off freshly initialized float32 "
      "payloads at a\n visible TTS cost; trained-parameter entropy limits "
      "lossless gains, matching the\n paper's expectation that delta "
      "encoding [6] is the bigger lever.)\n");

  // --- Part 2: delta encoding of the Update diffs (the bigger lever). ----
  std::printf(
      "\nDelta-encoding x compression for the Update approach's U3 diff "
      "(same workload):\n");
  std::printf("%-11s | %-11s | %12s\n", "encoding", "codec", "U3-1 MB");
  for (DiffEncoding encoding :
       {DiffEncoding::kAbsolute, DiffEncoding::kXorBase}) {
    for (Compression codec : {Compression::kNone, Compression::kShuffleLz}) {
      ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
      scenario_config.samples_per_dataset = knobs.samples;
      MultiModelScenario scenario(scenario_config);
      scenario.Init().Check();

      std::string work_dir = "/tmp/mmm-bench-delta-encoding";
      Env::Default()->RemoveDirs(work_dir).Check();
      ModelSetManager::Options options;
      options.root_dir = work_dir;
      options.resolver = &scenario;
      options.blob_compression = codec;
      options.update_options.diff_encoding = encoding;
      auto manager = ModelSetManager::Open(options).ValueOrDie();

      std::string head =
          manager->SaveInitial(ApproachType::kUpdate, scenario.current_set())
              .ValueOrDie()
              .set_id;
      ModelSet base = scenario.current_set();
      ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
      update.base_set_id = head;
      update.base_set = &base;
      SaveResult saved =
          manager
              ->SaveDerived(ApproachType::kUpdate, scenario.current_set(),
                            update)
              .ValueOrDie();
      // Sanity: the chain must still recover exactly.
      ModelSet recovered = manager->Recover(saved.set_id).ValueOrDie();
      if (!recovered.models[0][0].second.Equals(
              scenario.current_set().models[0][0].second)) {
        std::fprintf(stderr, "round-trip mismatch!\n");
        return 1;
      }
      std::printf("%-11s | %-11s | %12.2f\n",
                  encoding == DiffEncoding::kAbsolute ? "absolute" : "xor-base",
                  std::string(CompressionName(codec)).c_str(),
                  static_cast<double>(saved.bytes_written) / 1e6);
      Env::Default()->RemoveDirs(work_dir).Check();
    }
  }
  std::printf(
      "\n(Expected: xor-base alone changes nothing — same byte count — but "
      "xor-base +\n shuffle-lz compresses the partially-retrained tensors "
      "whose high bits cancel.)\n");
  return 0;
}
