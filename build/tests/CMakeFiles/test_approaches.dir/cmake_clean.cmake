file(REMOVE_RECURSE
  "CMakeFiles/test_approaches.dir/test_approaches.cc.o"
  "CMakeFiles/test_approaches.dir/test_approaches.cc.o.d"
  "test_approaches"
  "test_approaches.pdb"
  "test_approaches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
