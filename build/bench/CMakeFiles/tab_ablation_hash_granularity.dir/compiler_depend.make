# Empty compiler generated dependencies file for tab_ablation_hash_granularity.
# This may be replaced when dependencies are built.
