#ifndef MMM_SERVE_LAYER_CACHE_H_
#define MMM_SERVE_LAYER_CACHE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "serialize/sha256.h"
#include "tensor/tensor.h"

namespace mmm {

/// \brief Aggregate counters of a LayerCache, summed over all shards.
struct LayerCacheStats {
  uint64_t hits = 0;         ///< Get calls that found the hash.
  uint64_t misses = 0;       ///< Get calls that did not.
  uint64_t inserts = 0;      ///< Puts that admitted a new entry.
  uint64_t evictions = 0;    ///< Entries evicted to make room.
  uint64_t rejected = 0;     ///< Puts declined (would not fit / duplicate).
  uint64_t invalidated = 0;  ///< Entries removed by Invalidate.
  uint64_t bytes_used = 0;   ///< Charged bytes currently resident.
  uint64_t bytes_pinned = 0; ///< Charged bytes of pinned entries.
  uint64_t entries = 0;      ///< Resident entry count.
  uint64_t capacity_bytes = 0;
};

/// \brief Sharded, layer-granular LRU cache of decoded parameter tensors,
/// keyed by the per-layer SHA-256 content hash the Update approach persists.
///
/// Content-hash keys make entries immutable by construction: a hash can only
/// ever map to one tensor value, so concurrent Puts for the same key are
/// idempotent and a hit always returns exactly the bytes a store recovery
/// would have produced.
///
/// The capacity bound is strict *per shard* (shard capacity = total /
/// shards), which also bounds the global footprint: charged bytes never
/// exceed `capacity_bytes()`, even transiently. A Put that cannot fit after
/// evicting every unpinned entry of its shard is declined. Pinned entries
/// are never evicted (but are removed by Invalidate/Clear, which track
/// explicit deletion, not capacity pressure).
///
/// Each shard has its own mutex; the shard is chosen from digest bytes — so
/// uniformly distributed — and lookups for different layers mostly touch
/// different locks.
class LayerCache {
 public:
  /// \param capacity_bytes total charged-byte budget across all shards
  /// \param shards number of independently locked LRU shards (>= 1)
  explicit LayerCache(uint64_t capacity_bytes, size_t shards = 8);

  /// Copies the cached tensor for `hash` into `out` and marks the entry
  /// most-recently used. Returns false on miss.
  bool Get(const Sha256Digest& hash, Tensor* out);

  /// True if the hash is resident (does not touch LRU order or counters).
  bool Contains(const Sha256Digest& hash) const;

  /// Admits a tensor under its content hash, evicting least-recently-used
  /// unpinned entries of the target shard as needed. Returns false if the
  /// entry was declined (already resident, or cannot fit). `pinned` admits
  /// the entry pre-pinned (used by PinSet so a pin can never lose the race
  /// against eviction).
  bool Put(const Sha256Digest& hash, const Tensor& value, bool pinned = false);

  /// Pins a resident entry, shielding it from eviction. Returns false if
  /// the hash is not resident.
  bool Pin(const Sha256Digest& hash);

  /// Drops a pin (no-op if absent or unpinned).
  void Unpin(const Sha256Digest& hash);

  /// Removes an entry regardless of pin state. Returns true if it was
  /// resident.
  bool Invalidate(const Sha256Digest& hash);

  /// Removes everything, including pinned entries.
  void Clear();

  /// Charged size of one cached tensor: payload plus bookkeeping overhead.
  static uint64_t ChargeOf(const Tensor& value);

  uint64_t capacity_bytes() const { return shard_capacity_ * shards_.size(); }
  size_t shards() const { return shards_.size(); }

  /// Consistent aggregate snapshot (locks the shards one at a time).
  LayerCacheStats stats() const;

 private:
  struct Key {
    std::array<uint8_t, 32> bytes;
    bool operator==(const Key& other) const { return bytes == other.bytes; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // A SHA-256 prefix is already uniformly distributed.
      uint64_t h;
      std::memcpy(&h, k.bytes.data(), sizeof(h));
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    Tensor value;
    uint64_t charge = 0;
    bool pinned = false;
  };
  struct Shard {
    mutable Mutex mu MMM_LOCK_RANK(100);
    std::list<Entry> lru MMM_GUARDED_BY(mu);  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        MMM_GUARDED_BY(mu);
    uint64_t bytes_used MMM_GUARDED_BY(mu) = 0;
    uint64_t bytes_pinned MMM_GUARDED_BY(mu) = 0;
    uint64_t hits MMM_GUARDED_BY(mu) = 0;
    uint64_t misses MMM_GUARDED_BY(mu) = 0;
    uint64_t inserts MMM_GUARDED_BY(mu) = 0;
    uint64_t evictions MMM_GUARDED_BY(mu) = 0;
    uint64_t rejected MMM_GUARDED_BY(mu) = 0;
    uint64_t invalidated MMM_GUARDED_BY(mu) = 0;
  };

  Shard& ShardOf(const Sha256Digest& hash);
  const Shard& ShardOf(const Sha256Digest& hash) const;

  uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mmm

#endif  // MMM_SERVE_LAYER_CACHE_H_
