#include "common/env_config.h"

#include <cstdlib>
#include <cstring>

namespace mmm {

int64_t GetEnvInt64(const char* name, int64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return default_value;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return default_value;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return value;
}

bool GetEnvBool(const char* name, bool default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "false") != 0 &&
         std::strcmp(value, "off") != 0;
}

}  // namespace mmm
