#ifndef MMM_CAS_CAS_STORE_H_
#define MMM_CAS_CAS_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cas/chunker.h"
#include "cas/manifest.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/cas_iface.h"
#include "storage/env.h"
#include "storage/file_store.h"

namespace mmm {

/// \brief The content-addressed chunk store's refcount index (DESIGN.md §10).
///
/// Layered between the approaches and FileStore: save paths hand their blob
/// payloads to a per-commit CasWriteSession (see storage/cas_iface.h) which
/// splits eligible ones into content-defined chunks, writes each distinct
/// chunk once under `cas-<sha256>`, and stores a small manifest under the
/// original blob name; reads reassemble bit-exactly (cas/blob_io.h). This
/// index tracks, across *all* sets, how many live manifest references each
/// chunk has, so GC is a decrement-then-sweep instead of a store-wide
/// liveness scan.
///
/// Durability model: the store itself is the root of trust. Chunk and
/// manifest writes ride inside journaled StoreBatch commits (chunk intents
/// are flagged `cas` so a rollback never deletes a chunk another committed
/// manifest may share — see storage/journal.h); Open() rebuilds the index
/// from the live manifests after journal replay and sweeps chunk blobs no
/// manifest references (crash leftovers). The checkpoint file (`cas.index`,
/// written through Env like the journal, charging nothing to the modeled
/// store costs) is an audited cache: fsck recomputes the index from the
/// store and flags any divergence from memory or checkpoint.
///
/// Invariants (audited by fsck / `mmmctl cas-stats`):
///  - every chunk a live manifest references exists, its size matches the
///    manifest entry, and its SHA-256 matches its name;
///  - refcount(chunk) == number of references from live manifests
///    (duplicates within one manifest count individually);
///  - after any sweep, no zero-refcount chunk blob survives in the store.
///
/// Thread safety: all public methods are safe to call concurrently; chunks
/// referenced by in-flight write sessions are pinned so a concurrent sweep
/// cannot reclaim a chunk a committing batch just deduplicated against.
class CasStore : public CasWriter {
 public:
  /// Outcome of one zero-refcount sweep.
  struct SweepReport {
    uint64_t chunks_swept = 0;
    uint64_t bytes_swept = 0;
  };

  /// Aggregate statistics for `mmmctl cas-stats` and bench/tab_dedup.
  struct Stats {
    uint64_t unique_chunks = 0;
    /// Physical bytes held by chunk blobs (each distinct chunk once).
    uint64_t chunk_bytes = 0;
    uint64_t manifests = 0;
    /// Logical bytes the manifests represent (pre-dedup payload sizes).
    uint64_t manifest_raw_bytes = 0;
    /// Total manifest->chunk references (>= unique_chunks).
    uint64_t total_refs = 0;
    /// refcount -> number of chunks with that refcount.
    std::map<uint64_t, uint64_t> refcount_histogram;
    /// Chunk blobs in the store no live manifest references (0 outside the
    /// window between a crash and the next open-time sweep).
    uint64_t orphan_chunks = 0;

    /// Logical bytes per physical chunk byte (1.0 = no dedup).
    double dedup_ratio() const {
      return chunk_bytes == 0
                 ? 1.0
                 : static_cast<double>(manifest_raw_bytes) /
                       static_cast<double>(chunk_bytes);
    }
  };

  /// Opens the index over `store`: validates `options`, rebuilds refcounts
  /// from the live manifests (reading through `env` directly — open-time
  /// infrastructure, like journal replay), deletes orphaned chunk blobs
  /// left by rolled-back or unswept commits, and persists the checkpoint to
  /// `index_path`. Call after CommitJournal::Replay so the scan sees only
  /// consistent commits.
  static Result<std::unique_ptr<CasStore>> Open(Env* env, FileStore* store,
                                                std::string index_path,
                                                CasOptions options);

  const CasOptions& options() const { return options_; }
  const std::string& index_path() const { return index_path_; }

  /// \name Read-side queries (cas/blob_io.h, GC, fleet oracles).
  /// @{
  bool IsManifest(const std::string& name) const;
  /// Chunk references of a tracked manifest; nullopt for untracked names.
  std::optional<std::vector<CasChunkRef>> ManifestChunks(
      const std::string& name) const;
  uint64_t RefCount(const std::string& hash_hex) const;
  /// chunk hash -> refcount, for the fleet refcount oracle.
  std::map<std::string, uint64_t> ChunkRefsSnapshot() const;
  /// Blob names of all tracked manifests, sorted.
  std::vector<std::string> ManifestNames() const;
  /// @}

  /// Computes Stats; scans the store (through Env, uncharged) for orphans.
  Result<Stats> ComputeStats() const;

  /// \name GC integration (core/gc.cc).
  /// @{
  /// Records the refcount decrements of deleting manifest `name`. The
  /// caller still deletes the blob itself; chunks that reach zero are
  /// reclaimed by the next SweepZeroRefChunks(). No-op for non-manifests.
  void OnManifestDeleted(const std::string& name);
  /// Deletes every unpinned zero-refcount chunk blob (through FileStore —
  /// this is real, modeled GC work) and persists the checkpoint.
  Result<SweepReport> SweepZeroRefChunks();
  /// Deletes chunk blobs present in the store that the index does not track
  /// and no session pins — leftovers of an aborted in-process commit (a
  /// crashed process' leftovers are reclaimed by the next Open instead).
  /// Backs `SweepOrphanBlobs`; scans through Env, deletes through FileStore.
  Result<SweepReport> SweepUntrackedChunks();
  /// @}

  /// fsck: recomputes the index from the store and appends any divergence
  /// (memory vs store vs checkpoint, missing/corrupt/orphaned chunks) to
  /// `problems`. Read-only; never repairs.
  Status Audit(std::vector<std::string>* problems) const;

  /// CasWriter: one session per StoreBatch commit.
  std::unique_ptr<CasWriteSession> BeginSession() override;

 private:
  friend class CasBatchSession;

  struct ChunkState {
    uint64_t refs = 0;
    uint64_t bytes = 0;
  };
  struct ManifestState {
    uint64_t raw_size = 0;
    std::vector<CasChunkRef> chunks;
  };
  /// Index recomputed from the store's live manifests.
  struct Rebuilt {
    std::map<std::string, ChunkState> chunks;
    std::map<std::string, ManifestState> manifests;
    /// Chunk blobs present in the store, name -> size.
    std::map<std::string, uint64_t> chunk_blobs;
    std::vector<std::string> problems;
  };

  CasStore(Env* env, FileStore* store, std::string index_path,
           CasOptions options)
      : env_(env),
        store_(store),
        index_path_(std::move(index_path)),
        options_(options) {}

  /// Scans the store through Env and recomputes the whole index.
  Result<Rebuilt> ScanStore() const;
  Status PersistIndexLocked() MMM_REQUIRES(mu_);

  Env* env_;
  FileStore* store_;
  std::string index_path_;
  CasOptions options_;

  mutable Mutex mu_ MMM_LOCK_RANK(110);
  std::map<std::string, ChunkState> chunks_ MMM_GUARDED_BY(mu_);
  std::map<std::string, ManifestState> manifests_ MMM_GUARDED_BY(mu_);
  /// Chunks referenced by in-flight write sessions (dedup decisions that
  /// are not yet durable): a sweep must not reclaim them even at refs == 0.
  std::map<std::string, uint64_t> pins_ MMM_GUARDED_BY(mu_);
};

}  // namespace mmm

#endif  // MMM_CAS_CAS_STORE_H_
