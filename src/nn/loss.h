#ifndef MMM_NN_LOSS_H_
#define MMM_NN_LOSS_H_

#include <string>

#include "tensor/tensor.h"

namespace mmm {

/// \brief Base class for losses: Forward returns the scalar loss,
/// Backward the gradient wrt the prediction.
class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string TypeName() const = 0;

  /// Computes the mean loss over the batch and caches state for Backward.
  virtual float Forward(const Tensor& prediction, const Tensor& target) = 0;

  /// Gradient of the mean loss with respect to the prediction.
  virtual Tensor Backward() = 0;
};

/// \brief Mean squared error, averaged over all elements. Used by the
/// battery voltage-regression models.
class MSELoss : public Loss {
 public:
  std::string TypeName() const override { return "mse"; }
  float Forward(const Tensor& prediction, const Tensor& target) override;
  Tensor Backward() override;

 private:
  Tensor cached_diff_;
};

/// \brief Softmax + negative log likelihood, averaged over the batch.
/// `target` is a length-batch tensor of class indices. Used by CifarNet.
class CrossEntropyLoss : public Loss {
 public:
  std::string TypeName() const override { return "cross_entropy"; }
  float Forward(const Tensor& prediction, const Tensor& target) override;
  Tensor Backward() override;

 private:
  Tensor cached_softmax_;
  Tensor cached_target_;
};

}  // namespace mmm

#endif  // MMM_NN_LOSS_H_
