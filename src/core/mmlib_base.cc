#include "core/mmlib_base.h"

#include "cas/blob_io.h"
#include "common/strings.h"
#include "core/blob_formats.h"
#include "core/set_codec.h"

namespace mmm {

MMlibBaseApproach::MMlibBaseApproach(StoreContext context,
                                     EnvironmentInfo environment)
    : context_(context), environment_(std::move(environment)) {}

Result<SaveResult> MMlibBaseApproach::SaveAllIndividually(const ModelSet& set) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  const JsonValue architecture_json = set.spec.ToJson();
  const JsonValue environment_json = environment_.ToJson();
  const std::string source_code = set.spec.SourceCode();
  // MMlib records per-model training metadata with every save; like the
  // architecture and environment it is identical across the set, i.e.
  // redundant (O1).
  JsonValue train_info = JsonValue::Object();
  train_info.Set("framework", "pytorch-1.7.1-compatible");
  train_info.Set("optimizer", "sgd");
  train_info.Set("loss", "mse");
  train_info.Set("device", "cpu");
  train_info.Set("dataset_format", "normalized-float32");
  train_info.Set("save_reason", "scheduled-update");
  train_info.Set("library", environment_.library_version);

  // All per-model artifacts of one save commit through a single batch: the
  // n weight encodes run as deferred work items across the pipeline lanes,
  // while the n metadata inserts stay serialized on the one document-store
  // connection (which is exactly what keeps MMlib-base expensive).
  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  for (size_t index = 0; index < set.models.size(); ++index) {
    // One weights artifact (state dict *with* keys — the per-model
    // serialization overhead Baseline eliminates) ...
    std::string model_id = StringFormat("%s-m%05zu", result.set_id.c_str(), index);
    std::string weights_blob = model_id + ".weights.bin";
    const StateDict* model = &set.models[index];
    batch.PutBlobDeferred(weights_blob,
                          [model]() -> Result<std::vector<uint8_t>> {
                            return EncodeStateDict(*model);
                          });
    // ... one code artifact ...
    std::string code_blob = model_id + ".code.py";
    batch.PutBlobString(code_blob, source_code);
    // ... and one metadata document embedding architecture + environment.
    JsonValue doc = JsonValue::Object();
    doc.Set("_id", model_id);
    doc.Set("set_id", result.set_id);
    doc.Set("model_index", static_cast<int64_t>(index));
    doc.Set("architecture", architecture_json);
    doc.Set("environment", environment_json);
    doc.Set("train_info", train_info);
    doc.Set("weights_blob", weights_blob);
    doc.Set("code_blob", code_blob);
    batch.InsertDocument(kMmlibModelCollection, std::move(doc));
  }

  SetDocument set_doc;
  set_doc.id = result.set_id;
  set_doc.approach = Name();
  set_doc.kind = "full";
  set_doc.family = set.spec.family;
  set_doc.num_models = set.models.size();
  StageSetDocument(&batch, set_doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  return result;
}

Result<SaveResult> MMlibBaseApproach::SaveInitial(const ModelSet& set) {
  return SaveAllIndividually(set);
}

Result<SaveResult> MMlibBaseApproach::SaveDerived(const ModelSet& set,
                                                  const ModelSetUpdateInfo&) {
  // Single-model management has no notion of set derivation: every save is a
  // full independent snapshot of every model.
  return SaveAllIndividually(set);
}

Result<std::vector<StateDict>> MMlibBaseApproach::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument set_doc, FetchSetDocument(context_, set_id));
  if (set_doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   set_doc.approach, "', not mmlib-base");
  }
  MMM_RETURN_NOT_OK(CheckIndices(indices, set_doc.num_models));
  // Per-model storage makes selective recovery natural: one document fetch
  // and one blob read per requested model.
  std::vector<StateDict> models;
  models.reserve(indices.size());
  for (size_t index : indices) {
    std::string model_id = StringFormat("%s-m%05zu", set_id.c_str(), index);
    MMM_ASSIGN_OR_RETURN(JsonValue doc,
                         context_.doc_store->Get(kMmlibModelCollection, model_id));
    MMM_ASSIGN_OR_RETURN(std::string weights_blob, doc.GetString("weights_blob"));
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                         CasReadBlob(context_.file_store, weights_blob));
    MMM_ASSIGN_OR_RETURN(StateDict state, DecodeStateDict(blob));
    models.push_back(std::move(state));
  }
  if (stats != nullptr) {
    stats->sets_recovered += 1;
    capture.FillRecover(stats);
  }
  return models;
}

Result<ModelSet> MMlibBaseApproach::Recover(const std::string& set_id,
                                            RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument set_doc, FetchSetDocument(context_, set_id));
  if (set_doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   set_doc.approach, "', not mmlib-base");
  }

  ModelSet set;
  set.models.resize(set_doc.num_models);
  bool have_spec = false;
  for (size_t index = 0; index < set_doc.num_models; ++index) {
    std::string model_id = StringFormat("%s-m%05zu", set_id.c_str(), index);
    MMM_ASSIGN_OR_RETURN(JsonValue doc,
                         context_.doc_store->Get(kMmlibModelCollection, model_id));
    if (!have_spec) {
      MMM_ASSIGN_OR_RETURN(const JsonValue* arch, doc.Get("architecture"));
      MMM_ASSIGN_OR_RETURN(set.spec, ArchitectureSpec::FromJson(*arch));
      have_spec = true;
    }
    MMM_ASSIGN_OR_RETURN(std::string weights_blob, doc.GetString("weights_blob"));
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                         CasReadBlob(context_.file_store, weights_blob));
    MMM_ASSIGN_OR_RETURN(set.models[index], DecodeStateDict(blob));
  }
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  if (stats != nullptr) {
    stats->sets_recovered += 1;
    capture.FillRecover(stats);
  }
  return set;
}

}  // namespace mmm
