#ifndef MMM_COMMON_CLOCK_H_
#define MMM_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mmm {

/// \brief Monotonic wall-clock helpers used by the benchmark harness.
class WallClock {
 public:
  /// Nanoseconds from an arbitrary monotonic epoch.
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// \brief Measures elapsed wall-clock time between Start() and now.
class StopWatch {
 public:
  StopWatch() { Start(); }

  void Start() { start_nanos_ = WallClock::NowNanos(); }

  /// Elapsed time since Start(), in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(WallClock::NowNanos() - start_nanos_) * 1e-9;
  }

  uint64_t ElapsedNanos() const { return WallClock::NowNanos() - start_nanos_; }

 private:
  uint64_t start_nanos_ = 0;
};

/// \brief Accumulates *modeled* time (e.g. simulated store round-trip
/// latency) separately from measured wall-clock time.
///
/// The storage substrate charges each simulated store operation to a
/// SimulatedClock. Benchmarks report measured + modeled time so results are
/// reproducible on any machine while still reflecting the paper's setups
/// (whose differences come from store connection latency).
class SimulatedClock {
 public:
  /// Adds `nanos` of modeled time. Atomic, so concurrent store reads (the
  /// serving layer's recovery workers) can charge one shared clock without
  /// racing; the total is order-independent. Every charge is additionally
  /// mirrored into a per-thread counter (see ThreadNanos), which is what
  /// lets a concurrent serving worker attribute store latency to exactly
  /// the request it is running.
  void Advance(uint64_t nanos) {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
    thread_nanos_ += nanos;
  }

  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

  uint64_t nanos() const { return nanos_.load(std::memory_order_relaxed); }
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

  /// Modeled nanoseconds charged *by the calling thread*, across every
  /// SimulatedClock, since thread start. Monotonic and never reset: callers
  /// measure an operation by differencing before/after, so one counter can
  /// serve arbitrarily nested scopes (a recovery that recovers its base
  /// still sees each scope's exact charge).
  static uint64_t ThreadNanos() { return thread_nanos_; }

 private:
  std::atomic<uint64_t> nanos_{0};
  static inline thread_local uint64_t thread_nanos_ = 0;
};

}  // namespace mmm

#endif  // MMM_COMMON_CLOCK_H_
