// Figure 5 (paper §4.4): median time-to-recover per use case, on both
// hardware profiles (5a: M1 laptop, 5b: server).
//
// Expected shape (paper): MMlib-base and Baseline are flat across use cases
// (every set is independently recoverable), with MMlib-base much slower;
// Update and Provenance show a staircase — recovering U3-k walks the whole
// chain back to U1. Provenance uses the paper's measurement protocol
// ("only train one model with reduced data per iteration"); see
// tab_provenance_training for the extensive-training staircase.
//
// Knobs: MMM_MODELS (default 5000), MMM_RUNS (3; paper uses 5),
// MMM_U3_ITERATIONS (3), MMM_SAMPLES (256), MMM_PROV_REPLAY_MODELS (1),
// MMM_PROV_REPLAY_SAMPLES (64).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe("fig5_ttr");
  ProvenanceRecoverOptions prov;
  prov.max_replay_models =
      static_cast<size_t>(GetEnvInt64("MMM_PROV_REPLAY_MODELS", 1));
  prov.max_replay_samples =
      static_cast<size_t>(GetEnvInt64("MMM_PROV_REPLAY_SAMPLES", 64));

  for (const SetupProfile& profile :
       {SetupProfile::M1(), SetupProfile::Server()}) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.u3_iterations = knobs.u3_iterations;
    config.runs = knobs.runs;
    config.measure_ttr = true;
    config.profile = profile;
    config.provenance_recover = prov;
    config.work_dir = "/tmp/mmm-bench-fig5-" + profile.name;

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();

    const char* figure = profile.name == "M1" ? "5a" : "5b";
    PrintMetricTable(
        StringFormat("Figure %s: median time-to-recover in s (%s setup, %zu "
                     "models, %d runs)",
                     figure, profile.name.c_str(), knobs.models, knobs.runs),
        results, [](const ApproachMetrics& m) { return Seconds(m.ttr_seconds); });
    PrintMetricTable(
        StringFormat("  breakdown, %s: modeled store latency portion in s",
                     profile.name.c_str()),
        results,
        [](const ApproachMetrics& m) { return Seconds(m.ttr_modeled_seconds); });

    CleanupWorkDir(knobs, config.work_dir);
  }
  return 0;
}
