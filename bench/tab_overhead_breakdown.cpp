// §4.2 text experiment: decomposition of the U1 storage overhead.
//
// The paper attributes ~4 KB of set-level overhead to Baseline/Provenance
// and ~8 KB *per model* to MMlib-base (architecture, layer names, model
// code, environment). This bench reports the measured artifact sizes of our
// implementation so the redundancy argument (O1) can be inspected directly.
//
// Knobs: MMM_MODELS (default 5000).

#include "bench/bench_util.h"
#include "core/blob_formats.h"
#include "core/set_codec.h"
#include "prov/environment.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/5000,
                                         /*default_runs=*/1);
  knobs.Describe("tab_overhead_breakdown");

  ModelSet set = MakeInitializedSet(Ffnn48Spec(), knobs.models, 7).ValueOrDie();
  EnvironmentInfo environment = EnvironmentInfo::Capture();

  const size_t raw_params_per_model = 4993 * sizeof(float);
  const size_t state_dict_blob = EncodeStateDict(set.models[0]).size();
  const size_t arch_json = set.spec.ToJson().Dump().size();
  const size_t code = set.spec.SourceCode().size();
  const size_t env_json = environment.ToJson().Dump().size();
  const size_t arch_blob = EncodeArchBlob(set.spec).size();
  const size_t param_blob = EncodeParamBlob(set).size();

  std::printf("\nPer-model artifacts (MMlib-base persists ALL of these n times):\n");
  std::printf("  raw parameters (4,993 x 4 B)        %8zu B\n",
              raw_params_per_model);
  std::printf("  weights blob (state dict with keys) %8zu B  (+%zu B keys/header)\n",
              state_dict_blob, state_dict_blob - raw_params_per_model);
  std::printf("  architecture json (per-model doc)   %8zu B\n", arch_json);
  std::printf("  model source code artifact          %8zu B\n", code);
  std::printf("  environment json (per-model doc)    %8zu B\n", env_json);
  size_t per_model_overhead =
      (state_dict_blob - raw_params_per_model) + arch_json + code + env_json;
  std::printf("  => redundant overhead per model     %8zu B (paper: ~8 KB)\n",
              per_model_overhead);

  std::printf("\nPer-set artifacts (Baseline persists these ONCE):\n");
  std::printf("  architecture blob                   %8zu B\n", arch_blob);
  std::printf("  param blob header + crc             %8zu B\n",
              param_blob - knobs.models * raw_params_per_model);
  std::printf("  => set-level overhead               %8zu B (paper: ~4 KB)\n",
              arch_blob + param_blob - knobs.models * raw_params_per_model);

  double mmlib_total = static_cast<double>(knobs.models) *
                       (raw_params_per_model + per_model_overhead);
  double baseline_total = static_cast<double>(param_blob + arch_blob);
  std::printf(
      "\nProjected U1 storage: MMlib-base %.1f MB vs Baseline %.1f MB "
      "(%.1f%% reduction; paper: 29%%)\n",
      mmlib_total / 1e6, baseline_total / 1e6,
      100.0 * (mmlib_total - baseline_total) / mmlib_total);
  return 0;
}
