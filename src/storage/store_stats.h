#ifndef MMM_STORAGE_STORE_STATS_H_
#define MMM_STORAGE_STORE_STATS_H_

#include <cstdint>

namespace mmm {

/// \brief Operation and byte counters for one store.
///
/// The evaluation's storage-consumption metric is `bytes_written` scoped to
/// one save operation; the write-overhead analysis (opportunity O3 in §3.1)
/// uses `write_ops`.
struct StoreStats {
  uint64_t write_ops = 0;
  uint64_t read_ops = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;

  void Reset() { *this = StoreStats{}; }

  StoreStats operator-(const StoreStats& other) const {
    StoreStats d;
    d.write_ops = write_ops - other.write_ops;
    d.read_ops = read_ops - other.read_ops;
    d.bytes_written = bytes_written - other.bytes_written;
    d.bytes_read = bytes_read - other.bytes_read;
    return d;
  }

  StoreStats operator+(const StoreStats& other) const {
    StoreStats s;
    s.write_ops = write_ops + other.write_ops;
    s.read_ops = read_ops + other.read_ops;
    s.bytes_written = bytes_written + other.bytes_written;
    s.bytes_read = bytes_read + other.bytes_read;
    return s;
  }
};

}  // namespace mmm

#endif  // MMM_STORAGE_STORE_STATS_H_
