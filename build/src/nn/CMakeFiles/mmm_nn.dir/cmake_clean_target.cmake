file(REMOVE_RECURSE
  "libmmm_nn.a"
)
