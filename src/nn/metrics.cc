#include "nn/metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace mmm {
namespace {

Status CheckSameShape(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("metric inputs must share a shape");
  }
  if (a.numel() == 0) {
    return Status::InvalidArgument("metric inputs must be non-empty");
  }
  return Status::OK();
}

Status CheckClassified(const Tensor& logits, const Tensor& labels) {
  if (logits.ndim() != 2 || labels.ndim() != 1 ||
      logits.dim(0) != labels.dim(0)) {
    return Status::InvalidArgument(
        "classification metrics expect logits [n, k] and labels [n]");
  }
  if (logits.dim(0) == 0) {
    return Status::InvalidArgument("metric inputs must be non-empty");
  }
  return Status::OK();
}

}  // namespace

Result<double> Accuracy(const Tensor& logits, const Tensor& labels) {
  MMM_RETURN_NOT_OK(CheckClassified(logits, labels));
  std::vector<size_t> predicted = ArgMaxRows(logits);
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == static_cast<size_t>(labels.at(i))) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

Result<double> Rmse(const Tensor& prediction, const Tensor& target) {
  MMM_RETURN_NOT_OK(CheckSameShape(prediction, target));
  double acc = 0.0;
  for (size_t i = 0; i < prediction.numel(); ++i) {
    double diff = static_cast<double>(prediction.at(i)) - target.at(i);
    acc += diff * diff;
  }
  return std::sqrt(acc / static_cast<double>(prediction.numel()));
}

Result<double> MeanAbsoluteError(const Tensor& prediction, const Tensor& target) {
  MMM_RETURN_NOT_OK(CheckSameShape(prediction, target));
  double acc = 0.0;
  for (size_t i = 0; i < prediction.numel(); ++i) {
    acc += std::fabs(static_cast<double>(prediction.at(i)) - target.at(i));
  }
  return acc / static_cast<double>(prediction.numel());
}

Result<double> RSquared(const Tensor& prediction, const Tensor& target) {
  MMM_RETURN_NOT_OK(CheckSameShape(prediction, target));
  double mean = 0.0;
  for (size_t i = 0; i < target.numel(); ++i) mean += target.at(i);
  mean /= static_cast<double>(target.numel());
  double residual = 0.0, total = 0.0;
  for (size_t i = 0; i < target.numel(); ++i) {
    double r = static_cast<double>(target.at(i)) - prediction.at(i);
    double t = static_cast<double>(target.at(i)) - mean;
    residual += r * r;
    total += t * t;
  }
  if (total == 0.0) {
    return Status::InvalidArgument("R^2 undefined for constant targets");
  }
  return 1.0 - residual / total;
}

Result<std::vector<std::vector<size_t>>> ConfusionMatrix(const Tensor& logits,
                                                         const Tensor& labels,
                                                         size_t num_classes) {
  MMM_RETURN_NOT_OK(CheckClassified(logits, labels));
  if (logits.dim(1) != num_classes) {
    return Status::InvalidArgument("logits have ", logits.dim(1),
                                   " columns, expected ", num_classes);
  }
  std::vector<std::vector<size_t>> matrix(num_classes,
                                          std::vector<size_t>(num_classes, 0));
  std::vector<size_t> predicted = ArgMaxRows(logits);
  for (size_t i = 0; i < predicted.size(); ++i) {
    auto actual = static_cast<size_t>(labels.at(i));
    if (actual >= num_classes) {
      return Status::InvalidArgument("label ", actual, " out of range");
    }
    ++matrix[actual][predicted[i]];
  }
  return matrix;
}

}  // namespace mmm
