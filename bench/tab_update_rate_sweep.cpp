// §4.2 text experiment: storage consumption at 10% / 20% / 30% update rates.
//
// Expected shape (paper): "only the performance of Update changes noticeably
// and correlates to the update rate"; MMlib-base and Baseline always save
// full snapshots, Provenance only adds 500/1000 more dataset references.
//
// Knobs: MMM_MODELS (default 5000), MMM_SAMPLES (256).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/5000,
                                         /*default_runs=*/1);
  knobs.Describe("tab_update_rate_sweep");

  Table table(
      StringFormat("Storage consumption at U3-1 in MB by update rate "
                   "(FFNN-48, %zu models; half of each rate is a full, half "
                   "a partial update)",
                   knobs.models),
      ApproachColumns());

  for (double rate : {0.10, 0.20, 0.30}) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.scenario.full_update_fraction = rate / 2;
    config.scenario.partial_update_fraction = rate / 2;
    config.u3_iterations = 1;
    config.runs = 1;
    config.measure_ttr = false;
    config.work_dir = "/tmp/mmm-bench-rate-sweep";

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();
    const auto& u3 = results.back().metrics;
    std::vector<std::string> cells;
    for (ApproachType type : kAllApproaches) {
      cells.push_back(Mb(u3.at(type).storage_bytes));
    }
    table.AddRow(StringFormat("%.0f%%", rate * 100), cells);
    CleanupWorkDir(knobs, config.work_dir);
  }
  table.Print();
  return 0;
}
