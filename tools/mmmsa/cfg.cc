#include "cfg.h"

namespace mmmsa {
namespace {

class Builder {
 public:
  explicit Builder(Cfg* cfg) : cfg_(cfg) {}

  /// Builds a node subgraph for `stmts` starting after the nodes in
  /// `preds` (every pred gets an edge to the sequence entry). Returns the
  /// open exits of the sequence — the nodes that fall through to whatever
  /// comes next.
  std::vector<int> Seq(const std::vector<Stmt>& stmts, std::vector<int> preds) {
    for (const Stmt& s : stmts) {
      preds = One(s, std::move(preds));
      if (preds.empty()) break;  // unreachable code after return/break
    }
    return preds;
  }

  void Finish(std::vector<int> open) {
    int exit = NewNode(nullptr);
    cfg_->exit = exit;
    for (int p : open) Edge(p, exit);
    for (int r : returns_) Edge(r, exit);
  }

 private:
  struct LoopFrame {
    int header;
    std::vector<int>* breaks;
  };

  int NewNode(const Stmt* s) {
    cfg_->nodes.push_back(CfgNode{s, {}});
    return static_cast<int>(cfg_->nodes.size()) - 1;
  }

  void Edge(int from, int to) { cfg_->nodes[from].succs.push_back(to); }

  std::vector<int> One(const Stmt& s, std::vector<int> preds) {
    int node = NewNode(&s);
    for (int p : preds) Edge(p, node);
    if (cfg_->entry < 0) cfg_->entry = node;

    switch (s.kind) {
      case Stmt::Kind::kPlain:
        return {node};
      case Stmt::Kind::kBlock:
        return Seq(s.body, {node});
      case Stmt::Kind::kReturn:
        returns_.push_back(node);
        return {};
      case Stmt::Kind::kBreak:
        if (!loops_.empty()) loops_.back().breaks->push_back(node);
        return {};
      case Stmt::Kind::kContinue:
        if (!loops_.empty()) Edge(node, loops_.back().header);
        return {};
      case Stmt::Kind::kIf: {
        std::vector<int> open = Seq(s.body, {node});
        if (s.has_else) {
          std::vector<int> eopen = Seq(s.else_body, {node});
          open.insert(open.end(), eopen.begin(), eopen.end());
        } else {
          open.push_back(node);  // condition false falls through
        }
        return open;
      }
      case Stmt::Kind::kLoop: {
        std::vector<int> breaks;
        loops_.push_back(LoopFrame{node, &breaks});
        std::vector<int> open = Seq(s.body, {node});
        loops_.pop_back();
        for (int p : open) Edge(p, node);  // back edge
        breaks.push_back(node);            // condition exits the loop
        return breaks;
      }
      case Stmt::Kind::kSwitch: {
        std::vector<int> breaks;
        loops_.push_back(LoopFrame{node, &breaks});
        std::vector<int> open = Seq(s.body, {node});
        loops_.pop_back();
        open.insert(open.end(), breaks.begin(), breaks.end());
        open.push_back(node);  // no case matched / implicit default
        return open;
      }
    }
    return {node};
  }

  Cfg* cfg_;
  std::vector<LoopFrame> loops_;
  std::vector<int> returns_;
};

}  // namespace

Cfg BuildCfg(const std::vector<Stmt>& body) {
  Cfg cfg;
  Builder b(&cfg);
  std::vector<int> open = b.Seq(body, {});
  b.Finish(std::move(open));
  return cfg;
}

}  // namespace mmmsa
