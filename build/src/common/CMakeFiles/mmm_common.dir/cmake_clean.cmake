file(REMOVE_RECURSE
  "CMakeFiles/mmm_common.dir/env_config.cc.o"
  "CMakeFiles/mmm_common.dir/env_config.cc.o.d"
  "CMakeFiles/mmm_common.dir/id.cc.o"
  "CMakeFiles/mmm_common.dir/id.cc.o.d"
  "CMakeFiles/mmm_common.dir/logging.cc.o"
  "CMakeFiles/mmm_common.dir/logging.cc.o.d"
  "CMakeFiles/mmm_common.dir/rng.cc.o"
  "CMakeFiles/mmm_common.dir/rng.cc.o.d"
  "CMakeFiles/mmm_common.dir/status.cc.o"
  "CMakeFiles/mmm_common.dir/status.cc.o.d"
  "CMakeFiles/mmm_common.dir/strings.cc.o"
  "CMakeFiles/mmm_common.dir/strings.cc.o.d"
  "libmmm_common.a"
  "libmmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
