// Content-addressed chunk store benchmark: storage reduction and save /
// recover cost of cross-set dedup (src/cas/) on a derived fleet.
//
// A battery deployment is archived as a 100-set version fleet with the
// Baseline approach — every save a full snapshot, the paper's §2.2 storage
// staircase and the workload CAS targets: consecutive sets share almost all
// of their parameter bytes (default update rate: 5% full + 5% partial
// retrains per cycle), but without dedup each snapshot pays for all of them
// again. Each row re-archives the identical fleet (the scenario is seeded)
// into a fresh store under one chunking configuration and reports:
//
//   - physical store bytes (every artifact blob, chunks included) and the
//     reduction vs the CAS-off control row;
//   - the chunk index's own accounting: unique chunks, manifest logical
//     bytes, dedup ratio (logical / stored);
//   - total save wall time and full-fleet recover wall time, so the dedup
//     win is priced against the chunking cost.
//
// Expected shape: CAS-off pays ~100x one snapshot's bytes. Chunked rows
// collapse that to roughly one snapshot plus the per-cycle deltas — well
// over the 2x acceptance floor — with smaller average chunks trading index
// size and save time for a finer dedup grain. The fixed-size row is
// competitive *on this fleet* because every model has a fixed byte size, so
// unchanged models sit at stable offsets and fixed blocks stay aligned;
// content-defined chunking is the general-purpose default because a single
// size change would re-align every later fixed block, while the Gear
// boundaries resynchronize within one chunk.
//
// Results are also written to BENCH_dedup.json.
//
// Knobs: MMM_SETS (default 100), MMM_MODELS (default 20), MMM_SAMPLES (32).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cas/cas_store.h"
#include "common/clock.h"
#include "core/gc.h"
#include "core/inspect.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

struct ChunkRow {
  std::string label;
  CasOptions cas;  ///< enabled=false for the control row
};

struct RowResult {
  std::string label;
  double save_s = 0.0;      ///< wall time of the 100 saves
  double recover_s = 0.0;   ///< wall time of recovering every set
  uint64_t store_bytes = 0; ///< physical bytes of every artifact blob
  CasStore::Stats stats;    ///< zero-valued for the control row
};

CasOptions Chunked(uint64_t avg, bool fixed_size) {
  CasOptions cas;
  cas.enabled = true;
  cas.avg_chunk_bytes = avg;
  cas.min_chunk_bytes = avg / 4;
  cas.max_chunk_bytes = avg * 8;
  cas.fixed_size = fixed_size;
  return cas;
}

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/20,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 32));
  size_t sets = static_cast<size_t>(GetEnvInt64("MMM_SETS", 100));
  knobs.Describe("tab_dedup");
  std::printf("  (fleet size: %zu full snapshots; override with MMM_SETS)\n",
              sets);

  const ChunkRow rows_in[] = {
      {"cas off", CasOptions{}},
      {"cdc 4K", Chunked(4096, /*fixed_size=*/false)},
      {"cdc 8K", Chunked(8192, /*fixed_size=*/false)},
      {"cdc 16K", Chunked(16384, /*fixed_size=*/false)},
      {"fixed 8K", Chunked(8192, /*fixed_size=*/true)},
  };

  std::vector<RowResult> rows;
  for (const ChunkRow& in : rows_in) {
    // Re-archive the identical version fleet (seeded scenario) fresh.
    ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
    scenario_config.samples_per_dataset = knobs.samples;
    MultiModelScenario scenario(scenario_config);
    scenario.Init().Check();

    ModelSetManager::Options options;
    options.root_dir = "/tmp/mmm-bench-dedup/store";
    options.resolver = &scenario;
    options.cas = in.cas;
    auto manager = ModelSetManager::Open(options).ValueOrDie();

    RowResult row;
    row.label = in.label;

    StopWatch save_watch;
    std::vector<std::string> ids;
    ids.push_back(
        manager->SaveInitial(ApproachType::kBaseline, scenario.current_set())
            .ValueOrDie()
            .set_id);
    for (size_t version = 1; version < sets; ++version) {
      ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      ids.push_back(manager
                        ->SaveDerived(ApproachType::kBaseline,
                                      scenario.current_set(), update)
                        .ValueOrDie()
                        .set_id);
    }
    row.save_s = save_watch.ElapsedSeconds();

    StopWatch recover_watch;
    for (const std::string& id : ids) {
      manager->Recover(id).status().Check();
    }
    row.recover_s = recover_watch.ElapsedSeconds();

    for (const std::string& blob :
         manager->file_store()->List().ValueOrDie()) {
      row.store_bytes += manager->file_store()->Size(blob).ValueOrDie();
    }
    if (manager->cas() != nullptr) {
      row.stats = manager->cas()->ComputeStats().ValueOrDie();
    }

    // Dedup must never cost integrity: every row leaves a healthy store.
    StoreValidationReport health = manager->ValidateStore().ValueOrDie();
    if (!health.ok()) Status::Internal(health.problems.front()).Check();
    OrphanReport orphans = FindOrphanBlobs(manager->context()).ValueOrDie();
    if (!orphans.clean()) {
      Status::Internal("orphan blob ", orphans.orphan_blobs.front()).Check();
    }

    rows.push_back(std::move(row));
    manager.reset();
    Env::Default()->RemoveDirs("/tmp/mmm-bench-dedup").Check();
  }

  const uint64_t control_bytes = rows.front().store_bytes;
  std::printf("\nBaseline approach, %zu full snapshots of %zu models:\n",
              sets, knobs.models);
  std::printf("%-10s | %10s | %9s | %8s | %8s | %10s | %10s\n", "chunking",
              "store MB", "reduction", "save s", "recov s", "chunks",
              "dedup x");
  JsonValue out_rows = JsonValue::Array();
  for (const RowResult& row : rows) {
    double reduction = row.store_bytes == 0
                           ? 0.0
                           : static_cast<double>(control_bytes) /
                                 static_cast<double>(row.store_bytes);
    std::printf("%-10s | %10s | %8.2fx | %8.2f | %8.2f | %10llu | %9.2fx\n",
                row.label.c_str(), Mb(row.store_bytes).c_str(), reduction,
                row.save_s, row.recover_s,
                static_cast<unsigned long long>(row.stats.unique_chunks),
                row.stats.dedup_ratio());

    JsonValue entry = JsonValue::Object();
    entry.Set("chunking", row.label);
    entry.Set("store_bytes", row.store_bytes);
    entry.Set("storage_reduction_vs_no_cas", reduction);
    entry.Set("save_seconds", row.save_s);
    entry.Set("recover_all_seconds", row.recover_s);
    entry.Set("unique_chunks", row.stats.unique_chunks);
    entry.Set("chunk_bytes", row.stats.chunk_bytes);
    entry.Set("manifests", row.stats.manifests);
    entry.Set("manifest_raw_bytes", row.stats.manifest_raw_bytes);
    entry.Set("dedup_ratio", row.stats.dedup_ratio());
    out_rows.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "tab_dedup");
  doc.Set("sets", static_cast<uint64_t>(sets));
  doc.Set("models", static_cast<uint64_t>(knobs.models));
  doc.Set("rows", std::move(out_rows));
  std::string json = doc.DumpPretty() + "\n";
  Env::Default()
      ->WriteFile("BENCH_dedup.json",
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size()))
      .Check();
  std::printf(
      "\nwrote BENCH_dedup.json\n"
      "(Expected: every chunked row shrinks the store by well over 2x — the "
      "fleet shares\n most parameter bytes across snapshots. Fixed-size "
      "blocks stay competitive only\n because this fleet's models never "
      "change size; see the header comment.)\n");
  return 0;
}
