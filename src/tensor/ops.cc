#include "tensor/ops.h"

#include <cmath>

namespace mmm {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.shape() == b.shape());
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  AddInPlace(&out, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  SubInPlace(&out, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  auto dst = out.mutable_data();
  auto src = b.data();
  for (size_t i = 0; i < dst.size(); ++i) dst[i] *= src[i];
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b);
  auto dst = a->mutable_data();
  auto src = b.data();
  for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void SubInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b);
  auto dst = a->mutable_data();
  auto src = b.data();
  for (size_t i = 0; i < dst.size(); ++i) dst[i] -= src[i];
}

void Axpy(Tensor* a, float scale, const Tensor& b) {
  CheckSameShape(*a, b);
  auto dst = a->mutable_data();
  auto src = b.data();
  for (size_t i = 0; i < dst.size(); ++i) dst[i] += scale * src[i];
}

Tensor Scale(const Tensor& a, float factor) {
  Tensor out = a;
  ScaleInPlace(&out, factor);
  return out;
}

void ScaleInPlace(Tensor* a, float factor) {
  for (float& x : a->mutable_data()) x *= factor;
}

Tensor AddScalar(const Tensor& a, float value) {
  Tensor out = a;
  for (float& x : out.mutable_data()) x += value;
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out = a;
  for (float& x : out.mutable_data()) x = fn(x);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out(Shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* orow = po + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out(Shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      po[i * n + j] = acc;
    }
  }
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out(Shape{k, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* orow = po + p * n;
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  MMM_DCHECK(a.ndim() == 2);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.at2(j, i) = a.at2(i, j);
  }
  return out;
}

Tensor AddRowVector(const Tensor& matrix, const Tensor& row) {
  MMM_DCHECK(matrix.ndim() == 2 && row.ndim() == 1 && matrix.dim(1) == row.dim(0));
  Tensor out = matrix;
  const size_t m = matrix.dim(0), n = matrix.dim(1);
  float* po = out.mutable_data().data();
  const float* pr = row.data().data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) po[i * n + j] += pr[j];
  }
  return out;
}

Tensor SumRows(const Tensor& matrix) {
  MMM_DCHECK(matrix.ndim() == 2);
  const size_t m = matrix.dim(0), n = matrix.dim(1);
  Tensor out(Shape{n});
  float* po = out.mutable_data().data();
  const float* pm = matrix.data().data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) po[j] += pm[i * n + j];
  }
  return out;
}

float Sum(const Tensor& a) {
  float acc = 0.0f;
  for (float x : a.data()) acc += x;
  return acc;
}

float Mean(const Tensor& a) {
  MMM_DCHECK(a.numel() > 0);
  return Sum(a) / static_cast<float>(a.numel());
}

float MaxAbs(const Tensor& a) {
  float best = 0.0f;
  for (float x : a.data()) best = std::max(best, std::fabs(x));
  return best;
}

std::vector<size_t> ArgMaxRows(const Tensor& matrix) {
  MMM_DCHECK(matrix.ndim() == 2);
  const size_t m = matrix.dim(0), n = matrix.dim(1);
  std::vector<size_t> out(m, 0);
  for (size_t i = 0; i < m; ++i) {
    float best = matrix.at2(i, 0);
    for (size_t j = 1; j < n; ++j) {
      if (matrix.at2(i, j) > best) {
        best = matrix.at2(i, j);
        out[i] = j;
      }
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  MMM_DCHECK(logits.ndim() == 2);
  const size_t m = logits.dim(0), n = logits.dim(1);
  Tensor out = logits;
  float* po = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    float* row = po + i * n;
    float max_val = row[0];
    for (size_t j = 1; j < n; ++j) max_val = std::max(max_val, row[j]);
    float denom = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - max_val);
      denom += row[j];
    }
    for (size_t j = 0; j < n; ++j) row[j] /= denom;
  }
  return out;
}

}  // namespace mmm
