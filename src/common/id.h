#ifndef MMM_COMMON_ID_H_
#define MMM_COMMON_ID_H_

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace mmm {

/// \brief Generates short, unique, human-readable identifiers.
///
/// Identifiers look like "set-000001-a1b2c3d4": a caller-chosen prefix, a
/// monotonically increasing counter, and a random suffix. Generation is
/// deterministic given the seed so that experiment runs are reproducible.
///
/// Next/AdvanceTo are virtual so an id *source* can be substituted: the
/// cluster coordinator draws ids centrally (placement must know the id
/// before the save runs) and feeds them to each shard's manager through a
/// queue-backed subclass (see cluster/shard.h).
class IdGenerator {
 public:
  explicit IdGenerator(uint64_t seed = 42) : rng_(Rng(seed).Fork("id-gen")) {}
  virtual ~IdGenerator() = default;

  /// Returns the next identifier with the given prefix.
  virtual std::string Next(const std::string& prefix);

  /// Ensures the next identifier uses a counter of at least `counter`.
  /// Used when reopening a store so new ids cannot collide with persisted
  /// ones.
  virtual void AdvanceTo(uint64_t counter) {
    if (counter > counter_) counter_ = counter;
  }

  /// Number of identifiers handed out so far.
  uint64_t count() const { return counter_; }

 private:
  Rng rng_;
  uint64_t counter_ = 0;
};

}  // namespace mmm

#endif  // MMM_COMMON_ID_H_
