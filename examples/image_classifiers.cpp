// Image-classification scenario (paper §4.1, variation 3).
//
// A fleet of small CIFAR convnets (6,882 parameters each, matching the
// paper) that is periodically retrained on drifting data and archived with
// the Provenance approach — the derived sets cost only a few kilobytes, and
// recovery retrains the updated models bit-exactly from the archived
// pipeline + dataset references.
//
// Run: ./build/examples/image_classifiers

#include <cstdio>

#include "common/strings.h"
#include "core/manager.h"
#include "data/cifar_synthetic.h"
#include "nn/metrics.h"
#include "nn/trainer.h"
#include "workload/scenario.h"

using namespace mmm;  // NOLINT — example code

namespace {

double ModelAccuracy(Model* model, const TrainingData& data) {
  return Accuracy(model->Predict(data.inputs), data.targets).ValueOrDie();
}

}  // namespace

int main() {
  std::printf("=== Image classifiers: 60 CIFAR convnets, Provenance archive ===\n");

  ScenarioConfig config = ScenarioConfig::Cifar(/*num_models=*/60);
  config.full_update_fraction = 0.10;
  config.partial_update_fraction = 0.05;
  config.samples_per_dataset = 64;
  config.epochs = 2;
  MultiModelScenario scenario(config);
  scenario.Init().Check();

  ModelSetManager::Options options;
  options.root_dir = "/tmp/mmm-image-classifiers";
  options.resolver = &scenario;
  Env::Default()->RemoveDirs(options.root_dir).Check();
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  SaveResult head =
      manager->SaveInitial(ApproachType::kProvenance, scenario.current_set())
          .ValueOrDie();
  std::printf("U1   full snapshot: %s\n", HumanBytes(head.bytes_written).c_str());

  std::string head_id = head.set_id;
  for (int cycle = 1; cycle <= 2; ++cycle) {
    ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
    update.base_set_id = head_id;
    SaveResult saved =
        manager
            ->SaveDerived(ApproachType::kProvenance, scenario.current_set(),
                          update)
            .ValueOrDie();
    head_id = saved.set_id;
    std::printf("U3-%d provenance record: %s (pipeline + dataset references "
                "only)\n",
                cycle, HumanBytes(saved.bytes_written).c_str());
  }

  // Pick an updated model and show what retraining bought it.
  CifarSyntheticGenerator generator(config.seed);
  size_t updated_model = 0;
  {
    Rng rng = Rng(config.seed).Fork("update-schedule", 2);
    updated_model = rng.Permutation(config.num_models)[0];
  }
  TrainingData eval = generator.Generate(updated_model, /*cycle=*/2, 128);

  Model initial = Model::Create(scenario.current_set().spec).ValueOrDie();
  initial
      .LoadStateDict(
          manager->Recover(head.set_id).ValueOrDie().models[updated_model])
      .Check();
  Model current = Model::Create(scenario.current_set().spec).ValueOrDie();
  current.LoadStateDict(scenario.current_set().models[updated_model]).Check();
  std::printf(
      "\nmodel %zu on its cycle-2 data: accuracy %.2f (as commissioned) -> "
      "%.2f (after updates)\n",
      updated_model, ModelAccuracy(&initial, eval),
      ModelAccuracy(&current, eval));

  // Recover the newest set: Provenance replays the archived training runs.
  RecoverStats stats;
  ModelSet recovered = manager->Recover(head_id, &stats).ValueOrDie();
  size_t mismatched = 0;
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      if (!recovered.models[m][p].second.Equals(
              scenario.current_set().models[m][p].second)) {
        ++mismatched;
        break;
      }
    }
  }
  std::printf(
      "\nrecovered newest set: %llu sets walked, %llu models retrained, "
      "%zu mismatched (expect 0 — replay is bit-exact)\n",
      static_cast<unsigned long long>(stats.sets_recovered),
      static_cast<unsigned long long>(stats.models_retrained), mismatched);

  std::printf("\nDone. Artifacts under /tmp/mmm-image-classifiers\n");
  return 0;
}
