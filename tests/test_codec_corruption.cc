// Corruption sweeps over every encoded blob format.
//
// Every binary format ends in a CRC32 footer, and every decoder is expected
// to reject damaged input with a Status — never crash, never read out of
// bounds, never return wrong bytes. This suite feeds each decoder:
//
//  - every truncation length (strided for large blobs, dense at the edges),
//  - bit flips across the blob (strided positions, two masks each),
//  - tiny and empty inputs, and deterministic random garbage.
//
// All mutations are deterministic, so a CRC near-collision would be a
// reproducible failure, not a flake. The suite runs under the sanitizer CI
// jobs, where an out-of-bounds read in a decoder fails loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "core/blob_formats.h"
#include "core/set_codec.h"
#include "serialize/compress.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using Decoder = std::function<Status(std::span<const uint8_t>)>;

ModelSet SmallSet(size_t count, uint64_t seed = 1) {
  return MakeInitializedSet(Ffnn48Spec(), count, seed).ValueOrDie();
}

/// Truncation lengths: every length for small blobs; for large ones, dense
/// coverage of both ends (where headers and CRC footers live) plus strided
/// interior samples.
std::vector<size_t> TruncationLengths(size_t size) {
  std::vector<size_t> lengths;
  if (size <= 512) {
    for (size_t n = 0; n < size; ++n) lengths.push_back(n);
    return lengths;
  }
  for (size_t n = 0; n < 64; ++n) lengths.push_back(n);
  for (size_t n = size - 64; n < size; ++n) lengths.push_back(n);
  const size_t stride = size / 128;
  for (size_t n = 64; n < size - 64; n += stride) lengths.push_back(n);
  return lengths;
}

/// Byte positions for bit flips: all of them for small blobs, strided
/// otherwise (always including first and last bytes).
std::vector<size_t> FlipPositions(size_t size) {
  std::vector<size_t> positions;
  const size_t stride = size <= 512 ? 1 : size / 256;
  for (size_t p = 0; p < size; p += stride) positions.push_back(p);
  if (positions.back() != size - 1) positions.push_back(size - 1);
  return positions;
}

/// Runs the full mutation sweep. With `expect_error`, every mutation must
/// yield a non-OK status; without it (self-describing text formats where a
/// flipped character can still parse), surviving the call is the contract.
void SweepCorruptions(const std::vector<uint8_t>& blob, const Decoder& decode,
                      const std::string& label, bool expect_error = true) {
  ASSERT_FALSE(blob.empty()) << label;
  Status pristine = decode(blob);
  ASSERT_TRUE(pristine.ok())
      << label << ": pristine blob must decode: " << pristine.ToString();

  for (size_t n : TruncationLengths(blob.size())) {
    std::vector<uint8_t> truncated(blob.begin(), blob.begin() + n);
    Status status = decode(truncated);
    if (expect_error) {
      EXPECT_FALSE(status.ok())
          << label << ": decoder accepted truncation to " << n << " bytes";
    }
  }

  for (size_t pos : FlipPositions(blob.size())) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> flipped = blob;
      flipped[pos] ^= mask;
      Status status = decode(flipped);
      if (expect_error) {
        EXPECT_FALSE(status.ok())
            << label << ": decoder accepted bit flip 0x" << std::hex
            << unsigned{mask} << " at byte " << std::dec << pos;
      }
    }
  }
}

/// Empty input, sub-header scraps, and deterministic garbage must all be
/// rejected without crashing.
void SweepGarbage(const Decoder& decode, const std::string& label) {
  EXPECT_FALSE(decode({}).ok()) << label << ": accepted empty input";
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t size : {1, 2, 3, 4, 7, 8, 9, 16, 64, 4096}) {
    std::vector<uint8_t> garbage(size);
    for (uint8_t& b : garbage) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<uint8_t>(state >> 56);
    }
    EXPECT_FALSE(decode(garbage).ok())
        << label << ": accepted " << size << " bytes of garbage";
  }
}

TEST(CodecCorruptionTest, StateDictBlob) {
  std::vector<uint8_t> blob = EncodeStateDict(SmallSet(1).models[0]);
  Decoder decode = [](std::span<const uint8_t> b) {
    return DecodeStateDict(b).status();
  };
  SweepCorruptions(blob, decode, "state dict");
  SweepGarbage(decode, "state dict");
}

TEST(CodecCorruptionTest, ParamBlob) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  Decoder decode = [&set](std::span<const uint8_t> b) {
    return DecodeParamBlob(set.spec, b).status();
  };
  SweepCorruptions(blob, decode, "param blob");
  SweepGarbage(decode, "param blob");
}

TEST(CodecCorruptionTest, HashTableBlob) {
  ModelSet set = SmallSet(3);
  std::vector<uint8_t> blob = EncodeHashTable(ComputeHashTable(set));
  Decoder decode = [](std::span<const uint8_t> b) {
    return DecodeHashTable(b).status();
  };
  SweepCorruptions(blob, decode, "hash table");
  SweepGarbage(decode, "hash table");
}

TEST(CodecCorruptionTest, DiffBlobAbsolute) {
  ModelSet set = SmallSet(2);
  std::vector<DiffEntry> entries = {{0, 0}, {1, 1}};
  std::vector<uint8_t> blob = EncodeDiffBlob(set, entries);
  Decoder decode = [&set](std::span<const uint8_t> b) {
    return DecodeDiffBlob(set.spec, b).status();
  };
  SweepCorruptions(blob, decode, "diff blob (absolute)");
  SweepGarbage(decode, "diff blob (absolute)");
}

TEST(CodecCorruptionTest, DiffBlobXor) {
  ModelSet set = SmallSet(2, /*seed=*/1);
  ModelSet base = SmallSet(2, /*seed=*/2);
  std::vector<DiffEntry> entries = {{0, 0}, {1, 1}};
  std::vector<uint8_t> blob =
      EncodeDiffBlob(set, entries, DiffEncoding::kXorBase, &base);
  Decoder decode = [&set](std::span<const uint8_t> b) {
    return DecodeDiffBlob(set.spec, b).status();
  };
  SweepCorruptions(blob, decode, "diff blob (xor)");
}

/// The real read path for compressed artifacts: auto-detecting decompress,
/// then the payload decoder. A flip in the compressed stream either breaks
/// decompression or yields wrong bytes that the payload CRC then rejects —
/// either way the composition must error out, not crash (a corrupted
/// raw-size header in particular must not drive a giant allocation).
TEST(CodecCorruptionTest, CompressedParamBlob) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> raw = EncodeParamBlob(set);
  Decoder decode = [&set](std::span<const uint8_t> b) {
    auto decompressed = DecompressBlob(b);
    if (!decompressed.ok()) return decompressed.status();
    return DecodeParamBlob(set.spec, decompressed.ValueOrDie()).status();
  };
  for (Compression method : {Compression::kLz, Compression::kShuffleLz}) {
    std::string label = "compressed param blob (" +
                        std::string(CompressionName(method)) + ")";
    SweepCorruptions(CompressBlob(method, raw), decode, label);
  }
  SweepGarbage(decode, "compressed param blob");
}

/// Feeds `blob` to the incremental BlobDecompressor in `chunk`-sized
/// pieces, mirroring how stream windows arrive.
Status IncrementalDecompress(std::span<const uint8_t> blob, size_t chunk,
                             std::vector<uint8_t>* out) {
  BlobDecompressor decompressor;
  for (size_t i = 0; i < blob.size(); i += chunk) {
    size_t take = std::min(chunk, blob.size() - i);
    Status status = decompressor.Feed(blob.subspan(i, take), out);
    if (!status.ok()) return status;
  }
  return decompressor.Finish(out);
}

/// The incremental decompressor must agree with the materializing one on
/// every input — same accept/reject verdict (messages may differ) and,
/// when both accept, bit-identical output — at any chunking. In particular
/// a corrupted match offset reaching before the retained window must be
/// rejected, and a truncated stream must fail at Finish instead of
/// returning short output.
void CheckIncrementalAgreement(const std::vector<uint8_t>& blob,
                               const std::string& label) {
  Result<std::vector<uint8_t>> materialized = DecompressBlob(blob);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64 * 1024 + 1}}) {
    std::vector<uint8_t> incremental;
    Status status = IncrementalDecompress(blob, chunk, &incremental);
    ASSERT_EQ(status.ok(), materialized.ok())
        << label << " chunk " << chunk << ": incremental says '"
        << status.ToString() << "', materializing says '"
        << materialized.status().ToString() << "'";
    if (materialized.ok()) {
      ASSERT_EQ(incremental, materialized.ValueOrDie())
          << label << " chunk " << chunk << ": outputs diverge";
    }
  }
}

/// Fuzz-style sweep for the incremental decoder (DESIGN.md §12): every
/// truncation and bit flip of a compressed param blob, decoded in three
/// chunkings, must match the materializing decoder's verdict and bytes.
TEST(CodecCorruptionTest, IncrementalDecompressorAgreesUnderCorruption) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> raw = EncodeParamBlob(set);
  for (Compression method :
       {Compression::kNone, Compression::kLz, Compression::kShuffleLz}) {
    std::vector<uint8_t> blob = CompressBlob(method, raw);
    std::string label = "incremental (" +
                        std::string(CompressionName(method)) + ")";
    CheckIncrementalAgreement(blob, label);
    for (size_t n : TruncationLengths(blob.size())) {
      CheckIncrementalAgreement(
          std::vector<uint8_t>(blob.begin(), blob.begin() + n),
          label + " truncated to " + std::to_string(n));
    }
    for (size_t pos : FlipPositions(blob.size())) {
      for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
        std::vector<uint8_t> flipped = blob;
        flipped[pos] ^= mask;
        CheckIncrementalAgreement(flipped, label + " flipped at " +
                                               std::to_string(pos));
      }
    }
  }
  // Deterministic garbage, including inputs that masquerade as headers.
  uint64_t state = 0x243f6a8885a308d3ull;
  for (size_t size : {1, 2, 3, 4, 5, 8, 16, 64, 4096}) {
    std::vector<uint8_t> garbage(size);
    for (uint8_t& b : garbage) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<uint8_t>(state >> 56);
    }
    CheckIncrementalAgreement(garbage,
                              "garbage of " + std::to_string(size));
  }
}

/// A match offset pointing before the start of the output (offset > bytes
/// produced so far) must be rejected by the incremental decoder exactly
/// like the materializing one — the retained-window check is equivalent to
/// the materializing `offset > produced` check by construction.
TEST(CodecCorruptionTest, IncrementalLzRejectsOffsetBeforeWindow) {
  // Hand-built MMZ1+lz stream: token = 1 literal + a match, but the match
  // offset (2) reaches before the single produced byte.
  std::vector<uint8_t> raw = {'A', 'A', 'A', 'A', 'A', 'A'};
  std::vector<uint8_t> blob = CompressBlob(Compression::kLz, raw);
  // Locate the first token byte: magic(4) + method(1) + varint raw_size(1).
  ASSERT_GT(blob.size(), 8u);
  const size_t token_at = 6;
  std::vector<uint8_t> bad = blob;
  // Rewrite the offset bytes right after the token+literal to 0x0002.
  // Original stream: token(1 lit, match) 'A' off_lo off_hi ...
  bad[token_at + 2] = 0x02;
  bad[token_at + 3] = 0x00;
  CheckIncrementalAgreement(bad, "lz offset before window");
  std::vector<uint8_t> out;
  Status status = IncrementalDecompress(bad, 1, &out);
  EXPECT_FALSE(status.ok());
  // Offset 0 is never valid either.
  std::vector<uint8_t> zero = blob;
  zero[token_at + 2] = 0x00;
  zero[token_at + 3] = 0x00;
  CheckIncrementalAgreement(zero, "lz offset zero");
}

/// The architecture blob is JSON text: a flipped character inside a string
/// can still parse, so only the no-crash contract applies.
TEST(CodecCorruptionTest, ArchBlobNeverCrashes) {
  std::string text = EncodeArchBlob(Ffnn48Spec());
  std::vector<uint8_t> blob(text.begin(), text.end());
  Decoder decode = [](std::span<const uint8_t> b) {
    auto parsed = DecodeArchBlob(std::string(b.begin(), b.end()));
    (void)parsed;
    return Status::OK();
  };
  SweepCorruptions(blob, decode, "arch blob", /*expect_error=*/false);
}

}  // namespace
}  // namespace mmm
