#include "core/inspect.h"

#include <map>

#include "cas/blob_io.h"
#include "common/strings.h"
#include "core/blob_formats.h"

namespace mmm {
namespace {

SetSummary SummaryFromDoc(const SetDocument& doc) {
  SetSummary summary;
  summary.id = doc.id;
  summary.approach = doc.approach;
  summary.kind = doc.kind;
  summary.base_set_id = doc.base_set_id;
  summary.family = doc.family;
  summary.num_models = doc.num_models;
  summary.chain_depth = doc.chain_depth;
  return summary;
}

std::vector<std::string> ArtifactBlobs(const SetDocument& doc) {
  std::vector<std::string> blobs;
  for (const std::string& blob :
       {doc.arch_blob, doc.param_blob, doc.hash_blob, doc.diff_blob,
        doc.prov_blob}) {
    if (!blob.empty()) blobs.push_back(blob);
  }
  return blobs;
}

Result<uint64_t> ArtifactBytes(const StoreContext& context,
                               const SetDocument& doc) {
  uint64_t total = 0;
  for (const std::string& blob : ArtifactBlobs(doc)) {
    MMM_ASSIGN_OR_RETURN(bool exists, context.file_store->Exists(blob));
    if (!exists) continue;
    // Logical artifact size: a chunked blob counts its reassembled bytes,
    // so summaries stay comparable across CAS-on and CAS-off stores.
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                         CasReadBlob(context.file_store, blob));
    total += data.size();
  }
  return total;
}

}  // namespace

Result<std::vector<SetSummary>> ListSets(const StoreContext& context) {
  MMM_RETURN_NOT_OK(context.Validate());
  if (context.doc_store->Count(kSetCollection) == 0) {
    return std::vector<SetSummary>{};
  }
  MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> docs,
                       context.doc_store->All(kSetCollection));
  std::vector<SetSummary> summaries;
  summaries.reserve(docs.size());
  for (const JsonValue& json : docs) {
    MMM_ASSIGN_OR_RETURN(SetDocument doc, SetDocument::FromJson(json));
    SetSummary summary = SummaryFromDoc(doc);
    MMM_ASSIGN_OR_RETURN(summary.artifact_bytes, ArtifactBytes(context, doc));
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

Result<std::vector<SetSummary>> Lineage(const StoreContext& context,
                                        const std::string& set_id) {
  MMM_RETURN_NOT_OK(context.Validate());
  std::vector<SetSummary> chain;
  std::string current = set_id;
  uint64_t budget = context.doc_store->Count(kSetCollection) + 1;
  while (!current.empty()) {
    if (budget-- == 0) {
      return Status::Corruption("lineage of ", set_id, " does not terminate");
    }
    MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context, current));
    SetSummary summary = SummaryFromDoc(doc);
    MMM_ASSIGN_OR_RETURN(summary.artifact_bytes, ArtifactBytes(context, doc));
    chain.push_back(std::move(summary));
    current = doc.base_set_id;
  }
  return chain;
}

Result<ChainInspection> InspectChain(const StoreContext& context,
                                     const std::string& set_id) {
  MMM_RETURN_NOT_OK(context.Validate());
  ChainInspection inspection;
  inspection.set_id = set_id;
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context, set_id));
  inspection.recorded_depth = doc.chain_depth;
  uint64_t budget = context.doc_store->Count(kSetCollection) + 1;
  while (doc.kind != "full") {
    if (budget-- == 0) {
      return Status::Corruption("chain of ", set_id,
                                " does not reach a full snapshot");
    }
    if (doc.base_set_id.empty()) {
      return Status::Corruption("derived set ", doc.id, " has no base");
    }
    MMM_ASSIGN_OR_RETURN(doc, FetchSetDocument(context, doc.base_set_id));
    ++inspection.depth;
  }
  inspection.root_id = doc.id;
  return inspection;
}

Result<StoreValidationReport> ValidateStore(const StoreContext& context) {
  MMM_RETURN_NOT_OK(context.Validate());
  StoreValidationReport report;
  if (context.doc_store->Count(kSetCollection) == 0) return report;

  MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> docs,
                       context.doc_store->All(kSetCollection));
  std::map<std::string, SetDocument> by_id;
  std::vector<SetDocument> set_docs;
  for (const JsonValue& json : docs) {
    auto parsed = SetDocument::FromJson(json);
    if (!parsed.ok()) {
      report.problems.push_back("unparseable set document: " +
                                parsed.status().ToString());
      continue;
    }
    set_docs.push_back(parsed.ValueOrDie());
    by_id[set_docs.back().id] = set_docs.back();
  }

  for (const SetDocument& doc : set_docs) {
    ++report.sets_checked;
    // MMlib-base stores one document + two blobs per model instead of
    // set-level artifacts; validate those and move on.
    if (doc.approach == "mmlib-base") {
      for (uint64_t index = 0; index < doc.num_models; ++index) {
        std::string model_id =
            StringFormat("%s-m%05llu", doc.id.c_str(),
                         static_cast<unsigned long long>(index));
        auto model_doc = context.doc_store->Get("mmlib_models", model_id);
        if (!model_doc.ok()) {
          report.problems.push_back(doc.id + ": missing model document " +
                                    model_id);
          continue;
        }
        auto weights_name = model_doc.ValueOrDie().GetString("weights_blob");
        if (!weights_name.ok()) {
          report.problems.push_back(model_id + ": document lacks weights_blob");
          continue;
        }
        auto blob = CasReadBlob(context.file_store, weights_name.ValueOrDie());
        if (!blob.ok()) {
          report.problems.push_back(model_id + ": cannot read weights blob");
          continue;
        }
        ++report.blobs_checked;
        report.bytes_checked += blob.ValueOrDie().size();
        if (auto decoded = DecodeStateDict(blob.ValueOrDie()); !decoded.ok()) {
          report.problems.push_back(model_id + ": corrupt weights blob: " +
                                    decoded.status().ToString());
        }
      }
      continue;
    }
    // 1. Structural expectations per kind.
    if (doc.kind == "full" && (doc.arch_blob.empty() || doc.param_blob.empty())) {
      report.problems.push_back(doc.id + ": full set missing arch/param blob");
    }
    if (doc.kind == "delta" && doc.diff_blob.empty()) {
      report.problems.push_back(doc.id + ": delta set missing diff blob");
    }
    if (doc.kind == "prov" && doc.prov_blob.empty()) {
      report.problems.push_back(doc.id + ": provenance set missing record blob");
    }
    if (doc.kind != "full" && doc.base_set_id.empty()) {
      report.problems.push_back(doc.id + ": derived set has no base");
    }
    if (!doc.base_set_id.empty() && !by_id.contains(doc.base_set_id) &&
        doc.kind != "full") {
      report.problems.push_back(doc.id + ": base set " + doc.base_set_id +
                                " is not in the store");
    }

    // 2. Architecture, where present (needed to decode blobs below).
    ArchitectureSpec spec;
    bool have_spec = false;
    if (!doc.arch_blob.empty()) {
      auto text = CasReadBlobString(context.file_store, doc.arch_blob);
      if (!text.ok()) {
        report.problems.push_back(doc.id + ": cannot read arch blob: " +
                                  text.status().ToString());
      } else {
        auto decoded = DecodeArchBlob(text.ValueOrDie());
        if (!decoded.ok()) {
          report.problems.push_back(doc.id + ": corrupt arch blob: " +
                                    decoded.status().ToString());
        } else {
          spec = std::move(decoded).ValueOrDie();
          have_spec = true;
        }
        ++report.blobs_checked;
        report.bytes_checked += text.ValueOrDie().size();
      }
    }

    // 3. Binary artifacts: existence, decompression, CRC, decodability.
    auto check_blob = [&](const std::string& name,
                          auto decode) {
      if (name.empty()) return;
      auto raw = CasReadBlob(context.file_store, name);
      if (!raw.ok()) {
        report.problems.push_back(doc.id + ": cannot read " + name + ": " +
                                  raw.status().ToString());
        return;
      }
      ++report.blobs_checked;
      report.bytes_checked += raw.ValueOrDie().size();
      auto decompressed = DecompressBlob(raw.ValueOrDie());
      if (!decompressed.ok()) {
        report.problems.push_back(doc.id + ": cannot decompress " + name + ": " +
                                  decompressed.status().ToString());
        return;
      }
      Status st = decode(decompressed.ValueOrDie());
      if (!st.ok()) {
        report.problems.push_back(doc.id + ": corrupt " + name + ": " +
                                  st.ToString());
      }
    };
    check_blob(doc.param_blob, [&](const std::vector<uint8_t>& blob) {
      if (!have_spec) return Status::OK();
      auto models = DecodeParamBlob(spec, blob);
      if (!models.ok()) return models.status();
      if (models.ValueOrDie().size() != doc.num_models) {
        return Status::Corruption("holds ", models.ValueOrDie().size(),
                                  " models, document says ", doc.num_models);
      }
      return Status::OK();
    });
    check_blob(doc.hash_blob, [&](const std::vector<uint8_t>& blob) {
      return DecodeHashTable(blob).status();
    });
    check_blob(doc.diff_blob, [&](const std::vector<uint8_t>& blob) -> Status {
      // The architecture lives at the chain root; resolve it to decode.
      const SetDocument* cursor = &doc;
      uint64_t budget = set_docs.size() + 1;
      while (cursor->arch_blob.empty() && by_id.contains(cursor->base_set_id)) {
        if (budget-- == 0) break;
        cursor = &by_id.at(cursor->base_set_id);
      }
      if (cursor->arch_blob.empty()) {
        return Status::OK();  // broken chain, reported separately
      }
      MMM_ASSIGN_OR_RETURN(std::string text,
                           CasReadBlobString(context.file_store,
                                             cursor->arch_blob));
      MMM_ASSIGN_OR_RETURN(ArchitectureSpec root_spec, DecodeArchBlob(text));
      return DecodeDiffBlob(root_spec, blob).status();
    });
    check_blob(doc.prov_blob, [&](const std::vector<uint8_t>& blob) {
      std::string text(reinterpret_cast<const char*>(blob.data()), blob.size());
      return JsonValue::Parse(text).status();
    });

    // 4. Chain termination.
    if (doc.kind != "full") {
      std::string current = doc.base_set_id;
      uint64_t budget = set_docs.size() + 1;
      bool terminated = false;
      while (by_id.contains(current)) {
        if (budget-- == 0) break;
        const SetDocument& base = by_id.at(current);
        if (base.kind == "full") {
          terminated = true;
          break;
        }
        current = base.base_set_id;
      }
      if (!terminated) {
        report.problems.push_back(doc.id +
                                  ": chain does not reach a full snapshot");
      }
    }
  }

  // 5. Content-addressed store invariants (DESIGN.md §10): every manifest's
  // chunks exist with the right sizes and hashes, no chunk is orphaned or
  // refcounted wrong, and the persisted index checkpoint agrees with the
  // store. Chunk blobs count toward the totals like any other artifact.
  if (context.cas != nullptr) {
    MMM_ASSIGN_OR_RETURN(CasStore::Stats cas_stats, context.cas->ComputeStats());
    report.blobs_checked += cas_stats.unique_chunks;
    report.bytes_checked += cas_stats.chunk_bytes;
    MMM_RETURN_NOT_OK(context.cas->Audit(&report.problems));
  }
  return report;
}

}  // namespace mmm
