#ifndef MMM_COMMON_ENV_CONFIG_H_
#define MMM_COMMON_ENV_CONFIG_H_

#include <cstdint>
#include <string>

namespace mmm {

/// \brief Helpers to read benchmark-scaling knobs from environment variables.
///
/// Every bench binary documents its knobs (MMM_MODELS, MMM_RUNS, ...); these
/// helpers parse them with a default fallback.
int64_t GetEnvInt64(const char* name, int64_t default_value);
double GetEnvDouble(const char* name, double default_value);
std::string GetEnvString(const char* name, const std::string& default_value);
bool GetEnvBool(const char* name, bool default_value);

}  // namespace mmm

#endif  // MMM_COMMON_ENV_CONFIG_H_
