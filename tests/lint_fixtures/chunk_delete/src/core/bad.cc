// Fixture: deleting a blob in the refcounted `cas-` chunk namespace from
// outside src/cas/ bypasses the CAS sweeper and must be flagged, whether
// the name comes from ChunkBlobName, the prefix constant, or a literal.
struct FileStore;

int Gc(FileStore* store, const char* hex) {
  int s = store->Delete(ChunkBlobName(hex));
  if (s != 0) return s;
  s = store->Delete(kCasChunkPrefix + std::string(hex));
  if (s != 0) return s;
  return store->Delete("cas-0000000000000000000000000000000000000000000000000000000000000000");
}
