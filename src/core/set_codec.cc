#include "core/set_codec.h"

#include <optional>

#include "cas/blob_io.h"
#include "core/blob_formats.h"

namespace mmm {

JsonValue SetDocument::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("_id", id);
  json.Set("approach", approach);
  json.Set("kind", kind);
  json.Set("base_set_id", base_set_id);
  json.Set("family", family);
  json.Set("num_models", num_models);
  json.Set("chain_depth", chain_depth);
  json.Set("arch_blob", arch_blob);
  json.Set("param_blob", param_blob);
  json.Set("hash_blob", hash_blob);
  json.Set("diff_blob", diff_blob);
  json.Set("prov_blob", prov_blob);
  return json;
}

Result<SetDocument> SetDocument::FromJson(const JsonValue& json) {
  SetDocument doc;
  MMM_ASSIGN_OR_RETURN(doc.id, json.GetString("_id"));
  MMM_ASSIGN_OR_RETURN(doc.approach, json.GetString("approach"));
  doc.kind = json.GetStringOr("kind", "full");
  doc.base_set_id = json.GetStringOr("base_set_id", "");
  doc.family = json.GetStringOr("family", "");
  doc.num_models = static_cast<uint64_t>(json.GetInt64Or("num_models", 0));
  doc.chain_depth = static_cast<uint64_t>(json.GetInt64Or("chain_depth", 0));
  doc.arch_blob = json.GetStringOr("arch_blob", "");
  doc.param_blob = json.GetStringOr("param_blob", "");
  doc.hash_blob = json.GetStringOr("hash_blob", "");
  doc.diff_blob = json.GetStringOr("diff_blob", "");
  doc.prov_blob = json.GetStringOr("prov_blob", "");
  return doc;
}

StatsCapture::StatsCapture(const StoreContext& context)
    : context_(context),
      file_bytes_written_(context.file_store->stats().bytes_written),
      file_writes_(context.file_store->stats().write_ops),
      doc_bytes_written_(context.doc_store->stats().bytes_written),
      doc_writes_(context.doc_store->stats().write_ops),
      sim_nanos_(context.sim_clock != nullptr ? context.sim_clock->nanos() : 0),
      thread_sim_nanos_(SimulatedClock::ThreadNanos()) {}

void StatsCapture::FillSave(SaveResult* result) const {
  result->bytes_written =
      (context_.file_store->stats().bytes_written - file_bytes_written_) +
      (context_.doc_store->stats().bytes_written - doc_bytes_written_);
  result->file_store_writes =
      context_.file_store->stats().write_ops - file_writes_;
  result->doc_store_writes = context_.doc_store->stats().write_ops - doc_writes_;
  result->simulated_store_nanos =
      context_.sim_clock != nullptr ? context_.sim_clock->nanos() - sim_nanos_ : 0;
}

void StatsCapture::FillRecover(RecoverStats* stats) const {
  if (stats == nullptr) return;
  // Thread-local delta: a recovery charges the clock only from the thread it
  // runs on, so this is exact per request even when other requests advance
  // the shared clock concurrently.
  stats->simulated_store_nanos =
      context_.sim_clock != nullptr
          ? SimulatedClock::ThreadNanos() - thread_sim_nanos_
          : 0;
}

std::string EncodeArchBlob(const ArchitectureSpec& spec) {
  JsonValue json = JsonValue::Object();
  json.Set("architecture", spec.ToJson());
  // The explicit layout tells recovery how to slice the parameter blob
  // without rebuilding it from layer semantics.
  JsonValue layout_array = JsonValue::Array();
  for (const auto& [key, shape] : LayoutOf(spec)) {
    JsonValue entry = JsonValue::Object();
    entry.Set("key", key);
    JsonValue dims = JsonValue::Array();
    for (size_t d : shape) dims.Append(static_cast<int64_t>(d));
    entry.Set("shape", std::move(dims));
    layout_array.Append(std::move(entry));
  }
  json.Set("param_layout", std::move(layout_array));
  return json.Dump();
}

Result<ArchitectureSpec> DecodeArchBlob(const std::string& text) {
  MMM_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  MMM_ASSIGN_OR_RETURN(const JsonValue* arch, json.Get("architecture"));
  MMM_ASSIGN_OR_RETURN(ArchitectureSpec spec, ArchitectureSpec::FromJson(*arch));
  // Cross-check the stored layout against the derived one.
  MMM_ASSIGN_OR_RETURN(const JsonValue* layout_array, json.Get("param_layout"));
  ParamLayout layout = LayoutOf(spec);
  if (layout_array->ArraySize() != layout.size()) {
    return Status::Corruption("arch blob layout size mismatch");
  }
  return spec;
}

Status StageFullSnapshot(const StoreContext& context, StoreBatch* batch,
                         const std::string& set_id, const ModelSet& set,
                         SetDocument* doc) {
  doc->arch_blob = set_id + ".arch.json";
  doc->param_blob = set_id + ".params.bin";
  batch->PutBlobString(doc->arch_blob, EncodeArchBlob(set.spec));
  // The parameter encode dominates a snapshot save; produce it on a
  // pipeline lane so it overlaps with the batch's other work.
  const ModelSet* set_ptr = &set;
  const Compression compression = context.blob_compression;
  batch->PutBlobDeferred(
      doc->param_blob, [set_ptr, compression]() -> Result<std::vector<uint8_t>> {
        std::vector<uint8_t> params = EncodeParamBlob(*set_ptr);
        if (compression != Compression::kNone) {
          params = CompressBlob(compression, params);
        }
        return params;
      });
  doc->kind = "full";
  doc->chain_depth = 0;
  doc->family = set.spec.family;
  doc->num_models = set.models.size();
  return Status::OK();
}

Status WriteFullSnapshot(const StoreContext& context, const std::string& set_id,
                         const ModelSet& set, SetDocument* doc) {
  StoreBatch batch = MakeBatch(context);
  MMM_RETURN_NOT_OK(StageFullSnapshot(context, &batch, set_id, set, doc));
  return batch.Commit();
}

Result<size_t> StreamParamBlob(const StoreContext& context,
                               const std::string& blob_name,
                               const ArchitectureSpec& spec,
                               ParamBlobStreamDecoder::LayerSink sink) {
  // Three incremental stages chained window-by-window: CAS reassembly →
  // blob decompression → param decode. The decoder is constructed lazily,
  // on the first decompressed bytes, because the decompressed size is only
  // known once the blob header has streamed (raw bytes fall back to the
  // stored logical size — for them the two are the same).
  BlobDecompressor decompressor;
  std::optional<ParamBlobStreamDecoder> decoder;
  uint64_t stored_logical = 0;
  std::vector<uint8_t> ready;
  auto drain = [&]() -> Status {
    if (ready.empty()) return Status::OK();
    if (!decoder.has_value()) {
      decoder.emplace(spec, decompressor.raw_size().value_or(stored_logical),
                      std::move(sink));
    }
    Status status = decoder->Feed(ready);
    ready.clear();
    return status;
  };
  MMM_RETURN_NOT_OK(CasStreamBlob(
      context.file_store, blob_name, context.stream_window_bytes,
      [&](uint64_t logical_size) -> Status {
        stored_logical = logical_size;
        return Status::OK();
      },
      [&](std::span<const uint8_t> window) -> Status {
        MMM_RETURN_NOT_OK(decompressor.Feed(window, &ready));
        return drain();
      }));
  MMM_RETURN_NOT_OK(decompressor.Finish(&ready));
  MMM_RETURN_NOT_OK(drain());
  if (!decoder.has_value()) {
    // Empty blob: let the decoder produce the canonical error/result.
    decoder.emplace(spec, decompressor.raw_size().value_or(stored_logical),
                    std::move(sink));
  }
  MMM_RETURN_NOT_OK(decoder->Finish());
  return decoder->num_models();
}

Result<ModelSet> ReadFullSnapshot(const StoreContext& context,
                                  const SetDocument& doc) {
  if (doc.arch_blob.empty() || doc.param_blob.empty()) {
    return Status::Corruption("set ", doc.id, " is not a full snapshot");
  }
  MMM_ASSIGN_OR_RETURN(std::string arch_text,
                       CasReadBlobString(context.file_store, doc.arch_blob));
  MMM_ASSIGN_OR_RETURN(ArchitectureSpec spec, DecodeArchBlob(arch_text));
  std::vector<StateDict> models;
  if (context.streaming_recovery) {
    MMM_ASSIGN_OR_RETURN(
        size_t num_models,
        StreamParamBlob(context, doc.param_blob, spec,
                        [&](size_t model, size_t /*param*/,
                            const std::string& key, Tensor tensor) -> Status {
                          if (models.size() <= model) models.resize(model + 1);
                          models[model].emplace_back(key, std::move(tensor));
                          return Status::OK();
                        }));
    // Zero-parameter layouts emit no layers; the header still counts models.
    models.resize(num_models);
  } else {
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> stored,
                         CasReadBlob(context.file_store, doc.param_blob));
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, DecompressBlob(stored));
    MMM_ASSIGN_OR_RETURN(models, DecodeParamBlob(spec, blob));
  }
  if (models.size() != doc.num_models) {
    return Status::Corruption("set ", doc.id, " holds ", models.size(),
                              " models, document says ", doc.num_models);
  }
  ModelSet set;
  set.spec = std::move(spec);
  set.models = std::move(models);
  return set;
}

Status CheckIndices(const std::vector<size_t>& indices, uint64_t num_models) {
  for (size_t index : indices) {
    if (index >= num_models) {
      return Status::InvalidArgument("model index ", index,
                                     " out of range for set of ", num_models);
    }
  }
  return Status::OK();
}

Result<ArchitectureSpec> ReadSnapshotSpec(const StoreContext& context,
                                          const SetDocument& doc) {
  if (doc.arch_blob.empty()) {
    return Status::Corruption("set ", doc.id, " has no architecture blob");
  }
  MMM_ASSIGN_OR_RETURN(std::string text,
                       CasReadBlobString(context.file_store, doc.arch_blob));
  return DecodeArchBlob(text);
}

Result<std::vector<StateDict>> ReadModelsFromSnapshot(
    const StoreContext& context, const SetDocument& doc,
    const std::vector<size_t>& indices) {
  MMM_RETURN_NOT_OK(CheckIndices(indices, doc.num_models));
  MMM_ASSIGN_OR_RETURN(ArchitectureSpec spec, ReadSnapshotSpec(context, doc));

  // Peek at the blob header: compressed blobs cannot be range-read. Ranged
  // reads go through the CAS helpers so chunked blobs fetch only the chunks
  // overlapping the requested models, preserving the selective read path.
  MMM_ASSIGN_OR_RETURN(uint64_t blob_size,
                       CasBlobSize(context.file_store, context.cas,
                                   doc.param_blob));
  uint64_t prefix_len = std::min<uint64_t>(blob_size, kParamBlobMaxHeaderBytes);
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> prefix,
                       CasReadBlobRange(context.file_store, context.cas,
                                        doc.param_blob, 0, prefix_len));
  auto header = ReadParamBlobHeader(prefix);
  if (!header.ok()) {
    // Compressed or legacy layout: load everything, then select.
    MMM_ASSIGN_OR_RETURN(ModelSet set, ReadFullSnapshot(context, doc));
    std::vector<StateDict> out;
    out.reserve(indices.size());
    for (size_t index : indices) out.push_back(set.models[index]);
    return out;
  }

  const ParamBlobLayout& layout = header.ValueOrDie();
  if (layout.num_models != doc.num_models ||
      layout.params_per_model != LayoutNumel(LayoutOf(spec))) {
    return Status::Corruption("param blob header disagrees with set ", doc.id);
  }
  std::vector<StateDict> out;
  out.reserve(indices.size());
  for (size_t index : indices) {
    MMM_ASSIGN_OR_RETURN(
        std::vector<uint8_t> slice,
        CasReadBlobRange(context.file_store, context.cas, doc.param_blob,
                         layout.ModelOffset(index), layout.ModelBytes()));
    MMM_ASSIGN_OR_RETURN(StateDict state, DecodeModelSlice(spec, slice));
    out.push_back(std::move(state));
  }
  return out;
}

void StageSetDocument(StoreBatch* batch, const SetDocument& doc) {
  batch->InsertDocument(kSetCollection, doc.ToJson());
}

Status InsertSetDocument(const StoreContext& context, const SetDocument& doc) {
  StoreBatch batch = MakeBatch(context);
  StageSetDocument(&batch, doc);
  return batch.Commit();
}

Result<SetDocument> FetchSetDocument(const StoreContext& context,
                                     const std::string& set_id) {
  MMM_ASSIGN_OR_RETURN(JsonValue json,
                       context.doc_store->Get(kSetCollection, set_id));
  return SetDocument::FromJson(json);
}

}  // namespace mmm
