#ifndef MMM_BATTERY_DRIVE_CYCLE_H_
#define MMM_BATTERY_DRIVE_CYCLE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mmm {

/// \brief Synthesizes per-cell discharge-current traces that mimic real-world
/// driving cycles.
///
/// The paper drives its equivalent-circuit data generator with recorded
/// driving discharge cycles (Steinstraeter et al. 2020). We substitute a
/// phase-structured synthetic generator: each cycle is a deterministic
/// sequence of idle / acceleration / cruise / regenerative-braking phases
/// with randomized durations and magnitudes. Positive current = discharge;
/// braking phases produce negative (charging) current. Sampling rate 1 Hz.
class DriveCycleGenerator {
 public:
  /// \param seed master seed; cycle k of any generator with the same seed is
  ///        identical, which Provenance replay relies on.
  explicit DriveCycleGenerator(uint64_t seed);

  /// Generates cycle `cycle_index` with `num_samples` 1 Hz current samples
  /// (amperes, cell-level: scaled to a single 18650's share of pack current).
  std::vector<double> Generate(uint64_t cycle_index, size_t num_samples) const;

  /// Peak discharge current the generator can emit (amperes).
  static constexpr double kMaxDischargeA = 12.0;
  /// Peak regenerative charge current (amperes, returned as negative values).
  static constexpr double kMaxRegenA = 6.0;

 private:
  uint64_t seed_;
};

}  // namespace mmm

#endif  // MMM_BATTERY_DRIVE_CYCLE_H_
