// Seeded two-lock deadlock: f() takes a_ then b_, g() takes b_ then a_.
// mmmsa must report a lock-cycle {a_, b_} (and a rank-inversion on the
// b_ -> a_ edge, since the ranks say a_ is the outer lock).
#ifndef SA_FIXTURE_LOCK_CYCLE_BAD_H_
#define SA_FIXTURE_LOCK_CYCLE_BAD_H_

class Tangle {
 public:
  void f() {
    MutexLock first(a_);
    MutexLock second(b_);
    ++work_;
  }

  void g() {
    MutexLock first(b_);
    MutexLock second(a_);
    ++work_;
  }

 private:
  Mutex a_ MMM_LOCK_RANK(10);
  Mutex b_ MMM_LOCK_RANK(20);
  int work_ = 0;
};

#endif  // SA_FIXTURE_LOCK_CYCLE_BAD_H_
