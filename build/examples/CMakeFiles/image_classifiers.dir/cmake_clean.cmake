file(REMOVE_RECURSE
  "CMakeFiles/image_classifiers.dir/image_classifiers.cpp.o"
  "CMakeFiles/image_classifiers.dir/image_classifiers.cpp.o.d"
  "image_classifiers"
  "image_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
