#include "serialize/compress.h"

#include <cstring>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/blob_formats.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(CompressionNameTest, RoundTrips) {
  for (Compression method :
       {Compression::kNone, Compression::kLz, Compression::kShuffleLz}) {
    ASSERT_OK_AND_ASSIGN(Compression parsed,
                         CompressionFromName(CompressionName(method)));
    EXPECT_EQ(parsed, method);
  }
  EXPECT_TRUE(CompressionFromName("zstd").status().IsInvalidArgument());
}

TEST(LzTest, EmptyInput) {
  std::vector<uint8_t> compressed = LzCompress({});
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out, LzDecompress(compressed, 0));
  EXPECT_TRUE(out.empty());
}

TEST(LzTest, ShortLiteralOnlyInput) {
  std::vector<uint8_t> input = Bytes("abc");
  std::vector<uint8_t> compressed = LzCompress(input);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out,
                       LzDecompress(compressed, input.size()));
  EXPECT_EQ(out, input);
}

TEST(LzTest, RepetitiveInputCompressesHard) {
  std::vector<uint8_t> input(100000, 'x');
  std::vector<uint8_t> compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 50);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out,
                       LzDecompress(compressed, input.size()));
  EXPECT_EQ(out, input);
}

TEST(LzTest, OverlappingMatchRunLength) {
  // "ababab..." exercises matches whose offset < length.
  std::vector<uint8_t> input;
  for (int i = 0; i < 5000; ++i) input.push_back(i % 2 ? 'a' : 'b');
  std::vector<uint8_t> compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), 200u);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out,
                       LzDecompress(compressed, input.size()));
  EXPECT_EQ(out, input);
}

TEST(LzTest, IncompressibleInputRoundTripsWithBoundedExpansion) {
  Rng rng(1);
  std::vector<uint8_t> input(65536);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextBounded(256));
  std::vector<uint8_t> compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), input.size() + input.size() / 128 + 64);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out,
                       LzDecompress(compressed, input.size()));
  EXPECT_EQ(out, input);
}

TEST(LzTest, LongLiteralAndMatchExtensions) {
  // > 255+15 literals followed by a > 255+19 match.
  Rng rng(2);
  std::vector<uint8_t> input(400);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextBounded(256));
  std::vector<uint8_t> repeated(input.begin(), input.begin() + 350);
  input.insert(input.end(), repeated.begin(), repeated.end());
  std::vector<uint8_t> compressed = LzCompress(input);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out,
                       LzDecompress(compressed, input.size()));
  EXPECT_EQ(out, input);
}

TEST(LzTest, TruncatedStreamIsCorruption) {
  std::vector<uint8_t> input(1000, 'q');
  std::vector<uint8_t> compressed = LzCompress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_TRUE(LzDecompress(compressed, input.size()).status().IsCorruption());
}

TEST(LzTest, WrongRawSizeIsCorruption) {
  std::vector<uint8_t> input = Bytes("hello world hello world hello world");
  std::vector<uint8_t> compressed = LzCompress(input);
  EXPECT_TRUE(LzDecompress(compressed, input.size() + 5).status().IsCorruption());
}

TEST(ShuffleTest, RoundTripsAllStrides) {
  Rng rng(3);
  for (size_t stride : {1u, 2u, 4u, 8u}) {
    for (size_t size : {0u, 1u, 3u, 4u, 17u, 1024u, 1027u}) {
      std::vector<uint8_t> input(size);
      for (auto& b : input) b = static_cast<uint8_t>(rng.NextBounded(256));
      EXPECT_EQ(UnshuffleBytes(ShuffleBytes(input, stride), stride), input)
          << "stride " << stride << " size " << size;
    }
  }
}

TEST(ShuffleTest, GroupsBytePlanes) {
  std::vector<uint8_t> input{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(ShuffleBytes(input, 4),
            (std::vector<uint8_t>{1, 5, 2, 6, 3, 7, 4, 8}));
}

class CompressBlobSweep : public ::testing::TestWithParam<Compression> {};

TEST_P(CompressBlobSweep, FramedRoundTrip) {
  Rng rng(4);
  std::vector<uint8_t> input(20000);
  // Float-like data: slowly varying values so shuffle helps.
  float value = 1.0f;
  for (size_t i = 0; i + 4 <= input.size(); i += 4) {
    value += 0.001f;
    std::memcpy(&input[i], &value, 4);
  }
  std::vector<uint8_t> blob = CompressBlob(GetParam(), input);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out, DecompressBlob(blob));
  EXPECT_EQ(out, input);
}

INSTANTIATE_TEST_SUITE_P(Methods, CompressBlobSweep,
                         ::testing::Values(Compression::kNone, Compression::kLz,
                                           Compression::kShuffleLz));

TEST(CompressBlobTest, RawLegacyBlobPassesThrough) {
  std::vector<uint8_t> raw = Bytes("not framed at all");
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> out, DecompressBlob(raw));
  EXPECT_EQ(out, raw);
}

TEST(CompressBlobTest, ShuffleLzBeatsPlainLzOnModelParameters) {
  // Real model parameters: neighboring floats share exponent bytes, which
  // only the shuffled layout exposes as runs.
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 50, 5).ValueOrDie();
  std::vector<uint8_t> params = EncodeParamBlob(set);
  size_t lz = CompressBlob(Compression::kLz, params).size();
  size_t shuffle_lz = CompressBlob(Compression::kShuffleLz, params).size();
  EXPECT_LT(shuffle_lz, lz);
  EXPECT_LT(shuffle_lz, params.size());
}

TEST(CompressBlobTest, UnknownMethodByteIsCorruption) {
  std::vector<uint8_t> blob = CompressBlob(Compression::kLz, Bytes("data"));
  blob[4] = 99;  // method byte
  EXPECT_TRUE(DecompressBlob(blob).status().IsCorruption());
}

// Property: random data with mixed redundancy always round-trips.
class LzFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzFuzzSweep, RandomStructuredDataRoundTrips) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> input;
    size_t segments = 1 + rng.NextBounded(8);
    for (size_t s = 0; s < segments; ++s) {
      size_t len = rng.NextBounded(3000);
      if (rng.NextBounded(2) == 0) {
        // Repetitive segment.
        uint8_t symbol = static_cast<uint8_t>(rng.NextBounded(4));
        input.insert(input.end(), len, symbol);
      } else {
        for (size_t i = 0; i < len; ++i) {
          input.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
        }
      }
    }
    std::vector<uint8_t> compressed = LzCompress(input);
    auto out = LzDecompress(compressed, input.size());
    ASSERT_OK(out.status());
    ASSERT_EQ(out.ValueOrDie(), input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzFuzzSweep,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

// Decoder robustness: random corruption must produce Status, never crash.
class LzCorruptionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzCorruptionSweep, CorruptedStreamsNeverCrash) {
  Rng rng(GetParam());
  std::vector<uint8_t> input(5000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>((i / 64) & 0xff);
  }
  std::vector<uint8_t> compressed = LzCompress(input);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> mutated = compressed;
    size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    // Either decodes to *something* of the right size or errors cleanly.
    auto result = LzDecompress(mutated, input.size());
    if (result.ok()) {
      EXPECT_EQ(result.ValueOrDie().size(), input.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzCorruptionSweep,
                         ::testing::Values(7ULL, 8ULL, 9ULL));

}  // namespace
}  // namespace mmm
