#include "storage/store_batch.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/blob_formats.h"
#include "core/manager.h"
#include "storage/executor.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(ExecutorTest, ClampsZeroLanesToOne) {
  Executor executor(0);
  EXPECT_EQ(executor.lanes(), 1u);
}

TEST(ExecutorTest, CoversEveryIndexExactlyOnce) {
  for (size_t lanes : {1u, 2u, 3u, 8u}) {
    Executor executor(lanes);
    std::vector<int> hits(100, 0);
    executor.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " with " << lanes << " lanes";
    }
  }
}

TEST(ExecutorTest, HandlesEmptyAndTinyCounts) {
  Executor executor(4);
  executor.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  executor.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
  // Fewer items than lanes: the surplus lanes have nothing to do.
  std::vector<int> hits(2, 0);
  executor.ParallelFor(2, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ExecutorTest, ReusableAcrossDispatches) {
  Executor executor(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> hits(17, 0);
    executor.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

// ---------------------------------------------------------------------------
// StoreBatch
// ---------------------------------------------------------------------------

/// In-memory store pair with a configurable latency model and simulated
/// clock. A plain struct (not a fixture) so tests can spin up several
/// independent store worlds and compare them.
struct Stores {
  explicit Stores(StoreLatencyModel latency = {})
      : file_store(&env, "/blobs", latency, &sim_clock),
        doc_store(&env, "/wal", {}, &sim_clock) {
    file_store.Open().Check();
    doc_store.Open().Check();
  }

  /// Every blob name -> contents in the file store, for whole-store
  /// comparisons across lane counts.
  std::map<std::string, std::vector<uint8_t>> Blobs() {
    std::map<std::string, std::vector<uint8_t>> blobs;
    auto names = file_store.List().ValueOrDie();
    for (const std::string& name : names) {
      blobs[name] = file_store.Get(name).ValueOrDie();
    }
    return blobs;
  }

  InMemoryEnv env;
  SimulatedClock sim_clock;
  FileStore file_store;
  DocumentStore doc_store;
};

JsonValue Doc(const std::string& id) {
  JsonValue doc = JsonValue::Object();
  doc.Set("_id", id);
  return doc;
}

/// Stages the same mixed workload — eager blobs, string blobs, deferred
/// producers, interleaved document inserts — on any batch.
void StageMixedOps(StoreBatch* batch) {
  batch->PutBlob("b0.bin", {0, 1, 2, 3});
  batch->InsertDocument("sets", Doc("d0"));
  batch->PutBlobString("b1.txt", "payload-one");
  batch->PutBlobDeferred("b2.bin", []() -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>{9, 8, 7};
  });
  batch->PutBlobDeferred("b3.bin", []() -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>(100, 42);
  });
  batch->InsertDocument("sets", Doc("d1"));
}

TEST(StoreBatchTest, EmptyCommitIsFreeNoOp) {
  Stores stores;
  for (size_t lanes : {1u, 4u}) {
    Executor executor(lanes);
    StoreBatch batch(&stores.file_store, &stores.doc_store, &executor);
    ASSERT_OK(batch.Commit());
  }
  EXPECT_EQ(stores.file_store.stats().write_ops, 0u);
  EXPECT_EQ(stores.doc_store.stats().write_ops, 0u);
  EXPECT_EQ(stores.sim_clock.nanos(), 0u);
}

TEST(StoreBatchTest, CommitClearsBatch) {
  Stores stores;
  Executor executor(2);
  StoreBatch batch(&stores.file_store, &stores.doc_store, &executor);
  StageMixedOps(&batch);
  EXPECT_EQ(batch.staged_ops(), 6u);
  ASSERT_OK(batch.Commit());
  EXPECT_EQ(batch.staged_ops(), 0u);
  // A failed commit clears too.
  batch.PutBlob("bad/name", {1});
  EXPECT_FALSE(batch.Commit().ok());
  EXPECT_EQ(batch.staged_ops(), 0u);
}

TEST(StoreBatchTest, StoreContentsIdenticalAcrossLaneCounts) {
  // Reference store written with one lane (no executor at all) ...
  Stores reference;
  {
    StoreBatch batch(&reference.file_store, &reference.doc_store, nullptr);
    StageMixedOps(&batch);
    ASSERT_OK(batch.Commit());
  }
  auto reference_blobs = reference.Blobs();
  auto reference_docs = reference.doc_store.All("sets").ValueOrDie();
  ASSERT_EQ(reference_blobs.size(), 4u);
  ASSERT_EQ(reference_docs.size(), 2u);

  // ... must match stores written with any lane count, byte for byte and
  // in document insertion order.
  for (size_t lanes : {2u, 8u}) {
    Stores fresh;
    Executor executor(lanes);
    StoreBatch batch(&fresh.file_store, &fresh.doc_store, &executor);
    StageMixedOps(&batch);
    ASSERT_OK(batch.Commit());
    EXPECT_EQ(fresh.Blobs(), reference_blobs) << lanes << " lanes";
    auto docs = fresh.doc_store.All("sets").ValueOrDie();
    ASSERT_EQ(docs.size(), reference_docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(docs[i].Dump(), reference_docs[i].Dump());
    }
  }
}

TEST(StoreBatchTest, CountersExactForAnyLaneCount) {
  // Pipeline accounting must stay exact under parallelism — per-op deltas
  // are merged once per commit, so counters cannot over- or under-count
  // regardless of thread interleaving.
  Stores reference;
  {
    StoreBatch batch(&reference.file_store, &reference.doc_store, nullptr);
    StageMixedOps(&batch);
    ASSERT_OK(batch.Commit());
  }
  EXPECT_EQ(reference.file_store.stats().write_ops, 4u);

  for (size_t lanes : {2u, 4u}) {
    Stores fresh;
    Executor executor(lanes);
    StoreBatch batch(&fresh.file_store, &fresh.doc_store, &executor);
    StageMixedOps(&batch);
    ASSERT_OK(batch.Commit());
    EXPECT_EQ(fresh.file_store.stats().write_ops,
              reference.file_store.stats().write_ops);
    EXPECT_EQ(fresh.file_store.stats().bytes_written,
              reference.file_store.stats().bytes_written);
    EXPECT_EQ(fresh.doc_store.stats().write_ops,
              reference.doc_store.stats().write_ops);
    EXPECT_EQ(fresh.doc_store.stats().bytes_written,
              reference.doc_store.stats().bytes_written);
  }
}

// 100 ns per op + 1 ns per byte: costs are easy to compute by hand.
StoreLatencyModel HandLatency() { return StoreLatencyModel{100, 1.0}; }

void StageThreeBlobs(StoreBatch* batch) {
  batch->PutBlob("a.bin", std::vector<uint8_t>(10, 1));  // cost 110
  batch->PutBlob("b.bin", std::vector<uint8_t>(20, 2));  // cost 120
  batch->PutBlob("c.bin", std::vector<uint8_t>(30, 3));  // cost 130
}

TEST(StoreBatchLatencyTest, SerialChargeIsSumOfOpCosts) {
  // One lane reproduces the paper's serialized cost model: the batch charge
  // equals the sum of per-op costs, no dispatch overhead.
  Stores stores(HandLatency());
  StorePipelineOptions options;
  options.dispatch_nanos_per_op = 5;  // must NOT be charged serially
  Executor executor(1);
  StoreBatch batch(&stores.file_store, &stores.doc_store, &executor, options);
  StageThreeBlobs(&batch);
  ASSERT_OK(batch.Commit());
  EXPECT_EQ(stores.sim_clock.nanos(), 110u + 120u + 130u);
}

TEST(StoreBatchLatencyTest, ParallelChargeIsMaxLanePlusDispatch) {
  // Two lanes: op i lands on lane i % 2, so lane 0 costs 110 + 130 = 240
  // and lane 1 costs 120. The batch charges max(240, 120) plus the per-op
  // dispatch cost for all three ops.
  Stores stores(HandLatency());
  StorePipelineOptions options;
  options.lanes = 2;
  options.dispatch_nanos_per_op = 5;
  Executor executor(2);
  StoreBatch batch(&stores.file_store, &stores.doc_store, &executor, options);
  StageThreeBlobs(&batch);
  ASSERT_OK(batch.Commit());
  EXPECT_EQ(stores.sim_clock.nanos(), 240u + 3u * 5u);
}

TEST(StoreBatchTest, SerialErrorStopsAtFailingOp) {
  Stores stores;
  StoreBatch batch(&stores.file_store, &stores.doc_store, nullptr);
  batch.PutBlob("ok.bin", {1});
  batch.PutBlob("bad/name", {2});  // '/' is rejected by the file store
  batch.PutBlob("never.bin", {3});
  batch.InsertDocument("sets", Doc("d0"));
  Status status = batch.Commit();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(stores.file_store.Exists("ok.bin").ValueOrDie());
  // Serial commit aborts at the failure: later ops never ran.
  EXPECT_FALSE(stores.file_store.Exists("never.bin").ValueOrDie());
  EXPECT_EQ(stores.doc_store.Count("sets"), 0u);
}

TEST(StoreBatchTest, ParallelCommitReportsFirstStagedError) {
  // Two failures staged at indices 1 (producer) and 3 (invalid name); the
  // reported error must be index 1's, deterministically, for any lane
  // count and any thread interleaving.
  Stores stores;
  Executor executor(8);
  StoreBatch batch(&stores.file_store, &stores.doc_store, &executor);
  batch.PutBlob("ok.bin", {1});
  batch.PutBlobDeferred("enc.bin", []() -> Result<std::vector<uint8_t>> {
    return Status::Internal("producer exploded");
  });
  batch.PutBlob("ok2.bin", {2});
  batch.PutBlob("bad/name", {3});
  batch.InsertDocument("sets", Doc("d0"));
  Status status = batch.Commit();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("producer exploded"), std::string::npos)
      << status.ToString();
  // A file-phase failure always skips the document phase.
  EXPECT_EQ(stores.doc_store.Count("sets"), 0u);
}

// ---------------------------------------------------------------------------
// Parallel hashing
// ---------------------------------------------------------------------------

TEST(HashTableParallelTest, StableAcrossLaneCounts) {
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 9, 3).ValueOrDie();
  HashTable reference = ComputeHashTable(set);
  for (size_t lanes : {1u, 2u, 8u}) {
    Executor executor(lanes);
    HashTable hashed = ComputeHashTable(set, &executor);
    ASSERT_EQ(hashed.size(), reference.size()) << lanes << " lanes";
    for (size_t m = 0; m < reference.size(); ++m) {
      ASSERT_EQ(hashed[m].size(), reference[m].size());
      for (size_t p = 0; p < reference[m].size(); ++p) {
        EXPECT_TRUE(hashed[m][p] == reference[m][p])
            << "model " << m << " param " << p << " with " << lanes
            << " lanes";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: every approach is lane-invariant
// ---------------------------------------------------------------------------

struct ManagerRun {
  std::unique_ptr<TempDir> temp;
  std::unique_ptr<MultiModelScenario> scenario;
  std::unique_ptr<ModelSetManager> manager;
  std::vector<SaveResult> saves;
  std::vector<ModelSet> recovered;
};

/// Saves an initial set plus one derived cycle with `type`, then recovers
/// both, against a manager configured with `lanes` pipeline lanes. The
/// scenario is deterministic in its config, so two runs see bit-identical
/// workloads.
ManagerRun RunApproach(ApproachType type, size_t lanes) {
  ManagerRun run;
  run.temp = std::make_unique<TempDir>(
      "pipeline-" + ApproachTypeName(type) + "-" + std::to_string(lanes));
  ScenarioConfig config = ScenarioConfig::Battery(6);
  config.samples_per_dataset = 32;
  run.scenario = std::make_unique<MultiModelScenario>(config);
  EXPECT_OK(run.scenario->Init());

  ModelSetManager::Options options;
  options.root_dir = run.temp->path() + "/store";
  options.resolver = run.scenario.get();
  options.pipeline.lanes = lanes;
  auto manager_or = ModelSetManager::Open(options);
  EXPECT_OK(manager_or.status());
  run.manager = std::move(manager_or).ValueOrDie();

  SaveResult initial =
      run.manager->SaveInitial(type, run.scenario->current_set()).ValueOrDie();
  run.saves.push_back(initial);
  ModelSetUpdateInfo update = run.scenario->AdvanceCycle().ValueOrDie();
  update.base_set_id = initial.set_id;
  run.saves.push_back(
      run.manager->SaveDerived(type, run.scenario->current_set(), update)
          .ValueOrDie());
  for (const SaveResult& save : run.saves) {
    run.recovered.push_back(run.manager->Recover(save.set_id).ValueOrDie());
  }
  return run;
}

TEST(PipelineEquivalenceTest, AllApproachesLaneInvariant) {
  for (ApproachType type : kAllApproaches) {
    SCOPED_TRACE(ApproachTypeName(type));
    ManagerRun serial = RunApproach(type, /*lanes=*/1);
    ManagerRun parallel = RunApproach(type, /*lanes=*/4);

    // SaveResult counters are exact, not approximate, under parallelism.
    ASSERT_EQ(serial.saves.size(), parallel.saves.size());
    for (size_t i = 0; i < serial.saves.size(); ++i) {
      EXPECT_EQ(serial.saves[i].set_id, parallel.saves[i].set_id);
      EXPECT_EQ(serial.saves[i].bytes_written, parallel.saves[i].bytes_written);
      EXPECT_EQ(serial.saves[i].file_store_writes,
                parallel.saves[i].file_store_writes);
      EXPECT_EQ(serial.saves[i].doc_store_writes,
                parallel.saves[i].doc_store_writes);
      EXPECT_EQ(serial.saves[i].simulated_store_nanos,
                parallel.saves[i].simulated_store_nanos);
    }

    // Every persisted blob is byte-identical across lane counts.
    auto names = serial.manager->file_store()->List().ValueOrDie();
    auto parallel_names = parallel.manager->file_store()->List().ValueOrDie();
    ASSERT_EQ(names, parallel_names);
    for (const std::string& name : names) {
      EXPECT_EQ(serial.manager->file_store()->Get(name).ValueOrDie(),
                parallel.manager->file_store()->Get(name).ValueOrDie())
          << "blob " << name;
    }

    // Recovery is bit-exact in both worlds.
    ASSERT_EQ(serial.recovered.size(), parallel.recovered.size());
    for (size_t s = 0; s < serial.recovered.size(); ++s) {
      const ModelSet& a = serial.recovered[s];
      const ModelSet& b = parallel.recovered[s];
      ASSERT_EQ(a.models.size(), b.models.size());
      for (size_t m = 0; m < a.models.size(); ++m) {
        ASSERT_EQ(a.models[m].size(), b.models[m].size());
        for (size_t p = 0; p < a.models[m].size(); ++p) {
          EXPECT_TRUE(a.models[m][p].second.Equals(b.models[m][p].second))
              << "set " << s << " model " << m << " param " << p;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mmm
