// Battery-fleet scenario (the paper's running example, §1/§4.1).
//
// A battery pack with hundreds of cells, each represented by its own
// FFNN-48 voltage model. The fleet ages (SoH decreases), a subset of models
// is retrained every cycle, and every generated model version is archived
// with the Update approach. After a simulated incident, the historical
// model of one cell is recovered for analysis and evaluated against the
// physical simulator.
//
// Run: ./build/examples/battery_fleet

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "battery/data_gen.h"
#include "battery/ecm.h"
#include "common/strings.h"
#include "core/manager.h"
#include "nn/metrics.h"
#include "nn/trainer.h"
#include "workload/scenario.h"

using namespace mmm;  // NOLINT — example code

namespace {

// Root-mean-square error of a model against freshly generated cell data.
double ModelRmse(const ArchitectureSpec& spec, const StateDict& state,
                 const TrainingData& data) {
  Model model = Model::Create(spec).ValueOrDie();
  model.LoadStateDict(state).Check();
  return Rmse(model.Predict(data.inputs), data.targets).ValueOrDie();
}

}  // namespace

int main() {
  std::printf("=== Battery fleet: 400 cells, one FFNN-48 model per cell ===\n");

  ScenarioConfig config = ScenarioConfig::Battery(/*num_models=*/400);
  config.samples_per_dataset = 256;
  config.epochs = 4;  // train the updated models properly in this demo
  MultiModelScenario scenario(config);
  scenario.Init().Check();

  ModelSetManager::Options options;
  options.root_dir = "/tmp/mmm-battery-fleet";
  options.resolver = &scenario;
  Env::Default()->RemoveDirs(options.root_dir).Check();
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  // U1: archive the freshly commissioned fleet.
  SaveResult head =
      manager->SaveInitial(ApproachType::kUpdate, scenario.current_set())
          .ValueOrDie();
  std::printf("U1   archived %4zu models  storage=%s\n",
              scenario.current_set().size(),
              HumanBytes(head.bytes_written).c_str());

  // Watch one cell whose model gets updated later.
  const uint64_t watched_cell = [&] {
    // Peek at cycle 1's schedule: take the first fully updated model.
    Rng rng = Rng(config.seed).Fork("update-schedule", 1);
    return static_cast<uint64_t>(rng.Permutation(config.num_models)[0]);
  }();

  std::vector<std::string> history{head.set_id};
  uint64_t total_bytes = head.bytes_written;
  for (int cycle = 1; cycle <= 3; ++cycle) {
    ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
    update.base_set_id = history.back();
    SaveResult saved =
        manager->SaveDerived(ApproachType::kUpdate, scenario.current_set(),
                             update)
            .ValueOrDie();
    history.push_back(saved.set_id);
    total_bytes += saved.bytes_written;
    size_t updated = config.num_models -
                     static_cast<size_t>(std::count(update.kinds.begin(),
                                                    update.kinds.end(),
                                                    UpdateKind::kNone));
    std::printf("U3-%d archived %4zu updates storage=%s (delta)\n", cycle,
                updated, HumanBytes(saved.bytes_written).c_str());
  }
  std::printf("Total archive size for 4 fleet versions: %s "
              "(full snapshots would use ~4x U1)\n\n",
              HumanBytes(total_bytes).c_str());

  // --- Incident analysis -------------------------------------------------
  // Cell `watched_cell` misbehaved during cycle 2; recover the fleet state
  // that was active back then and compare the historical model against the
  // aged physical cell.
  std::printf("=== Incident analysis: cell %llu at cycle 2 ===\n",
              static_cast<unsigned long long>(watched_cell));
  RecoverStats stats;
  ModelSet fleet_at_cycle2 =
      manager->Recover(history[2], &stats).ValueOrDie();
  std::printf("recovered set %s (walked %llu sets in the delta chain)\n",
              history[2].c_str(),
              static_cast<unsigned long long>(stats.sets_recovered));

  BatteryDataConfig data_config;
  data_config.seed = config.seed;
  data_config.samples_per_cycle = 512;
  BatteryDataGenerator generator(data_config);
  TrainingData evaluation =
      generator.GenerateCellDataset(watched_cell, /*cycle=*/2, /*soh=*/0.98);

  double rmse_initial = ModelRmse(
      fleet_at_cycle2.spec,
      manager->Recover(history[0]).ValueOrDie().models[watched_cell],
      evaluation);
  double rmse_cycle2 = ModelRmse(fleet_at_cycle2.spec,
                                 fleet_at_cycle2.models[watched_cell],
                                 evaluation);
  std::printf(
      "model RMSE vs simulated cell voltage (normalized units):\n"
      "  model as commissioned (U1) : %.4f\n"
      "  model active at cycle 2    : %.4f  <- retrained on aged-cell data\n",
      rmse_initial, rmse_cycle2);

  // The physical substrate is available too: run the aged cell directly.
  Rng cell_rng = Rng(config.seed).Fork("cell-params", watched_cell);
  EcmParameters params = EcmParameters::Perturbed(EcmParameters{}, &cell_rng);
  EcmCell cell(params);
  cell.SetSoh(0.98);
  cell.ResetState(0.95);
  double voltage = cell.Step(/*current_a=*/8.0, /*dt_seconds=*/1.0);
  std::printf(
      "physical check: aged cell under 8 A load -> %.3f V terminal voltage "
      "(SoC %.3f, %.1f degC)\n",
      voltage, cell.state().soc, cell.state().temperature_c);

  std::printf("\nDone. Artifacts under /tmp/mmm-battery-fleet\n");
  return 0;
}
