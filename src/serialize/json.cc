#include "serialize/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace mmm {

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

Result<bool> JsonValue::AsBool() const {
  if (!is_bool()) return Status::InvalidArgument("json value is not a bool");
  return bool_;
}

Result<double> JsonValue::AsDouble() const {
  if (!is_number()) return Status::InvalidArgument("json value is not a number");
  return number_;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (!is_number()) return Status::InvalidArgument("json value is not a number");
  return static_cast<int64_t>(number_);
}

Result<std::string> JsonValue::AsString() const {
  if (!is_string()) return Status::InvalidArgument("json value is not a string");
  return string_;
}

void JsonValue::Append(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.push_back(std::move(value));
}

Result<const JsonValue*> JsonValue::At(size_t index) const {
  if (!is_array()) return Status::InvalidArgument("json value is not an array");
  if (index >= items_.size()) {
    return Status::OutOfRange("json array index ", index, " out of range ",
                              items_.size());
  }
  return &items_[index];
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [existing_key, existing_value] : members_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

bool JsonValue::Has(std::string_view key) const {
  for (const auto& [existing_key, _] : members_) {
    if (existing_key == key) return true;
  }
  return false;
}

Result<const JsonValue*> JsonValue::Get(std::string_view key) const {
  if (!is_object()) return Status::InvalidArgument("json value is not an object");
  for (const auto& [existing_key, value] : members_) {
    if (existing_key == key) return &value;
  }
  return Status::NotFound("json object has no member '", key, "'");
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  MMM_ASSIGN_OR_RETURN(const JsonValue* v, Get(key));
  return v->AsString();
}

Result<double> JsonValue::GetDouble(std::string_view key) const {
  MMM_ASSIGN_OR_RETURN(const JsonValue* v, Get(key));
  return v->AsDouble();
}

Result<int64_t> JsonValue::GetInt64(std::string_view key) const {
  MMM_ASSIGN_OR_RETURN(const JsonValue* v, Get(key));
  return v->AsInt64();
}

Result<bool> JsonValue::GetBool(std::string_view key) const {
  MMM_ASSIGN_OR_RETURN(const JsonValue* v, Get(key));
  return v->AsBool();
}

std::string JsonValue::GetStringOr(std::string_view key, std::string fallback) const {
  auto result = GetString(key);
  return result.ok() ? result.ValueOrDie() : std::move(fallback);
}

int64_t JsonValue::GetInt64Or(std::string_view key, int64_t fallback) const {
  auto result = GetInt64(key);
  return result.ok() ? result.ValueOrDie() : fallback;
}

double JsonValue::GetDoubleOr(std::string_view key, double fallback) const {
  auto result = GetDouble(key);
  return result.ok() ? result.ValueOrDie() : fallback;
}

void JsonValue::DumpStringTo(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integers are printed without a fraction for stable round-trips.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      }
      break;
    }
    case Type::kString:
      DumpStringTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        DumpStringTo(members_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    MMM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::Corruption("json: trailing characters at offset ", pos_);
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Result<char> Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::Corruption("json: unexpected end of input");
    }
    return text_[pos_];
  }

  Status Expect(char c) {
    MMM_ASSIGN_OR_RETURN(char got, Peek());
    if (got != c) {
      return Status::Corruption("json: expected '", std::string(1, c), "' got '",
                                std::string(1, got), "' at offset ", pos_);
    }
    ++pos_;
    return Status::OK();
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    MMM_ASSIGN_OR_RETURN(char c, Peek());
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        MMM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        break;
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        break;
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue(nullptr);
        break;
      default:
        return ParseNumber();
    }
    return Status::Corruption("json: invalid token at offset ", pos_);
  }

  Result<JsonValue> ParseObject() {
    MMM_RETURN_NOT_OK(Expect('{'));
    JsonValue object = JsonValue::Object();
    MMM_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWhitespace();
      MMM_ASSIGN_OR_RETURN(std::string key, ParseString());
      MMM_RETURN_NOT_OK(Expect(':'));
      MMM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.Set(std::move(key), std::move(value));
      MMM_ASSIGN_OR_RETURN(char next, Peek());
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return object;
      }
      return Status::Corruption("json: expected ',' or '}' at offset ", pos_);
    }
  }

  Result<JsonValue> ParseArray() {
    MMM_RETURN_NOT_OK(Expect('['));
    JsonValue array = JsonValue::Array();
    MMM_ASSIGN_OR_RETURN(char c, Peek());
    if (c == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      MMM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.Append(std::move(value));
      MMM_ASSIGN_OR_RETURN(char next, Peek());
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return array;
      }
      return Status::Corruption("json: expected ',' or ']' at offset ", pos_);
    }
  }

  Result<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::Corruption("json: expected string at offset ", pos_);
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Corruption("json: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::Corruption("json: invalid \\u escape");
            }
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are not
          // produced by our own writer).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Status::Corruption("json: invalid escape '\\", std::string(1, esc),
                                    "'");
      }
    }
    return Status::Corruption("json: unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::Corruption("json: invalid number at offset ", pos_);
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::Corruption("json: invalid number '", token, "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace mmm
