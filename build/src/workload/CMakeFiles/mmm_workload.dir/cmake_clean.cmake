file(REMOVE_RECURSE
  "CMakeFiles/mmm_workload.dir/experiment.cc.o"
  "CMakeFiles/mmm_workload.dir/experiment.cc.o.d"
  "CMakeFiles/mmm_workload.dir/scenario.cc.o"
  "CMakeFiles/mmm_workload.dir/scenario.cc.o.d"
  "libmmm_workload.a"
  "libmmm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
