#ifndef MMM_STORAGE_FILE_STORE_H_
#define MMM_STORAGE_FILE_STORE_H_

#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/latency_model.h"
#include "storage/store_stats.h"
#include "storage/stream_file.h"

namespace mmm {

/// \brief Named-blob store backed by an Env directory.
///
/// This is the "file store" of the paper's storage architecture: parameter
/// blobs, architecture snapshots, and code artifacts live here. Every
/// operation updates StoreStats and charges the configured latency model to
/// the simulated clock, so benchmarks can report modeled store time per
/// approach.
class FileStore {
 public:
  /// \param env filesystem to use
  /// \param root directory all blobs live under (created on Open)
  /// \param latency per-op/per-byte cost model charged to `sim_clock`
  /// \param sim_clock modeled-time sink; may be nullptr to disable accounting
  FileStore(Env* env, std::string root, StoreLatencyModel latency = {},
            SimulatedClock* sim_clock = nullptr);

  /// Creates the root directory.
  Status Open();

  /// Writes a blob; overwrites silently. Blob names must be non-empty and
  /// must not contain '/'.
  Status Put(const std::string& name, std::span<const uint8_t> data);

  /// Writes a string blob.
  Status PutString(const std::string& name, std::string_view data);

  /// Appends to a blob (creates it if absent). Lets writers stream large
  /// artifacts — e.g. a parameter blob for a fleet larger than RAM —
  /// without buffering them.
  Status Append(const std::string& name, std::span<const uint8_t> data);

  /// Reads a blob.
  Result<std::vector<uint8_t>> Get(const std::string& name);

  /// Reads a blob as a string.
  Result<std::string> GetString(const std::string& name);

  /// Reads `length` bytes of a blob starting at `offset` (one store
  /// round-trip; enables selective model recovery from set-level blobs).
  Result<std::vector<uint8_t>> GetRange(const std::string& name,
                                        uint64_t offset, uint64_t length);

  /// Opens a blob for pull-based windowed reading (DESIGN.md §12).
  ///
  /// Cost model: a stream is one sequential pass over the blob, so it is
  /// accounted exactly like Get — one read op and the blob's full byte
  /// count, charged here at open. The per-window Env::ReadFileRange calls
  /// carry no extra modeled cost (a sequential reader's windows are hidden
  /// by readahead); by construction, flipping a recovery between Get and
  /// OpenStream leaves StoreStats and modeled store time identical.
  ///
  /// `window_bytes == 0` selects kDefaultStreamWindowBytes.
  Result<StreamFile> OpenStream(const std::string& name,
                                uint64_t window_bytes = 0);

  /// Size of a stored blob in bytes.
  Result<uint64_t> Size(const std::string& name);

  Result<bool> Exists(const std::string& name);
  Status Delete(const std::string& name);

  /// \name Batched-write support (see storage/store_batch.h).
  /// @{

  /// Writes a blob like Put but defers all accounting to the caller: shared
  /// stats are untouched, nothing is charged to the simulated clock, and the
  /// op's counters and modeled cost are returned through `stats` /
  /// `cost_nanos` instead. Safe to call concurrently for distinct names —
  /// this is the entry point StoreBatch fans out across executor lanes.
  Status PutDetached(const std::string& name, std::span<const uint8_t> data,
                     StoreStats* stats, uint64_t* cost_nanos) const;

  /// Folds a batch's merged per-lane counters back into this store's stats
  /// and charges `charge_nanos` of modeled time (the batch's overlapped
  /// total) to the simulated clock.
  void MergeBatch(const StoreStats& delta, uint64_t charge_nanos);
  /// @}

  /// Names of all blobs, sorted.
  Result<std::vector<std::string>> List();

  /// Snapshot of the operation counters. Accounting is atomic, so the
  /// snapshot is race-free even while other threads read from the store.
  StoreStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  const std::string& root() const { return root_; }

 private:
  Status ValidateName(const std::string& name) const;
  void Charge(uint64_t bytes);

  Env* env_;
  std::string root_;
  StoreLatencyModel latency_;
  SimulatedClock* sim_clock_;
  AtomicStoreStats stats_;
};

}  // namespace mmm

#endif  // MMM_STORAGE_FILE_STORE_H_
