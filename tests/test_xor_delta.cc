#include <gtest/gtest.h>

#include "core/blob_formats.h"
#include "core/manager.h"
#include "serialize/compress.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

TEST(XorTensorsTest, IsItsOwnInverse) {
  Tensor a = testing::RandomTensor(Shape{48, 4}, 1);
  Tensor b = testing::RandomTensor(Shape{48, 4}, 2);
  Tensor delta = XorTensors(a, b);
  EXPECT_TRUE(XorTensors(delta, b).Equals(a));
  EXPECT_TRUE(XorTensors(delta, a).Equals(b));
}

TEST(XorTensorsTest, SelfXorIsZero) {
  Tensor a = testing::RandomTensor(Shape{10}, 3);
  Tensor zero = XorTensors(a, a);
  for (float x : zero.data()) EXPECT_EQ(x, 0.0f);
}

TEST(XorDiffBlobTest, RoundTripCarriesEncoding) {
  ModelSet base = MakeInitializedSet(Ffnn48Spec(), 4, 1).ValueOrDie();
  ModelSet current = base;
  current.models[2][3].second.at(0) += 0.5f;
  std::vector<DiffEntry> entries{{2, 3}};
  std::vector<uint8_t> blob =
      EncodeDiffBlob(current, entries, DiffEncoding::kXorBase, &base);
  ASSERT_OK_AND_ASSIGN(DecodedDiff diff, DecodeDiffBlob(current.spec, blob));
  EXPECT_EQ(diff.encoding, DiffEncoding::kXorBase);
  ASSERT_EQ(diff.tensors.size(), 1u);
  // Applying the XOR delta to the base reproduces the current tensor.
  Tensor applied = XorTensors(base.models[2][3].second, diff.tensors[0]);
  EXPECT_TRUE(applied.Equals(current.models[2][3].second));
}

TEST(XorDiffBlobTest, XorDeltaOfSimilarTensorsCompressesBetter) {
  // A partially-retrained tensor: small perturbations of the base.
  ModelSet base = MakeInitializedSet(Ffnn48Spec(), 30, 2).ValueOrDie();
  ModelSet current = base;
  Rng rng(5);
  std::vector<DiffEntry> entries;
  for (uint32_t m = 0; m < 30; ++m) {
    for (uint32_t p = 0; p < 8; ++p) {
      entries.push_back({m, p});
      for (float& x : current.models[m][p].second.mutable_data()) {
        x += static_cast<float>(rng.NextGaussian(0.0, 1e-4));
      }
    }
  }
  std::vector<uint8_t> absolute = EncodeDiffBlob(current, entries);
  std::vector<uint8_t> xored =
      EncodeDiffBlob(current, entries, DiffEncoding::kXorBase, &base);
  size_t absolute_lz =
      CompressBlob(Compression::kShuffleLz, absolute).size();
  size_t xor_lz = CompressBlob(Compression::kShuffleLz, xored).size();
  EXPECT_LT(xor_lz, absolute_lz);
}

class XorUpdateTest : public ::testing::Test {
 protected:
  XorUpdateTest() : temp_("xor-update") {
    ScenarioConfig config = ScenarioConfig::Battery(30);
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    options.update_options.diff_encoding = DiffEncoding::kXorBase;
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(XorUpdateTest, SaveWithoutBaseSetFails) {
  std::string head = manager_
                         ->SaveInitial(ApproachType::kUpdate,
                                       scenario_->current_set())
                         .ValueOrDie()
                         .set_id;
  ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
  update.base_set_id = head;
  update.base_set = nullptr;
  EXPECT_TRUE(
      manager_->SaveDerived(ApproachType::kUpdate, scenario_->current_set(),
                            update)
          .status()
          .IsInvalidArgument());
}

TEST_F(XorUpdateTest, ChainRoundTripsOverThreeCycles) {
  std::string head = manager_
                         ->SaveInitial(ApproachType::kUpdate,
                                       scenario_->current_set())
                         .ValueOrDie()
                         .set_id;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ModelSet base = scenario_->current_set();  // copy before mutation
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    update.base_set_id = head;
    update.base_set = &base;
    head = manager_
               ->SaveDerived(ApproachType::kUpdate, scenario_->current_set(),
                             update)
               .ValueOrDie()
               .set_id;
  }
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(head));
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      ASSERT_TRUE(recovered.models[m][p].second.Equals(
          scenario_->current_set().models[m][p].second))
          << "model " << m << " param " << p;
    }
  }
}

TEST_F(XorUpdateTest, SelectiveRecoveryComposesXorChains) {
  std::string head = manager_
                         ->SaveInitial(ApproachType::kUpdate,
                                       scenario_->current_set())
                         .ValueOrDie()
                         .set_id;
  std::vector<std::string> heads{head};
  for (int cycle = 0; cycle < 3; ++cycle) {
    ModelSet base = scenario_->current_set();
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    update.base_set_id = heads.back();
    update.base_set = &base;
    heads.push_back(manager_
                        ->SaveDerived(ApproachType::kUpdate,
                                      scenario_->current_set(), update)
                        .ValueOrDie()
                        .set_id);
  }
  std::vector<size_t> indices{0, 7, 15, 29};
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager_->RecoverModels(heads.back(), indices));
  for (size_t i = 0; i < indices.size(); ++i) {
    const StateDict& expected = scenario_->current_set().models[indices[i]];
    for (size_t p = 0; p < expected.size(); ++p) {
      ASSERT_TRUE(recovered[i][p].second.Equals(expected[p].second))
          << "model " << indices[i] << " param " << p;
    }
  }
}

TEST_F(XorUpdateTest, IntermediateSetsStayRecoverable) {
  std::string u1 = manager_
                       ->SaveInitial(ApproachType::kUpdate,
                                     scenario_->current_set())
                       .ValueOrDie()
                       .set_id;
  ModelSet base = scenario_->current_set();
  ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
  update.base_set_id = u1;
  update.base_set = &base;
  ModelSet mid_state = scenario_->current_set();
  std::string u3_1 = manager_
                         ->SaveDerived(ApproachType::kUpdate,
                                       scenario_->current_set(), update)
                         .ValueOrDie()
                         .set_id;
  ModelSet base2 = scenario_->current_set();
  ModelSetUpdateInfo update2 = scenario_->AdvanceCycle().ValueOrDie();
  update2.base_set_id = u3_1;
  update2.base_set = &base2;
  manager_
      ->SaveDerived(ApproachType::kUpdate, scenario_->current_set(), update2)
      .status()
      .Check();
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(u3_1));
  EXPECT_TRUE(recovered.models[5][2].second.Equals(mid_state.models[5][2].second));
}

}  // namespace
}  // namespace mmm
