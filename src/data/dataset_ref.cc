#include "data/dataset_ref.h"

#include "serialize/binary_io.h"
#include "serialize/sha256.h"
#include "tensor/tensor_serialize.h"

namespace mmm {

JsonValue DatasetRef::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("uri", uri);
  json.Set("hash", content_hash);
  return json;
}

Result<DatasetRef> DatasetRef::FromJson(const JsonValue& json) {
  DatasetRef ref;
  MMM_ASSIGN_OR_RETURN(ref.uri, json.GetString("uri"));
  ref.content_hash = json.GetStringOr("hash", "");
  return ref;
}

std::string HashTrainingData(const TrainingData& data) {
  BinaryWriter writer;
  WriteTensor(&writer, data.inputs);
  WriteTensor(&writer, data.targets);
  return Sha256::Hash(writer.buffer()).ToHex();
}

}  // namespace mmm
