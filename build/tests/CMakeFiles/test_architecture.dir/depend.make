# Empty dependencies file for test_architecture.
# This may be replaced when dependencies are built.
