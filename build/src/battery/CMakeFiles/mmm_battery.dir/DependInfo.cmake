
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/data_gen.cc" "src/battery/CMakeFiles/mmm_battery.dir/data_gen.cc.o" "gcc" "src/battery/CMakeFiles/mmm_battery.dir/data_gen.cc.o.d"
  "/root/repo/src/battery/drive_cycle.cc" "src/battery/CMakeFiles/mmm_battery.dir/drive_cycle.cc.o" "gcc" "src/battery/CMakeFiles/mmm_battery.dir/drive_cycle.cc.o.d"
  "/root/repo/src/battery/ecm.cc" "src/battery/CMakeFiles/mmm_battery.dir/ecm.cc.o" "gcc" "src/battery/CMakeFiles/mmm_battery.dir/ecm.cc.o.d"
  "/root/repo/src/battery/ocv.cc" "src/battery/CMakeFiles/mmm_battery.dir/ocv.cc.o" "gcc" "src/battery/CMakeFiles/mmm_battery.dir/ocv.cc.o.d"
  "/root/repo/src/battery/pack.cc" "src/battery/CMakeFiles/mmm_battery.dir/pack.cc.o" "gcc" "src/battery/CMakeFiles/mmm_battery.dir/pack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
