#ifndef MMM_CORE_PROVENANCE_H_
#define MMM_CORE_PROVENANCE_H_

#include <map>

#include "core/approach.h"
#include "data/dataset_ref.h"
#include "prov/environment.h"
#include "prov/replay.h"

namespace mmm {

/// \brief Recovery-time options of the Provenance approach.
///
/// The defaults replay every updated model on its full dataset (exact
/// recovery). The caps implement the paper's measurement protocol (§4.4:
/// "we — exclusively for this approach — only train one model with reduced
/// data per iteration"); capped recovery is *approximate* — skipped models
/// keep their base-set parameters.
struct ProvenanceRecoverOptions {
  /// Replay at most this many updated models per set (0 = all).
  size_t max_replay_models = 0;
  /// Truncate each replayed dataset to this many samples (0 = all).
  size_t max_replay_samples = 0;
};

/// \brief The paper's Provenance approach (§3.4).
///
/// The initial set is saved with Baseline's logic. A derived set is
/// represented by provenance only: the environment and training-pipeline
/// description once per set (O2 — MMlib stored them per model), plus one
/// dataset *reference* per updated model (O2 — the data itself is stored by
/// its owner regardless of model management). Recovery recursively recovers
/// the base set and deterministically re-trains every updated model on its
/// referenced data.
class ProvenanceApproach : public ModelSetApproach {
 public:
  /// \param resolver external owner of the training data (hash-verified).
  ProvenanceApproach(StoreContext context, DatasetResolver* resolver,
                     EnvironmentInfo environment,
                     ProvenanceRecoverOptions recover_options = {});

  std::string Name() const override { return "provenance"; }
  Result<SaveResult> SaveInitial(const ModelSet& set) override;
  Result<SaveResult> SaveDerived(const ModelSet& set,
                                 const ModelSetUpdateInfo& update) override;
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats) override;
  /// Selective recovery replays only the requested models' updates along
  /// the chain (always exactly — the recover-option caps are a full-set
  /// measurement protocol and do not apply here).
  Result<std::vector<StateDict>> RecoverModels(const std::string& set_id,
                                               const std::vector<size_t>& indices,
                                               RecoverStats* stats) override;
  using ModelSetApproach::Recover;
  using ModelSetApproach::RecoverModels;

  void set_recover_options(const ProvenanceRecoverOptions& options) {
    recover_options_ = options;
  }
  const ProvenanceRecoverOptions& recover_options() const {
    return recover_options_;
  }

 private:
  Result<ModelSet> RecoverInternal(const std::string& set_id,
                                   RecoverStats* stats, uint64_t depth_budget);
  Result<std::map<size_t, StateDict>> RecoverModelsInternal(
      const std::string& set_id, const std::vector<size_t>& unique_indices,
      const ArchitectureSpec* spec_hint, RecoverStats* stats,
      uint64_t depth_budget);

  StoreContext context_;
  ReplayEngine replay_;
  EnvironmentInfo environment_;
  ProvenanceRecoverOptions recover_options_;
};

}  // namespace mmm

#endif  // MMM_CORE_PROVENANCE_H_
