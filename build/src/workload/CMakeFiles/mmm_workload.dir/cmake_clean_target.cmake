file(REMOVE_RECURSE
  "libmmm_workload.a"
)
