#ifndef MMM_NN_PARAMETER_H_
#define MMM_NN_PARAMETER_H_

#include <string>

#include "tensor/tensor.h"

namespace mmm {

/// \brief A trainable tensor with its gradient accumulator.
///
/// `name` is the local name within the owning module ("weight"/"bias");
/// Sequential prefixes it with the layer name to form the qualified
/// state-dict key ("fc1.weight") that the management approaches persist.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Frozen parameters are skipped by optimizers. Partial model updates
  /// (paper §2.1: "retrain single layers") freeze the other layers.
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

}  // namespace mmm

#endif  // MMM_NN_PARAMETER_H_
