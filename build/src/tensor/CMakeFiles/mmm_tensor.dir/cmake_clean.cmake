file(REMOVE_RECURSE
  "CMakeFiles/mmm_tensor.dir/conv_ops.cc.o"
  "CMakeFiles/mmm_tensor.dir/conv_ops.cc.o.d"
  "CMakeFiles/mmm_tensor.dir/ops.cc.o"
  "CMakeFiles/mmm_tensor.dir/ops.cc.o.d"
  "CMakeFiles/mmm_tensor.dir/tensor.cc.o"
  "CMakeFiles/mmm_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/mmm_tensor.dir/tensor_serialize.cc.o"
  "CMakeFiles/mmm_tensor.dir/tensor_serialize.cc.o.d"
  "libmmm_tensor.a"
  "libmmm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
