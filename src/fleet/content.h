#ifndef MMM_FLEET_CONTENT_H_
#define MMM_FLEET_CONTENT_H_

#include <cstdint>
#include <map>

#include "battery/data_gen.h"
#include "core/model_set.h"

namespace mmm {

/// \brief Deterministic model-set content, keyed by save ordinal.
///
/// The simulator needs, for every save ordinal of a fleet plan, (a) the
/// exact parameter bytes to hand the save path and (b) the exact bytes a
/// later recovery must reproduce — under every approach, including
/// Provenance, whose recovery *re-runs training*. So derived content is not
/// invented: it is produced by actually retraining a deterministic subset of
/// the parent set's models on deterministic battery datasets, mirroring what
/// ReplayEngine does from the persisted pipeline + dataset refs. The engine
/// doubles as the DatasetResolver those refs resolve through, closing the
/// loop: recovered bytes are bit-exact against the memoized expected set by
/// construction of the system under test, never by construction of the
/// oracle.
///
/// Unlike MultiModelScenario (one linear version history), content is
/// branch-native: a derived set is keyed by (ordinal, parent ordinal), so a
/// plan may derive several children from one base. Everything is memoized;
/// computing a set twice returns the identical object.
///
/// Thread-safety: Resolve() is pure (no memo access) because provenance
/// recovery calls it from service worker threads; all other methods are
/// confined to the simulator thread.
class FleetContentEngine : public DatasetResolver {
 public:
  struct Config {
    uint64_t seed = 7;
    size_t models_per_set = 4;
    size_t samples_per_dataset = 32;
    double full_update_fraction = 0.25;
    double partial_update_fraction = 0.25;
  };

  explicit FleetContentEngine(const Config& config);

  /// Content of initial-save `ordinal`: freshly initialized models, seeded
  /// by (config.seed, ordinal). Memoized.
  Result<const ModelSet*> InitialSet(uint64_t ordinal);

  /// Content of derived-save `ordinal`: the parent's models with a
  /// deterministic subset retrained on cycle-`ordinal` battery data.
  /// `parent` must already have been computed. Memoized.
  Result<const ModelSet*> DerivedSet(uint64_t ordinal, uint64_t parent);

  /// Derivation metadata matching DerivedSet(ordinal, parent): per-model
  /// update kinds, dataset refs, the cycle's training pipeline, and partial
  /// layers. `base_set_id` is left empty (the simulator binds it) and
  /// `base_set` points at the memoized parent. DerivedSet must have been
  /// called first.
  ModelSetUpdateInfo UpdateFor(uint64_t ordinal, uint64_t parent);

  /// The memoized expected content of any computed ordinal.
  const ModelSet& ExpectedSet(uint64_t ordinal) const;
  bool Computed(uint64_t ordinal) const { return sets_.count(ordinal) != 0; }

  /// DatasetResolver for provenance replay: regenerates
  /// "battery://cell/<model>/cycle/<ordinal>" and verifies the hash. Pure.
  Result<TrainingData> Resolve(const DatasetRef& ref) override;

  const Config& config() const { return config_; }

 private:
  struct StoredUpdate {
    std::vector<UpdateKind> kinds;
    std::vector<DatasetRef> data_refs;
    uint64_t parent = 0;
  };

  TrainingData GenerateData(uint64_t model_index, uint64_t cycle) const;
  TrainPipelineSpec PipelineFor(uint64_t ordinal) const;

  Config config_;
  ArchitectureSpec spec_;
  std::vector<std::string> partial_layers_;
  BatteryDataGenerator battery_gen_;
  std::map<uint64_t, ModelSet> sets_;
  std::map<uint64_t, StoredUpdate> updates_;
};

}  // namespace mmm

#endif  // MMM_FLEET_CONTENT_H_
