#ifndef MMM_CORE_RECOMMEND_H_
#define MMM_CORE_RECOMMEND_H_

#include <string>
#include <vector>

#include "core/manager.h"

namespace mmm {

/// \brief Characteristics of a deployment workload, used to pick an approach.
///
/// The paper's discussion (§4.5) concludes "there is no single best choice"
/// and announces heuristic-based dynamic selection as future work; this
/// analytic cost model implements that heuristic.
struct WorkloadProfile {
  size_t num_models = 5000;
  size_t params_per_model = 4993;
  /// Fraction of models updated per cycle (full + partial combined).
  double update_rate = 0.10;
  /// Fraction of updated parameters within an updated model (1.0 = all).
  double updated_param_fraction = 0.75;
  /// Expected number of set recoveries per saved set (<< 1 in the paper's
  /// "save always, recover rarely" deployment scenario).
  double recoveries_per_save = 0.01;
  /// Expected delta-chain length a recovery has to walk.
  double expected_chain_length = 3.0;
  /// Seconds to retrain one model during provenance replay.
  double retrain_seconds_per_model = 60.0;
  /// Relative importance of the three metrics (need not sum to 1; the
  /// paper's deployment scenario weighs storage highest and TTR lowest).
  double storage_weight = 1.0;
  double save_time_weight = 0.5;
  double recover_time_weight = 0.1;
  /// Store performance assumptions.
  double store_bandwidth_bytes_per_s = 1.5e9;
  double store_op_seconds = 1e-4;
};

/// Predicted per-cycle cost of one approach under a workload.
struct ApproachCostEstimate {
  ApproachType approach;
  double storage_bytes_per_cycle = 0.0;
  double save_seconds = 0.0;
  double recover_seconds = 0.0;
  double weighted_score = 0.0;  ///< lower is better
};

/// \brief Outcome of the selection heuristic.
struct Recommendation {
  ApproachType approach;
  std::string rationale;
  /// All candidates, sorted best (lowest score) first.
  std::vector<ApproachCostEstimate> estimates;
};

/// Estimates the per-cycle cost of `approach` under `workload` with a simple
/// analytic model of each approach's artifact sizes and store round-trips.
ApproachCostEstimate EstimateApproachCost(ApproachType approach,
                                          const WorkloadProfile& workload);

/// Picks the approach minimizing the weighted normalized cost.
Recommendation RecommendApproach(const WorkloadProfile& workload);

}  // namespace mmm

#endif  // MMM_CORE_RECOMMEND_H_
