#ifndef MMM_TOOLS_MMMSA_SA_H_
#define MMM_TOOLS_MMMSA_SA_H_

#include <set>
#include <string>
#include <vector>

/// \file
/// mmmsa public interface: whole-program flow-aware static analysis for the
/// multi-model-management tree. Four analyses (DESIGN.md §6.5):
///
///   lock-order    lock-cycle, rank-inversion, lock-rank-missing
///   status-flow   status-overwrite, status-drop
///   journal-path  unjournaled-delete
///   layer-dag     layer-violation
///
/// Findings carry a `symbol` (lock id, function qualified name, or include
/// edge) so the baseline can ratchet on stable identity rather than line
/// numbers. Suppress single findings in source with
/// `// MMMSA(<analysis>): reason` on the finding line or the line above.

namespace mmmsa {

struct Finding {
  std::string analysis;  ///< e.g. "lock-order"
  std::string rule;      ///< e.g. "rank-inversion"
  std::string file;      ///< effective (fixture-stripped) path
  int line = 0;
  std::string symbol;  ///< stable identity for baselining
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return symbol < other.symbol;
  }
  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           symbol == other.symbol;
  }
};

struct SaOptions {
  /// Empty = run every analysis; otherwise names from AnalysisNames().
  std::set<std::string> only_analyses;
};

/// Names of the four analyses, in report order.
const std::vector<std::string>& AnalysisNames();

/// Recursively collects .h/.hpp/.cc/.cpp under each path (or the path itself
/// when it is a file), lexes + parses them, and runs the selected analyses.
/// Findings come back sorted and deduplicated; source-level MMMSA
/// suppressions are already applied. `io_errors` (optional) receives paths
/// that could not be read.
std::vector<Finding> AnalyzePaths(const std::vector<std::string>& paths,
                                  const SaOptions& options,
                                  std::vector<std::string>* io_errors);

/// Drops findings whose `rule|file|symbol` key appears in the baseline file.
/// Returns false when the baseline file cannot be read (missing file is an
/// error: pass --write-baseline to create one).
bool ApplyBaseline(const std::string& baseline_path,
                   std::vector<Finding>* findings, std::string* error);

/// Serializes findings as baseline lines (sorted, unique, with a header).
std::string FormatBaseline(const std::vector<Finding>& findings);

/// One human-readable line per finding plus a summary tail.
std::string FormatText(const std::vector<Finding>& findings);

/// Minimal SARIF 2.1.0 document (one run, one result per finding).
std::string FormatSarif(const std::vector<Finding>& findings);

/// Renders the whole-program lock-rank table and acquisition-edge list
/// (for `--dump-lock-graph`; also the source of the DESIGN.md table).
std::string DescribeLockGraph(const std::vector<std::string>& paths);

/// Strips leading fixture/scratch directories: the path suffix starting at
/// the rightmost "src/", "tools/", "tests/", or "bench/" marker, so fixture
/// trees that mirror the real layout analyze identically. Returns the input
/// unchanged when no marker occurs.
std::string EffectivePath(const std::string& path);

}  // namespace mmmsa

#endif  // MMM_TOOLS_MMMSA_SA_H_
