// Seeded layering break: storage is a lower layer than serve, so this
// include points up the DAG and must be flagged.
#ifndef SA_FIXTURE_LAYER_DAG_BAD_H_
#define SA_FIXTURE_LAYER_DAG_BAD_H_

#include "common/status.h"
#include "serve/layer_cache.h"

#endif  // SA_FIXTURE_LAYER_DAG_BAD_H_
