#ifndef MMM_SERIALIZE_JSON_H_
#define MMM_SERIALIZE_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mmm {

/// \brief Dynamically typed JSON document node.
///
/// Used for every metadata artifact in the library (document-store records,
/// architecture specs, provenance records). Objects preserve insertion order
/// so that serialization is byte-deterministic — a property the Update
/// approach's hash-based change detection relies on.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(std::nullptr_t) : type_(Type::kNull) {}        // NOLINT
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  JsonValue(int value)                                       // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(int64_t value)                                   // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(uint64_t value)                                  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(uint32_t value)                                  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  JsonValue(std::string value)                               // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)                          // NOLINT
      : type_(Type::kString), string_(value) {}

  /// Returns an empty array / object.
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// \name Checked accessors.
  /// @{
  Result<bool> AsBool() const;
  Result<double> AsDouble() const;
  Result<int64_t> AsInt64() const;
  Result<std::string> AsString() const;
  /// @}

  /// \name Unchecked accessors (caller must have verified the type).
  /// @{
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  /// @}

  /// \name Array operations.
  /// @{
  size_t ArraySize() const { return items_.size(); }
  void Append(JsonValue value);
  Result<const JsonValue*> At(size_t index) const;
  const std::vector<JsonValue>& array_items() const { return items_; }
  /// @}

  /// \name Object operations (insertion-ordered).
  /// @{
  size_t ObjectSize() const { return members_.size(); }
  /// Inserts or overwrites a member.
  void Set(std::string key, JsonValue value);
  bool Has(std::string_view key) const;
  /// Returns the member or NotFound.
  Result<const JsonValue*> Get(std::string_view key) const;
  /// Convenience typed getters: NotFound if absent, InvalidArgument on type
  /// mismatch.
  Result<std::string> GetString(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<int64_t> GetInt64(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;
  /// Typed getter with default for optional members.
  std::string GetStringOr(std::string_view key, std::string fallback) const;
  int64_t GetInt64Or(std::string_view key, int64_t fallback) const;
  double GetDoubleOr(std::string_view key, double fallback) const;
  const std::vector<std::pair<std::string, JsonValue>>& object_members() const {
    return members_;
  }
  /// @}

  /// Serializes compactly ({"a":1}).
  std::string Dump() const;
  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses a JSON document; Corruption on malformed input.
  static Result<JsonValue> Parse(std::string_view text);

  /// Deep structural equality.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;
  static void DumpStringTo(const std::string& value, std::string* out);

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;    // kObject
};

}  // namespace mmm

#endif  // MMM_SERIALIZE_JSON_H_
