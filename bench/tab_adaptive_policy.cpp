// Extension experiment (§4.5 future work, implemented): dynamic approach
// selection under a shifting workload.
//
// Phase A (cycles 1-4): archival — saves every cycle, recoveries rare.
// Phase B (cycles 5-8): investigation — every version is recovered several
// times between saves.
//
// Compares three static policies against the adaptive manager on the summed
// cost the §4.5 discussion trades off: total storage written, total save
// time, and total recovery time. The adaptive manager should track the best
// static policy in each phase without knowing the phase boundaries.
//
// Knobs: MMM_MODELS (default 1000), MMM_SAMPLES (128).

#include "bench/bench_util.h"
#include "core/adaptive.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

struct PolicyOutcome {
  std::string name;
  uint64_t storage_bytes = 0;
  double save_seconds = 0.0;
  double recover_seconds = 0.0;
  std::string choices;  // per-cycle approach initial, e.g. "PPPPUUUU"
};

constexpr int kArchiveCycles = 4;
constexpr int kInvestigateCycles = 4;
constexpr int kRecoveriesPerInvestigation = 3;

char Initial(ApproachType type) {
  switch (type) {
    case ApproachType::kMMlibBase:
      return 'M';
    case ApproachType::kBaseline:
      return 'B';
    case ApproachType::kUpdate:
      return 'U';
    case ApproachType::kProvenance:
      return 'P';
  }
  return '?';
}

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/1000,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 128));
  knobs.Describe("tab_adaptive_policy");

  std::vector<PolicyOutcome> outcomes;
  // Static policies + adaptive, each on an identical workload replay.
  std::vector<std::string> policies{"baseline", "update", "provenance",
                                    "adaptive"};
  for (const std::string& policy : policies) {
    ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
    scenario_config.samples_per_dataset = knobs.samples;
    MultiModelScenario scenario(scenario_config);
    scenario.Init().Check();

    std::string work_dir = "/tmp/mmm-bench-adaptive";
    Env::Default()->RemoveDirs(work_dir).Check();
    ModelSetManager::Options options;
    options.root_dir = work_dir;
    options.resolver = &scenario;
    auto manager = ModelSetManager::Open(options).ValueOrDie();

    AdaptivePolicyOptions adaptive_options;
    adaptive_options.profile.retrain_seconds_per_model = 120.0;
    adaptive_options.profile.recover_time_weight = 0.5;
    adaptive_options.smoothing = 0.6;
    AdaptiveModelSetManager adaptive(manager.get(), adaptive_options);

    PolicyOutcome outcome;
    outcome.name = policy;
    std::string head;

    auto do_save = [&](const ModelSetUpdateInfo* update) {
      StopWatch watch;
      SaveResult saved = [&] {
        if (policy == "adaptive") {
          if (update == nullptr) {
            return adaptive.SaveInitial(scenario.current_set()).ValueOrDie();
          }
          return adaptive.SaveDerived(scenario.current_set(), *update)
              .ValueOrDie();
        }
        ApproachType type = ApproachTypeFromName(policy).ValueOrDie();
        if (update == nullptr) {
          return manager->SaveInitial(type, scenario.current_set()).ValueOrDie();
        }
        ModelSetUpdateInfo derived = *update;
        derived.base_set_id = head;
        return manager->SaveDerived(type, scenario.current_set(), derived)
            .ValueOrDie();
      }();
      outcome.save_seconds +=
          watch.ElapsedSeconds() +
          static_cast<double>(saved.simulated_store_nanos) * 1e-9;
      outcome.storage_bytes += saved.bytes_written;
      head = saved.set_id;
      outcome.choices.push_back(
          policy == "adaptive"
              ? Initial(adaptive.current_choice())
              : Initial(ApproachTypeFromName(policy).ValueOrDie()));
    };
    auto do_recover = [&]() {
      RecoverStats stats;
      StopWatch watch;
      if (policy == "adaptive") {
        adaptive.Recover(head, &stats).status().Check();
      } else {
        manager->Recover(head, &stats).status().Check();
      }
      outcome.recover_seconds +=
          watch.ElapsedSeconds() +
          static_cast<double>(stats.simulated_store_nanos) * 1e-9;
    };

    do_save(nullptr);  // U1
    for (int cycle = 1; cycle <= kArchiveCycles + kInvestigateCycles; ++cycle) {
      if (cycle > kArchiveCycles) {
        for (int r = 0; r < kRecoveriesPerInvestigation; ++r) do_recover();
      }
      ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
      do_save(&update);
    }
    outcomes.push_back(std::move(outcome));
    Env::Default()->RemoveDirs(work_dir).Check();
  }

  std::printf(
      "\nTwo-phase workload (%d archive cycles, then %d investigation cycles "
      "with %dx recovery), %zu models:\n",
      kArchiveCycles, kInvestigateCycles, kRecoveriesPerInvestigation,
      knobs.models);
  std::printf("%-11s | %10s | %9s | %11s | %s\n", "policy", "storage MB",
              "save (s)", "recover (s)", "choice per cycle");
  for (const PolicyOutcome& outcome : outcomes) {
    std::printf("%-11s | %10.2f | %9.3f | %11.3f | %s\n", outcome.name.c_str(),
                static_cast<double>(outcome.storage_bytes) / 1e6,
                outcome.save_seconds, outcome.recover_seconds,
                outcome.choices.c_str());
  }
  std::printf(
      "\n(Expected: static provenance wins phase A on storage but pays "
      "recovery in\n phase B; static baseline the reverse; the adaptive "
      "policy starts at 'P' and\n switches to a cheap-recovery approach when "
      "the investigation traffic appears,\n landing near the best of both "
      "on the summed costs.)\n");
  return 0;
}
