#include "nn/linear.h"

#include "tensor/ops.h"

namespace mmm {

Linear::Linear(size_t in_features, size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", Tensor(Shape{out_features, in_features})),
      bias_("bias", Tensor(Shape{out_features})) {}

Tensor Linear::Forward(const Tensor& input) {
  MMM_DCHECK(input.ndim() == 2 && input.dim(1) == in_features_);
  cached_input_ = input;
  // [batch, in] x [out, in]^T -> [batch, out]
  Tensor out = MatMulTransposedB(input, weight_.value);
  return AddRowVector(out, bias_.value);
}

Tensor Linear::Backward(const Tensor& grad_output) {
  MMM_DCHECK(grad_output.ndim() == 2 && grad_output.dim(1) == out_features_);
  MMM_DCHECK(grad_output.dim(0) == cached_input_.dim(0));
  // grad_w [out, in] += grad_output^T [out, batch] x input [batch, in]
  AddInPlace(&weight_.grad, MatMulTransposedA(grad_output, cached_input_));
  AddInPlace(&bias_.grad, SumRows(grad_output));
  // grad_in [batch, in] = grad_output [batch, out] x weight [out, in]
  return MatMul(grad_output, weight_.value);
}

}  // namespace mmm
