// Fixture: suppressed chunk deletes lint clean; deleting a non-chunk blob
// never matches in the first place.
struct FileStore;

int Gc(FileStore* store, const char* hex) {
  // MMMLINT(chunk-delete): fixture repairs a store with a corrupt index
  int s = store->Delete(ChunkBlobName(hex));
  if (s != 0) return s;
  return store->Delete("set-000001.params.bin");
}
