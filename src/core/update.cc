#include "core/update.h"

#include "cas/blob_io.h"
#include "core/set_codec.h"

namespace mmm {

UpdateApproach::UpdateApproach(StoreContext context, UpdateApproachOptions options)
    : context_(context), options_(options) {}

Result<SaveResult> UpdateApproach::SaveSnapshotWithHashes(
    const ModelSet& set, const std::string& base_set_id) {
  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  // Per-layer hashing fans out across the pipeline's lanes (one work item
  // per model), then the snapshot blobs, hash blob, and set document all
  // commit through one batch.
  HashTable hash_table = ComputeHashTable(set, context_.executor);

  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  SetDocument doc;
  doc.id = result.set_id;
  doc.approach = Name();
  doc.base_set_id = base_set_id;
  MMM_RETURN_NOT_OK(StageFullSnapshot(context_, &batch, result.set_id, set, &doc));

  // Persist the per-layer hashes so the *next* save can detect changes
  // without loading this set's parameters (paper §3.3 step 2).
  doc.hash_blob = result.set_id + ".hashes.bin";
  const HashTable* hashes_ptr = &hash_table;
  const Compression compression = context_.blob_compression;
  batch.PutBlobDeferred(
      doc.hash_blob, [hashes_ptr, compression]() -> Result<std::vector<uint8_t>> {
        std::vector<uint8_t> hashes = EncodeHashTable(*hashes_ptr);
        if (compression != Compression::kNone) {
          hashes = CompressBlob(compression, hashes);
        }
        return hashes;
      });
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  return result;
}

Result<SaveResult> UpdateApproach::SaveInitial(const ModelSet& set) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  return SaveSnapshotWithHashes(set, /*base_set_id=*/"");
}

Result<SaveResult> UpdateApproach::SaveDerived(const ModelSet& set,
                                               const ModelSetUpdateInfo& update) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  if (update.base_set_id.empty()) {
    return Status::InvalidArgument("update approach needs a base_set_id");
  }
  MMM_ASSIGN_OR_RETURN(SetDocument base_doc,
                       FetchSetDocument(context_, update.base_set_id));
  if (base_doc.approach != Name()) {
    return Status::InvalidArgument("base set ", update.base_set_id,
                                   " was saved by '", base_doc.approach,
                                   "', not update");
  }
  if (base_doc.num_models != set.models.size()) {
    return Status::InvalidArgument("set has ", set.models.size(),
                                   " models but base has ", base_doc.num_models);
  }
  if (base_doc.hash_blob.empty()) {
    return Status::Corruption("base set ", update.base_set_id,
                              " is missing its hash blob");
  }

  // Periodic full snapshots bound the recovery recursion depth.
  if (base_doc.chain_depth + 1 >= options_.snapshot_interval) {
    MMM_ASSIGN_OR_RETURN(SaveResult result,
                         SaveSnapshotWithHashes(set, update.base_set_id));
    return result;
  }

  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  // Step 1 (§3.3): reference to the base set and metadata — the SetDocument.
  // Step 2: hash every model's layers, fanned out across the pipeline lanes.
  HashTable current_hashes = ComputeHashTable(set, context_.executor);
  // Step 3: identify changed parameters against the base set's hash blob.
  MMM_ASSIGN_OR_RETURN(
      std::vector<uint8_t> base_hash_bytes,
      CasReadBlobDecompressed(context_.file_store, base_doc.hash_blob,
                              context_.stream_window_bytes));
  MMM_ASSIGN_OR_RETURN(HashTable base_hashes, DecodeHashTable(base_hash_bytes));
  MMM_ASSIGN_OR_RETURN(std::vector<DiffEntry> entries,
                       DiffHashTables(base_hashes, current_hashes));
  // Step 4: concatenate the changed parameters into one binary blob.
  SetDocument doc;
  doc.id = result.set_id;
  doc.approach = Name();
  doc.kind = "delta";
  doc.base_set_id = update.base_set_id;
  doc.family = base_doc.family;
  doc.num_models = set.models.size();
  doc.chain_depth = base_doc.chain_depth + 1;
  doc.diff_blob = result.set_id + ".diff.bin";
  doc.hash_blob = result.set_id + ".hashes.bin";
  if (options_.diff_encoding == DiffEncoding::kXorBase &&
      update.base_set == nullptr) {
    return Status::InvalidArgument(
        "xor delta encoding needs ModelSetUpdateInfo::base_set");
  }
  // Diff encoding and hash encoding (plus compression) are independent work
  // items; the batch runs them on separate lanes overlapping the writes.
  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  const Compression compression = context_.blob_compression;
  const DiffEncoding diff_encoding = options_.diff_encoding;
  const ModelSet* set_ptr = &set;
  const ModelSet* base_set_ptr = update.base_set;
  const std::vector<DiffEntry>* entries_ptr = &entries;
  batch.PutBlobDeferred(
      doc.diff_blob,
      [set_ptr, entries_ptr, diff_encoding, base_set_ptr,
       compression]() -> Result<std::vector<uint8_t>> {
        std::vector<uint8_t> diff =
            EncodeDiffBlob(*set_ptr, *entries_ptr, diff_encoding, base_set_ptr);
        if (compression != Compression::kNone) {
          diff = CompressBlob(compression, diff);
        }
        return diff;
      });
  const HashTable* hashes_ptr = &current_hashes;
  batch.PutBlobDeferred(
      doc.hash_blob, [hashes_ptr, compression]() -> Result<std::vector<uint8_t>> {
        std::vector<uint8_t> hashes = EncodeHashTable(*hashes_ptr);
        if (compression != Compression::kNone) {
          hashes = CompressBlob(compression, hashes);
        }
        return hashes;
      });
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  result.chain_depth = doc.chain_depth;
  return result;
}

Result<ModelSet> UpdateApproach::Recover(const std::string& set_id,
                                         RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not update");
  }
  // The target's recorded chain depth bounds the walk: a valid chain holds
  // chain_depth + 1 documents down to its full snapshot. Sizing the budget
  // from the whole collection would let a corrupted base-pointer cycle walk
  // every set of every approach in a mixed store before failing.
  uint64_t depth_budget = doc.chain_depth + 1;
  MMM_ASSIGN_OR_RETURN(ModelSet set, RecoverFromDoc(doc, stats, depth_budget));
  capture.FillRecover(stats);
  return set;
}

Result<std::vector<StateDict>> UpdateApproach::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);

  // Walk the chain down to the nearest full snapshot.
  std::vector<SetDocument> deltas;
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not update");
  }
  // Bounded by the target's recorded depth, not the collection size (see
  // Recover): a corrupted cycle fails after chain_depth + 1 hops.
  uint64_t budget = doc.chain_depth + 1;
  while (doc.kind == "delta") {
    if (budget-- == 0) {
      return Status::Corruption("update chain too deep (cycle?) at ", doc.id);
    }
    deltas.push_back(doc);
    MMM_ASSIGN_OR_RETURN(doc, FetchSetDocument(context_, doc.base_set_id));
    if (doc.approach != Name()) {
      return Status::InvalidArgument("base set ", doc.id, " was saved by '",
                                     doc.approach, "', not update");
    }
  }
  if (doc.kind != "full") {
    return Status::Corruption("update chain of ", set_id,
                              " does not end in a full snapshot");
  }
  MMM_RETURN_NOT_OK(CheckIndices(indices, deltas.empty()
                                              ? doc.num_models
                                              : deltas.front().num_models));
  MMM_ASSIGN_OR_RETURN(ArchitectureSpec spec, ReadSnapshotSpec(context_, doc));
  ParamLayout layout = LayoutOf(spec);

  // Newest-wins resolution per requested (model, param). XOR-encoded diff
  // entries compose: the accumulator gathers them until an absolute value
  // (a newer-than-root absolute diff entry, or the root snapshot) is found.
  std::map<size_t, std::vector<Tensor>> resolved;
  std::map<size_t, std::vector<bool>> have;
  std::map<std::pair<size_t, size_t>, Tensor> xor_acc;
  for (size_t index : indices) {
    if (!resolved.contains(index)) {
      resolved[index].resize(layout.size());
      have[index].assign(layout.size(), false);
    }
  }
  size_t missing = have.size() * layout.size();

  for (const SetDocument& delta : deltas) {
    if (stats != nullptr) stats->sets_recovered += 1;
    if (missing == 0) continue;  // still count the metadata walk
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> stored,
                         CasReadBlob(context_.file_store, delta.diff_blob));
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> diff_bytes,
                         DecompressBlob(stored));
    MMM_ASSIGN_OR_RETURN(DecodedDiff diff, DecodeDiffBlob(spec, diff_bytes));
    for (size_t i = 0; i < diff.entries.size(); ++i) {
      const DiffEntry& entry = diff.entries[i];
      auto it = have.find(entry.model_index);
      if (it == have.end() || entry.param_index >= layout.size() ||
          it->second[entry.param_index]) {
        continue;
      }
      if (diff.encoding == DiffEncoding::kXorBase) {
        std::pair<size_t, size_t> key{entry.model_index, entry.param_index};
        auto acc_it = xor_acc.find(key);
        if (acc_it == xor_acc.end()) {
          xor_acc.emplace(key, std::move(diff.tensors[i]));
        } else {
          acc_it->second = XorTensors(acc_it->second, diff.tensors[i]);
        }
        continue;  // unresolved until an absolute value is reached
      }
      Tensor value = std::move(diff.tensors[i]);
      auto acc_it = xor_acc.find({entry.model_index, entry.param_index});
      if (acc_it != xor_acc.end()) {
        value = XorTensors(value, acc_it->second);
      }
      it->second[entry.param_index] = true;
      resolved[entry.model_index][entry.param_index] = std::move(value);
      --missing;
    }
  }

  // Fill whatever is still unresolved from the root snapshot.
  if (stats != nullptr) stats->sets_recovered += 1;
  if (missing > 0) {
    std::vector<size_t> root_models;
    for (const auto& [model, flags] : have) {
      for (bool got : flags) {
        if (!got) {
          root_models.push_back(model);
          break;
        }
      }
    }
    MMM_ASSIGN_OR_RETURN(std::vector<StateDict> root_states,
                         ReadModelsFromSnapshot(context_, doc, root_models));
    for (size_t r = 0; r < root_models.size(); ++r) {
      size_t model = root_models[r];
      for (size_t p = 0; p < layout.size(); ++p) {
        if (!have[model][p]) {
          Tensor value = std::move(root_states[r][p].second);
          auto acc_it = xor_acc.find({model, p});
          if (acc_it != xor_acc.end()) {
            value = XorTensors(value, acc_it->second);
          }
          resolved[model][p] = std::move(value);
          have[model][p] = true;
        }
      }
    }
  }

  std::vector<StateDict> out;
  out.reserve(indices.size());
  for (size_t index : indices) {
    StateDict state;
    state.reserve(layout.size());
    for (size_t p = 0; p < layout.size(); ++p) {
      state.emplace_back(layout[p].first, resolved[index][p]);
    }
    out.push_back(std::move(state));
  }
  capture.FillRecover(stats);
  return out;
}

Result<ModelSet> UpdateApproach::RecoverInternal(const std::string& set_id,
                                                 RecoverStats* stats,
                                                 uint64_t depth_budget) {
  if (depth_budget == 0) {
    return Status::Corruption("update recovery chain too deep (cycle?) at ",
                              set_id);
  }
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not update");
  }
  return RecoverFromDoc(doc, stats, depth_budget);
}

Result<ModelSet> UpdateApproach::RecoverFromDoc(const SetDocument& doc,
                                                RecoverStats* stats,
                                                uint64_t depth_budget) {
  if (stats != nullptr) stats->sets_recovered += 1;

  if (doc.kind == "full") {
    return ReadFullSnapshot(context_, doc);
  }
  if (doc.kind != "delta") {
    return Status::Corruption("set ", doc.id, " has unexpected kind '",
                              doc.kind, "'");
  }
  // Recursive recovery: materialize the base set, then apply the diffs.
  MMM_ASSIGN_OR_RETURN(
      ModelSet set, RecoverInternal(doc.base_set_id, stats, depth_budget - 1));
  if (set.models.size() != doc.num_models) {
    return Status::Corruption("base set size ", set.models.size(),
                              " != derived size ", doc.num_models);
  }
  MMM_RETURN_NOT_OK(ApplyDelta(doc, &set));
  return set;
}

Status UpdateApproach::ApplyDelta(const SetDocument& doc, ModelSet* set) {
  // Diff blobs are decoded whole (entries reference arbitrary positions),
  // but with streaming recovery on the *stored-side* intermediate — the
  // compressed/chunked bytes — never materializes.
  std::vector<uint8_t> diff_bytes;
  if (context_.streaming_recovery) {
    MMM_ASSIGN_OR_RETURN(diff_bytes, CasReadBlobDecompressed(
                                         context_.file_store, doc.diff_blob,
                                         context_.stream_window_bytes));
  } else {
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> stored_diff,
                         CasReadBlob(context_.file_store, doc.diff_blob));
    MMM_ASSIGN_OR_RETURN(diff_bytes, DecompressBlob(stored_diff));
  }
  MMM_ASSIGN_OR_RETURN(DecodedDiff diff, DecodeDiffBlob(set->spec, diff_bytes));
  for (size_t i = 0; i < diff.entries.size(); ++i) {
    const DiffEntry& entry = diff.entries[i];
    if (entry.model_index >= set->models.size() ||
        entry.param_index >= set->models[entry.model_index].size()) {
      return Status::Corruption("diff entry out of range in set ", doc.id);
    }
    Tensor& target = set->models[entry.model_index][entry.param_index].second;
    if (diff.encoding == DiffEncoding::kXorBase) {
      if (diff.tensors[i].shape() != target.shape()) {
        return Status::Corruption("xor diff shape mismatch in set ", doc.id);
      }
      target = XorTensors(target, diff.tensors[i]);
    } else {
      target = std::move(diff.tensors[i]);
    }
  }
  return Status::OK();
}

namespace {

/// Reads and decodes a set's stored per-layer hash table.
Result<HashTable> ReadStoredHashTable(const StoreContext& context,
                                      const SetDocument& doc) {
  if (doc.hash_blob.empty()) {
    return Status::Corruption("set ", doc.id, " is missing its hash blob");
  }
  if (context.streaming_recovery) {
    MMM_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        CasReadBlobDecompressed(context.file_store, doc.hash_blob,
                                context.stream_window_bytes));
    return DecodeHashTable(bytes);
  }
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> stored,
                       CasReadBlob(context.file_store, doc.hash_blob));
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, DecompressBlob(stored));
  return DecodeHashTable(bytes);
}

/// Walks the delta chain (documents only) down to the root snapshot and
/// reads its architecture blob — the cheap way to learn a delta set's spec
/// without touching any parameter or diff blob.
Result<ArchitectureSpec> ResolveChainSpec(const StoreContext& context,
                                          SetDocument doc, uint64_t budget) {
  while (doc.kind == "delta") {
    if (budget-- == 0) {
      return Status::Corruption("update chain too deep (cycle?) at ", doc.id);
    }
    MMM_ASSIGN_OR_RETURN(doc, FetchSetDocument(context, doc.base_set_id));
  }
  if (doc.kind != "full") {
    return Status::Corruption("update chain does not end in a full snapshot");
  }
  return ReadSnapshotSpec(context, doc);
}

}  // namespace

Result<ModelSet> UpdateApproach::RecoverCached(const std::string& set_id,
                                               RecoveryCache* cache,
                                               RecoverStats* stats,
                                               CacheRequestStats* cache_stats) {
  if (cache == nullptr) return Recover(set_id, stats);
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not update");
  }
  // Budget from the target's recorded depth, exactly as in Recover.
  uint64_t depth_budget = doc.chain_depth + 1;
  CacheRequestStats local;
  MMM_ASSIGN_OR_RETURN(
      ModelSet set,
      RecoverCachedFromDoc(doc, cache, stats, &local, depth_budget));
  if (cache_stats != nullptr) *cache_stats += local;
  capture.FillRecover(stats);
  return set;
}

Result<ModelSet> UpdateApproach::RecoverCachedInternal(
    const std::string& set_id, RecoveryCache* cache, RecoverStats* stats,
    CacheRequestStats* cache_stats, uint64_t depth_budget) {
  if (depth_budget == 0) {
    return Status::Corruption("update recovery chain too deep (cycle?) at ",
                              set_id);
  }
  // The set document is always fetched live. The document store stays the
  // single root of trust, so recovering a deleted set fails right here no
  // matter what the cache still holds — a cache hit can never resurrect a
  // collected set.
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not update");
  }
  return RecoverCachedFromDoc(doc, cache, stats, cache_stats, depth_budget);
}

Result<ModelSet> UpdateApproach::RecoverCachedFromDoc(
    const SetDocument& doc, RecoveryCache* cache, RecoverStats* stats,
    CacheRequestStats* cache_stats, uint64_t depth_budget) {
  const std::string& set_id = doc.id;
  if (stats != nullptr) stats->sets_recovered += 1;

  // Step 1: resolve the set's per-layer content hashes and architecture,
  // memoized so a hot set costs no hash-blob or chain-walk reads.
  HashTable hashes;
  ArchitectureSpec spec;
  if (cache->GetSetMeta(set_id, &hashes, &spec)) {
    cache_stats->meta_hits += 1;
  } else {
    cache_stats->meta_misses += 1;
    MMM_ASSIGN_OR_RETURN(hashes, ReadStoredHashTable(context_, doc));
    MMM_ASSIGN_OR_RETURN(spec,
                         ResolveChainSpec(context_, doc, depth_budget));
  }
  ParamLayout layout = LayoutOf(spec);
  if (hashes.size() != doc.num_models) {
    return Status::Corruption("hash table of ", set_id, " covers ",
                              hashes.size(), " models, document says ",
                              doc.num_models);
  }
  for (const auto& row : hashes) {
    if (row.size() != layout.size()) {
      return Status::Corruption("hash table of ", set_id,
                                " disagrees with the parameter layout");
    }
  }

  // Step 2: probe every layer by content hash. Layers shared with an
  // already-served set (the base snapshot, or any sibling derived set) hit
  // regardless of which set first brought them in.
  std::vector<std::vector<Tensor>> cached_layers(hashes.size());
  bool complete = true;
  for (size_t m = 0; m < hashes.size(); ++m) {
    cached_layers[m].resize(layout.size());
    for (size_t p = 0; p < layout.size(); ++p) {
      if (cache->GetLayer(hashes[m][p], &cached_layers[m][p])) {
        cache_stats->layer_hits += 1;
      } else {
        cache_stats->layer_misses += 1;
        complete = false;
      }
    }
  }

  // Step 3a: full hit — assemble without touching the file store.
  if (complete) {
    cache_stats->sets_from_cache += 1;
    ModelSet set;
    set.spec = spec;
    set.models.resize(hashes.size());
    for (size_t m = 0; m < hashes.size(); ++m) {
      StateDict& state = set.models[m];
      state.reserve(layout.size());
      for (size_t p = 0; p < layout.size(); ++p) {
        state.emplace_back(layout[p].first, std::move(cached_layers[m][p]));
      }
    }
    cache->PutSetMeta(set_id, hashes, spec);
    return set;
  }

  // Step 3b: miss — materialize from the store. A full snapshot decodes its
  // parameter blob; a delta recovers its base *through the cache* (the
  // memoized recursion) and applies the diff on top.
  ModelSet set;
  bool layers_offered = false;
  if (doc.kind == "full") {
    if (context_.streaming_recovery) {
      // Streaming decode: each finished layer goes to the cache the moment
      // its bytes are complete — a concurrent request for a sibling set can
      // hit layers of this snapshot while later models are still streaming
      // in. Offering here replaces step 4's offer for this set.
      MMM_ASSIGN_OR_RETURN(
          size_t streamed_models,
          StreamParamBlob(
              context_, doc.param_blob, spec,
              [&](size_t m, size_t p, const std::string& key,
                  Tensor tensor) -> Status {
                if (m >= hashes.size() || p >= hashes[m].size()) {
                  return Status::Corruption(
                      "set ", set_id, " streams layer (", m, ", ", p,
                      ") outside its hash table");
                }
                cache->PutLayer(hashes[m][p], tensor);
                if (set.models.size() <= m) set.models.resize(m + 1);
                set.models[m].emplace_back(key, std::move(tensor));
                return Status::OK();
              }));
      set.models.resize(streamed_models);
      layers_offered = true;
    } else {
      MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> stored,
                           CasReadBlob(context_.file_store, doc.param_blob));
      MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, DecompressBlob(stored));
      MMM_ASSIGN_OR_RETURN(set.models, DecodeParamBlob(spec, blob));
    }
    set.spec = spec;
    if (set.models.size() != doc.num_models) {
      return Status::Corruption("set ", set_id, " holds ", set.models.size(),
                                " models, document says ", doc.num_models);
    }
  } else if (doc.kind == "delta") {
    MMM_ASSIGN_OR_RETURN(
        set, RecoverCachedInternal(doc.base_set_id, cache, stats, cache_stats,
                                   depth_budget - 1));
    if (set.models.size() != doc.num_models) {
      return Status::Corruption("base set size ", set.models.size(),
                                " != derived size ", doc.num_models);
    }
    MMM_RETURN_NOT_OK(ApplyDelta(doc, &set));
  } else {
    return Status::Corruption("set ", set_id, " has unexpected kind '",
                              doc.kind, "'");
  }

  // Step 4: offer every materialized layer back to the cache under its
  // stored content hash (shared layers re-admit idempotently). The
  // streaming full-snapshot path already offered each layer as it finished
  // decoding; re-offering would only inflate the cache's rejection stats.
  if (!layers_offered) {
    for (size_t m = 0; m < set.models.size(); ++m) {
      for (size_t p = 0; p < set.models[m].size(); ++p) {
        cache->PutLayer(hashes[m][p], set.models[m][p].second);
      }
    }
  }
  cache->PutSetMeta(set_id, hashes, set.spec);
  return set;
}

}  // namespace mmm
