#include "cluster/shard_router.h"

#include "common/strings.h"
#include "serialize/sha256.h"

namespace mmm {

ShardRouter::ShardRouter(size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

uint64_t ShardRouter::HashPoint(const std::string& text) {
  Sha256Digest digest = Sha256::Hash(text);
  uint64_t point = 0;
  for (size_t i = 0; i < 8; ++i) {
    point = (point << 8) | digest.bytes[i];
  }
  return point;
}

Status ShardRouter::AddShard(const std::string& name) {
  return AddShardWithKey(name, name);
}

Status ShardRouter::AddShardWithKey(const std::string& name,
                                    const std::string& ring_key) {
  if (name.empty()) return Status::InvalidArgument("shard name is empty");
  if (ring_keys_.contains(name)) {
    return Status::AlreadyExists("shard '", name, "' is already on the ring");
  }
  for (size_t replica = 0; replica < virtual_nodes_; ++replica) {
    uint64_t point = HashPoint(
        StringFormat("vnode/%s/%zu", ring_key.c_str(), replica));
    // A 64-bit point collision between distinct shards is astronomically
    // unlikely; keeping the incumbent just drops one of this shard's
    // virtual nodes.
    ring_.emplace(point, name);
  }
  ring_keys_[name] = ring_key;
  return Status::OK();
}

Status ShardRouter::RemoveShard(const std::string& name) {
  auto it = ring_keys_.find(name);
  if (it == ring_keys_.end()) {
    return Status::NotFound("no shard '", name, "' on the ring");
  }
  std::erase_if(ring_, [&](const auto& entry) { return entry.second == name; });
  ring_keys_.erase(it);
  return Status::OK();
}

Status ShardRouter::ReplaceShard(const std::string& old_name,
                                 const std::string& new_name) {
  auto it = ring_keys_.find(old_name);
  if (it == ring_keys_.end()) {
    return Status::NotFound("no shard '", old_name, "' on the ring");
  }
  if (new_name.empty()) return Status::InvalidArgument("shard name is empty");
  if (new_name != old_name && ring_keys_.contains(new_name)) {
    return Status::AlreadyExists("shard '", new_name,
                                 "' is already on the ring");
  }
  for (auto& [point, owner] : ring_) {
    if (owner == old_name) owner = new_name;
  }
  std::string ring_key = it->second;
  ring_keys_.erase(it);
  ring_keys_[new_name] = std::move(ring_key);
  return Status::OK();
}

Result<std::string> ShardRouter::OwnerOf(const std::string& id) const {
  if (ring_.empty()) {
    return Status::InvalidArgument("the shard ring is empty");
  }
  uint64_t point = HashPoint("key/" + id);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

Result<std::string> ShardRouter::RingKeyOf(const std::string& name) const {
  auto it = ring_keys_.find(name);
  if (it == ring_keys_.end()) {
    return Status::NotFound("no shard '", name, "' on the ring");
  }
  return it->second;
}

std::vector<std::string> ShardRouter::Shards() const {
  std::vector<std::string> names;
  names.reserve(ring_keys_.size());
  for (const auto& [name, key] : ring_keys_) names.push_back(name);
  return names;
}

}  // namespace mmm
