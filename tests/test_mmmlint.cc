// Golden tests for mmmlint: every rule has a positive fixture that must
// produce findings and a suppressed twin that must lint clean. The fixtures
// live under tests/lint_fixtures/ (path injected as MMM_LINT_FIXTURES) and
// are linted, never compiled, so they can forward-declare freely.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/mmmlint/lint.h"

namespace {

using mmmlint::Finding;
using mmmlint::LintOptions;
using mmmlint::LintPaths;

std::string FixtureDir(const std::string& name) {
  return std::string(MMM_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> LintFixture(const std::string& name,
                                 const std::vector<std::string>& rules = {}) {
  LintOptions options;
  options.only_rules = rules;
  return LintPaths({FixtureDir(name)}, options);
}

std::set<std::string> RulesIn(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& file_suffix, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line &&
           f.file.size() >= file_suffix.size() &&
           f.file.compare(f.file.size() - file_suffix.size(),
                          file_suffix.size(), file_suffix) == 0;
  });
}

TEST(MmmlintRules, CatalogIsStable) {
  std::vector<std::string> rules = mmmlint::RuleNames();
  std::set<std::string> have(rules.begin(), rules.end());
  for (const char* rule :
       {"banned-random", "discarded-status", "naked-new", "naked-delete",
        "mutex-missing-guard", "raw-std-mutex", "direct-env-write",
        "direct-env-read", "direct-manager-open", "chunk-delete",
        "include-cycle"}) {
    EXPECT_TRUE(have.count(rule) != 0) << "missing rule: " << rule;
  }
}

TEST(MmmlintRules, BannedRandom) {
  std::vector<Finding> findings = LintFixture("banned_random");
  EXPECT_TRUE(HasFinding(findings, "banned-random", "bad.cc", 5));
  EXPECT_TRUE(HasFinding(findings, "banned-random", "bad.cc", 9));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, DiscardedStatus) {
  std::vector<Finding> findings = LintFixture("discarded_status");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", "bad.cc", 12))
      << "bare-statement Commit() not flagged";
  EXPECT_TRUE(HasFinding(findings, "discarded-status", "bad.cc", 13))
      << "(void)-cast DeleteFile() not flagged";
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, NakedNew) {
  std::vector<Finding> findings = LintFixture("naked_new");
  EXPECT_TRUE(HasFinding(findings, "naked-new", "bad.cc", 7));
  // The suppressed twin also holds a unique_ptr construction that must not
  // be flagged in the first place.
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, NakedDelete) {
  std::vector<Finding> findings = LintFixture("naked_delete");
  EXPECT_TRUE(HasFinding(findings, "naked-delete", "bad.cc", 7));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, RawStdMutex) {
  // bad.h also trips mutex-missing-guard (that rule has its own fixture), so
  // filter to the rule under test.
  std::vector<Finding> findings =
      LintFixture("raw_std_mutex", {"raw-std-mutex"});
  EXPECT_TRUE(HasFinding(findings, "raw-std-mutex", "bad.h", 11));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, MutexMissingGuard) {
  std::vector<Finding> findings = LintFixture("mutex_missing_guard");
  EXPECT_TRUE(HasFinding(findings, "mutex-missing-guard", "bad.h", 12));
  // suppressed.h holds an annotated class (no finding to begin with) and a
  // suppressed one; neither may surface.
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, DirectEnvWrite) {
  std::vector<Finding> findings = LintFixture("direct_env_write");
  EXPECT_TRUE(HasFinding(findings, "direct-env-write", "bad.cc", 9));
  EXPECT_TRUE(HasFinding(findings, "direct-env-write", "bad.cc", 11));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, DirectEnvRead) {
  std::vector<Finding> findings = LintFixture("direct_env_read");
  EXPECT_TRUE(HasFinding(findings, "direct-env-read", "bad.cc", 9));
  EXPECT_TRUE(HasFinding(findings, "direct-env-read", "bad.cc", 11));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, DirectManagerOpen) {
  std::vector<Finding> findings = LintFixture("direct_manager_open");
  EXPECT_TRUE(HasFinding(findings, "direct-manager-open", "bad.cc", 13));
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, ChunkDelete) {
  std::vector<Finding> findings = LintFixture("chunk_delete");
  EXPECT_TRUE(HasFinding(findings, "chunk-delete", "bad.cc", 7))
      << "Delete(ChunkBlobName(...)) not flagged";
  EXPECT_TRUE(HasFinding(findings, "chunk-delete", "bad.cc", 9))
      << "Delete(kCasChunkPrefix + ...) not flagged";
  EXPECT_TRUE(HasFinding(findings, "chunk-delete", "bad.cc", 11))
      << "Delete(\"cas-...\") literal not flagged";
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintRules, ChunkDeleteExemptsCasSweeper) {
  // The real sweeper (src/cas/) deletes chunk blobs by design and must not
  // be flagged when the source tree itself is linted.
  std::vector<Finding> findings =
      LintPaths({"src/cas"}, {{"chunk-delete"}});
  // Path may not exist when the test runs outside the repo root; only assert
  // when it resolved.
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.rule == "io") << f.file << ":" << f.line;
  }
}

TEST(MmmlintRules, IncludeCycle) {
  std::vector<Finding> findings = LintFixture("include_cycle/bad");
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(RulesIn(findings).count("include-cycle") != 0);
  // The back edge lands on whichever of a.h/b.h the DFS reaches second; the
  // cycle text must name both members either way.
  EXPECT_TRUE(findings[0].message.find("a.h") != std::string::npos);
  EXPECT_TRUE(findings[0].message.find("b.h") != std::string::npos);

  EXPECT_TRUE(LintFixture("include_cycle/ok").empty())
      << "suppression on the back-edge include did not take";
}

TEST(MmmlintDriver, WholeFixtureTreeRespectsSuppressions) {
  // Linting the whole fixture tree at once must surface findings only from
  // the bad fixtures; every suppressed twin stays silent.
  std::vector<Finding> findings = LintPaths({std::string(MMM_LINT_FIXTURES)});
  EXPECT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.file.find("suppressed") == std::string::npos &&
                f.file.find("/ok/") == std::string::npos)
        << f.file << ":" << f.line << " [" << f.rule << "]";
  }
}

TEST(MmmlintDriver, RuleFilterRestrictsOutput) {
  std::vector<Finding> findings =
      LintPaths({std::string(MMM_LINT_FIXTURES)}, {{"banned-random"}});
  EXPECT_FALSE(findings.empty());
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "banned-random");
}

TEST(MmmlintDriver, UnreadablePathReportsIoFinding) {
  std::vector<Finding> findings =
      LintPaths({FixtureDir("does_not_exist_anywhere")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io");
}

TEST(MmmlintDriver, FormattersRenderEveryFinding) {
  std::vector<Finding> findings = LintFixture("banned_random");
  ASSERT_FALSE(findings.empty());
  std::string text = mmmlint::FormatText(findings);
  std::string json = mmmlint::FormatJson(findings);
  EXPECT_TRUE(text.find("[banned-random]") != std::string::npos);
  EXPECT_TRUE(json.find("\"rule\"") != std::string::npos);
  EXPECT_EQ(static_cast<size_t>(
                std::count(text.begin(), text.end(), '\n')),
            findings.size());
}

TEST(MmmlintDriver, ListSuppressionsReportsFileRuleAndReason) {
  std::vector<mmmlint::SuppressionNote> notes =
      mmmlint::ListSuppressions({FixtureDir("direct_manager_open")});
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].file.find("suppressed.cc"), std::string::npos);
  EXPECT_EQ(notes[0].line, 8);
  EXPECT_EQ(notes[0].rule, "direct-manager-open");
  EXPECT_EQ(notes[0].reason,
            "fixture models a sanctioned standalone tool");
}

TEST(MmmlintDriver, ListSuppressionsIgnoresSyntaxDocumentation) {
  // Comments that merely describe the `MMMLINT(<rule>): ...` syntax (like
  // the header docs in tools/mmmlint) must not show up as debt.
  std::vector<mmmlint::SuppressionNote> notes =
      mmmlint::ListSuppressions({FixtureDir("banned_random")});
  for (const mmmlint::SuppressionNote& note : notes) {
    EXPECT_TRUE(note.rule == "*" ||
                note.rule.find_first_not_of(
                    "abcdefghijklmnopqrstuvwxyz0123456789-") ==
                    std::string::npos)
        << note.rule;
  }
}

}  // namespace
