// §4.4 text experiment: Provenance TTR with *extensive* training.
//
// The paper reports ~6 h / ~12 h / ~18 h to recover U3-1 / U3-2 / U3-3 when
// every updated model is fully retrained (90k samples, 10 epochs) — a linear
// staircase, because recovering iteration k replays all k update cycles.
// We run the same protocol at reduced scale (all updated models replayed on
// their full datasets) and check the staircase: TTR(U3-k) ~= k * TTR(U3-1).
//
// Knobs: MMM_MODELS (default 200), MMM_SAMPLES (512), MMM_EPOCHS (4),
// MMM_U3_ITERATIONS (3).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/200,
                                         /*default_runs=*/1);
  int epochs = static_cast<int>(GetEnvInt64("MMM_EPOCHS", 4));
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 512));
  knobs.Describe("tab_provenance_training");
  std::printf("  epochs=%d (MMM_EPOCHS); all updated models fully replayed\n",
              epochs);

  ExperimentConfig config;
  config.scenario = ScenarioConfig::Battery(knobs.models);
  config.scenario.samples_per_dataset = knobs.samples;
  config.scenario.epochs = epochs;
  config.u3_iterations = knobs.u3_iterations;
  config.runs = knobs.runs;
  config.approaches = {ApproachType::kProvenance};
  config.provenance_recover = {};  // exact recovery: replay everything
  config.work_dir = "/tmp/mmm-bench-prov-training";

  ExperimentRunner runner(config);
  auto results = runner.Run().ValueOrDie();

  std::printf(
      "\nProvenance TTR with extensive training (exact recovery, %zu models, "
      "%zu samples, %d epochs):\n",
      knobs.models, knobs.samples, epochs);
  std::printf("%-10s | %10s | %16s\n", "use case", "TTR in s",
              "vs U3-1 (paper: k x)");
  double u3_1 = 0.0;
  for (const UseCaseResult& row : results) {
    double ttr = row.metrics.at(ApproachType::kProvenance).ttr_seconds;
    if (row.use_case == "U3-1") u3_1 = ttr;
    std::printf("%-10s | %10.3f | %16s\n", row.use_case.c_str(), ttr,
                row.use_case == "U1" || u3_1 == 0.0
                    ? "-"
                    : StringFormat("%.2fx", ttr / u3_1).c_str());
  }
  std::printf(
      "\n(The paper's absolute numbers — 6 h/12 h/18 h — come from 90k-sample "
      "x 10-epoch\n retraining of 500 models; the staircase factor is the "
      "reproducible shape.)\n");

  CleanupWorkDir(knobs, config.work_dir);
  return 0;
}
