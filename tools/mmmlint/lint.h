#ifndef MMM_TOOLS_MMMLINT_LINT_H_
#define MMM_TOOLS_MMMLINT_LINT_H_

#include <string>
#include <vector>

/// \file
/// mmmlint — repo-specific invariant checker for the mmm codebase.
///
/// A from-scratch token-level scanner (no libclang): each translation unit is
/// lexed into identifiers / punctuation / literals with comments retained for
/// suppression matching, then a small set of repo-specific rules runs over
/// the token stream. The rules encode contracts a generic linter cannot know
/// (see DESIGN.md §6.3 for the catalog and rationale):
///
///   banned-random        nondeterminism sources (rand(), std::random_device,
///                        time(), wall clocks) outside src/common/rng.* and
///                        src/common/clock.h — the Provenance approach's
///                        replay depends on seeded determinism.
///   discarded-status     a call to a known Status/Result-returning storage
///                        API used as a bare statement (or silenced with a
///                        `(void)` cast) — dropped write errors corrupt sets.
///   naked-new            `new` outside a smart-pointer construction, or any
///                        `delete` expression (allocator shim files exempt).
///   mutex-missing-guard  a class declares a Mutex/std::mutex member but
///                        annotates nothing with MMM_GUARDED_BY.
///   raw-std-mutex        a raw std::mutex / std::shared_mutex /
///                        std::condition_variable outside
///                        common/thread_annotations.h — concurrent code must
///                        use the annotated wrappers so clang's
///                        -Wthread-safety can check it.
///   direct-env-write     Env::WriteFile / AppendToFile called from approach
///                        code (src/core/): save-path writes must stage
///                        through StoreBatch so batching, journaling, and
///                        crash sweeps see them.
///   direct-manager-open  ModelSetManager::Open outside src/core/,
///                        src/cluster/, tests, and bench — other layers take
///                        an injected manager or route through the cluster
///                        Coordinator, so one store never has two facades.
///   chunk-delete         Delete/DeleteFile of a `cas-` chunk-namespace blob
///                        outside src/cas/ — chunks are refcounted and
///                        shared across sets; deleting one behind the CAS
///                        sweeper's back corrupts every manifest sharing it.
///   include-cycle        a cycle in the quoted-include graph under the
///                        scanned roots.
///
/// Suppression: a comment `// MMMLINT(<rule>): <reason>` (or `MMMLINT(*)`)
/// on the finding's line or the line directly above it suppresses that rule
/// there. The reason is mandatory by convention; reviewers enforce it.

namespace mmmlint {

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct LintOptions {
  /// When non-empty, only these rules run.
  std::vector<std::string> only_rules;
};

/// Names of every registered rule, in catalog order.
std::vector<std::string> RuleNames();

/// Expands files and directories (recursing into dirs, keeping .h/.hpp/.cc/
/// .cpp files), lints every file, and returns the surviving findings sorted
/// by (file, line). Unreadable paths produce a finding under rule "io".
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options = {});

/// One `// MMMLINT(<rule>): <reason>` comment found in the tree — the
/// suppression debt `mmmlint --list-suppressions` prints so CI logs show
/// every waived finding with its justification.
struct SuppressionNote {
  std::string file;
  int line = 0;
  std::string rule;    ///< suppressed rule name, or "*"
  std::string reason;  ///< text after the colon; empty = unjustified
};

/// Collects every MMMLINT suppression comment under `paths`, sorted by
/// (file, line). Unreadable paths are skipped.
std::vector<SuppressionNote> ListSuppressions(
    const std::vector<std::string>& paths);

/// Renders findings one per line: `file:line: [rule] message`.
std::string FormatText(const std::vector<Finding>& findings);

/// Renders findings as a JSON array of {file, line, rule, message}.
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace mmmlint

#endif  // MMM_TOOLS_MMMLINT_LINT_H_
