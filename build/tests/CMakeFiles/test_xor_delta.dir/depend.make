# Empty dependencies file for test_xor_delta.
# This may be replaced when dependencies are built.
