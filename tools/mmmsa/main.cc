#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sa.h"

namespace {

void PrintUsage() {
  std::cout
      << "usage: mmmsa [options] <path>...\n"
         "\n"
         "Whole-program flow-aware static analysis for the mmm tree\n"
         "(DESIGN.md §6.5). Paths are files or directories; directories\n"
         "recurse over .h/.hpp/.cc/.cpp.\n"
         "\n"
         "options:\n"
         "  --analysis=<name>      run only this analysis (repeatable)\n"
         "  --list-analyses        print the analysis catalog and exit\n"
         "  --baseline=<file>      drop findings listed in the ratchet "
         "baseline\n"
         "  --write-baseline=<file> write current findings as a new baseline\n"
         "  --sarif=<file>         also write findings as SARIF 2.1.0 JSON\n"
         "  --dump-lock-graph      print the lock rank table and acquisition "
         "edges\n"
         "  --help                 this text\n"
         "\n"
         "exit status: 0 clean, 1 findings, 2 usage or I/O error\n";
}

bool WriteFileOrComplain(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "mmmsa: cannot write '" << path << "'\n";
    return false;
  }
  out << contents;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  mmmsa::SaOptions options;
  std::string baseline, write_baseline, sarif;
  bool dump_lock_graph = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--list-analyses") {
      for (const std::string& name : mmmsa::AnalysisNames()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (arg == "--dump-lock-graph") {
      dump_lock_graph = true;
      continue;
    }
    if (arg.rfind("--analysis=", 0) == 0) {
      std::string name = arg.substr(11);
      const auto& names = mmmsa::AnalysisNames();
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "mmmsa: unknown analysis '" << name
                  << "' (see --list-analyses)\n";
        return 2;
      }
      options.only_analyses.insert(name);
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline = arg.substr(17);
      continue;
    }
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif = arg.substr(8);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mmmsa: unknown option '" << arg << "'\n";
      PrintUsage();
      return 2;
    }
    paths.push_back(arg);
  }

  if (paths.empty()) {
    PrintUsage();
    return 2;
  }

  if (dump_lock_graph) {
    std::cout << mmmsa::DescribeLockGraph(paths);
    return 0;
  }

  std::vector<std::string> io_errors;
  std::vector<mmmsa::Finding> findings =
      mmmsa::AnalyzePaths(paths, options, &io_errors);
  for (const std::string& path : io_errors) {
    std::cerr << "mmmsa: cannot read '" << path << "'\n";
  }

  if (!write_baseline.empty()) {
    if (!WriteFileOrComplain(write_baseline,
                             mmmsa::FormatBaseline(findings))) {
      return 2;
    }
    // SARIF in this mode carries the raw findings (no baseline applied),
    // matching what was just serialized.
    if (!sarif.empty() &&
        !WriteFileOrComplain(sarif, mmmsa::FormatSarif(findings))) {
      return 2;
    }
    std::cout << "mmmsa: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline << "\n";
    return io_errors.empty() ? 0 : 2;
  }

  if (!baseline.empty()) {
    std::string error;
    if (!mmmsa::ApplyBaseline(baseline, &findings, &error)) {
      std::cerr << "mmmsa: " << error << "\n";
      return 2;
    }
  }

  if (!sarif.empty() &&
      !WriteFileOrComplain(sarif, mmmsa::FormatSarif(findings))) {
    return 2;
  }

  std::cout << mmmsa::FormatText(findings);
  if (!io_errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
