#include <gtest/gtest.h>

#include <cmath>

#include "battery/pack.h"
#include "nn/metrics.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

// ---------------------------------------------------------------------------
// SeriesPack

TEST(SeriesPackTest, PackVoltageIsSumOfCells) {
  PackConfig config;
  config.num_cells = 6;
  SeriesPack pack(config);
  pack.ResetState(0.9);
  double pack_v = pack.Step(5.0, 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < pack.size(); ++i) {
    sum += pack.cell(i).state().terminal_voltage;
  }
  EXPECT_NEAR(pack_v, sum, 1e-9);
  EXPECT_NEAR(pack_v, pack.PackVoltage(), 1e-9);
  EXPECT_GT(pack_v, 6 * 3.0);
  EXPECT_LT(pack_v, 6 * 4.3);
}

TEST(SeriesPackTest, CellsAreInhomogeneous) {
  PackConfig config;
  config.num_cells = 8;
  SeriesPack pack(config);
  pack.ResetState(0.8);
  for (int t = 0; t < 120; ++t) pack.Step(8.0, 1.0);
  // Manufacturing spread shows up as a voltage spread under load.
  EXPECT_GT(pack.MaxCellVoltage() - pack.MinCellVoltage(), 1e-4);
}

TEST(SeriesPackTest, DeterministicForSeed) {
  PackConfig config;
  config.num_cells = 4;
  SeriesPack a(config), b(config);
  a.ResetState(0.7);
  b.ResetState(0.7);
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(a.Step(6.0, 1.0), b.Step(6.0, 1.0));
  }
}

TEST(SeriesPackTest, AgedCellIsTheWeakestUnderLoad) {
  PackConfig config;
  config.num_cells = 10;
  config.parameter_spread = 0.01;
  SeriesPack pack(config);
  pack.AgeCell(4, 0.75);
  pack.ResetState(0.8);
  for (int t = 0; t < 30; ++t) pack.Step(10.0, 1.0);
  EXPECT_EQ(pack.WeakestCell(), 4u);
}

TEST(SeriesPackTest, MeanSocDropsUnderDischarge) {
  PackConfig config;
  config.num_cells = 5;
  SeriesPack pack(config);
  pack.ResetState(0.9);
  double before = pack.MeanSoc();
  for (int t = 0; t < 600; ++t) pack.Step(10.0, 1.0);
  EXPECT_LT(pack.MeanSoc(), before - 0.05);
}

TEST(SeriesPackTest, NeighborCouplingReducesTemperatureSpread) {
  PackConfig coupled;
  coupled.num_cells = 6;
  coupled.neighbor_coupling_w_per_k = 1.0;
  PackConfig isolated = coupled;
  isolated.neighbor_coupling_w_per_k = 0.0;
  SeriesPack a(coupled), b(isolated);
  a.ResetState(0.9);
  b.ResetState(0.9);
  // Heat one end cell strongly, then let the string equalize at rest.
  a.AgeCell(0, 0.6);  // aged cell heats more under the same current
  b.AgeCell(0, 0.6);
  for (int t = 0; t < 300; ++t) {
    a.Step(10.0, 1.0);
    b.Step(10.0, 1.0);
  }
  EXPECT_LT(a.TemperatureSpread(), b.TemperatureSpread());
  EXPECT_GT(b.TemperatureSpread(), 0.01);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, AccuracyCountsArgmaxMatches) {
  Tensor logits(Shape{3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  Tensor labels(Shape{3}, {0.0f, 1.0f, 1.0f});
  EXPECT_NEAR(Accuracy(logits, labels).ValueOrDie(), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, AccuracyRejectsBadShapes) {
  EXPECT_TRUE(Accuracy(Tensor(Shape{2, 3}), Tensor(Shape{3}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Accuracy(Tensor(Shape{0, 3}), Tensor(Shape{0}))
                  .status()
                  .IsInvalidArgument());
}

TEST(MetricsTest, RmseAndMaeKnownValues) {
  Tensor pred(Shape{4, 1}, {1, 2, 3, 4});
  Tensor target(Shape{4, 1}, {1, 2, 3, 8});
  EXPECT_NEAR(Rmse(pred, target).ValueOrDie(), std::sqrt(16.0 / 4.0), 1e-6);
  EXPECT_NEAR(MeanAbsoluteError(pred, target).ValueOrDie(), 1.0, 1e-6);
  EXPECT_EQ(Rmse(pred, pred).ValueOrDie(), 0.0);
}

TEST(MetricsTest, RmseRejectsShapeMismatch) {
  EXPECT_TRUE(
      Rmse(Tensor(Shape{2}), Tensor(Shape{3})).status().IsInvalidArgument());
}

TEST(MetricsTest, RSquaredBehaviour) {
  Tensor target(Shape{4, 1}, {1, 2, 3, 4});
  EXPECT_NEAR(RSquared(target, target).ValueOrDie(), 1.0, 1e-9);
  Tensor mean_pred = Tensor::Full(Shape{4, 1}, 2.5f);
  EXPECT_NEAR(RSquared(mean_pred, target).ValueOrDie(), 0.0, 1e-6);
  Tensor constant = Tensor::Full(Shape{4, 1}, 1.0f);
  EXPECT_TRUE(RSquared(target, constant).status().IsInvalidArgument());
}

TEST(MetricsTest, ConfusionMatrixCounts) {
  Tensor logits(Shape{4, 3}, {
      1, 0, 0,   // pred 0, actual 0
      0, 1, 0,   // pred 1, actual 1
      1, 0, 0,   // pred 0, actual 2
      0, 0, 1,   // pred 2, actual 2
  });
  Tensor labels(Shape{4}, {0, 1, 2, 2});
  auto matrix = ConfusionMatrix(logits, labels, 3).ValueOrDie();
  EXPECT_EQ(matrix[0][0], 1u);
  EXPECT_EQ(matrix[1][1], 1u);
  EXPECT_EQ(matrix[2][0], 1u);
  EXPECT_EQ(matrix[2][2], 1u);
  EXPECT_EQ(matrix[0][1], 0u);
}

TEST(MetricsTest, ConfusionMatrixValidates) {
  Tensor logits(Shape{1, 3}, {1, 0, 0});
  EXPECT_TRUE(ConfusionMatrix(logits, Tensor(Shape{1}, {5.0f}), 3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ConfusionMatrix(logits, Tensor(Shape{1}, {0.0f}), 4)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace mmm
