#include "core/blob_formats.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mmm {
namespace {

ModelSet SmallSet(size_t count, uint64_t seed = 1) {
  return MakeInitializedSet(Ffnn48Spec(), count, seed).ValueOrDie();
}

TEST(StateDictBlobTest, RoundTrip) {
  ModelSet set = SmallSet(1);
  std::vector<uint8_t> blob = EncodeStateDict(set.models[0]);
  ASSERT_OK_AND_ASSIGN(StateDict decoded, DecodeStateDict(blob));
  ASSERT_EQ(decoded.size(), set.models[0].size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].first, set.models[0][i].first);
    EXPECT_TRUE(decoded[i].second.Equals(set.models[0][i].second));
  }
}

TEST(StateDictBlobTest, DetectsBitFlip) {
  std::vector<uint8_t> blob = EncodeStateDict(SmallSet(1).models[0]);
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_TRUE(DecodeStateDict(blob).status().IsCorruption());
}

TEST(StateDictBlobTest, DetectsTruncation) {
  std::vector<uint8_t> blob = EncodeStateDict(SmallSet(1).models[0]);
  blob.resize(blob.size() - 10);
  EXPECT_TRUE(DecodeStateDict(blob).status().IsCorruption());
}

TEST(StateDictBlobTest, CarriesLayerNameOverheadVsParamBlob) {
  // The per-model format must be strictly larger than its share of the
  // set-level format — this is O1, the redundancy Baseline removes.
  ModelSet set = SmallSet(10);
  size_t per_model = EncodeStateDict(set.models[0]).size();
  size_t set_blob = EncodeParamBlob(set).size();
  EXPECT_GT(per_model * 10, set_blob);
}

TEST(ParamBlobTest, RoundTrip) {
  ModelSet set = SmallSet(5);
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> decoded,
                       DecodeParamBlob(set.spec, blob));
  ASSERT_EQ(decoded.size(), 5u);
  for (size_t m = 0; m < 5; ++m) {
    for (size_t p = 0; p < decoded[m].size(); ++p) {
      EXPECT_EQ(decoded[m][p].first, set.models[m][p].first);
      EXPECT_TRUE(decoded[m][p].second.Equals(set.models[m][p].second));
    }
  }
}

TEST(ParamBlobTest, SizeIsDominatedByRawFloats) {
  ModelSet set = SmallSet(20);
  size_t raw = 20 * 4993 * sizeof(float);
  size_t blob = EncodeParamBlob(set).size();
  EXPECT_GE(blob, raw);
  EXPECT_LT(blob, raw + 64);  // header + crc only
}

TEST(ParamBlobTest, WrongArchitectureFails) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  EXPECT_TRUE(DecodeParamBlob(Ffnn69Spec(), blob).status().IsCorruption());
}

TEST(ParamBlobTest, DetectsBitFlip) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  blob[100] ^= 0x01;
  EXPECT_TRUE(DecodeParamBlob(set.spec, blob).status().IsCorruption());
}

TEST(ParamBlobTest, EmptySetRoundTrips) {
  ModelSet set;
  set.spec = Ffnn48Spec();
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> decoded,
                       DecodeParamBlob(set.spec, blob));
  EXPECT_TRUE(decoded.empty());
}

TEST(HashTableTest, ComputeShape) {
  ModelSet set = SmallSet(3);
  HashTable hashes = ComputeHashTable(set);
  ASSERT_EQ(hashes.size(), 3u);
  EXPECT_EQ(hashes[0].size(), 8u);  // 4 layers x (weight, bias)
}

TEST(HashTableTest, SensitiveToSingleParamChange) {
  ModelSet set = SmallSet(3);
  HashTable before = ComputeHashTable(set);
  set.models[1][2].second.at(0) += 1e-7f;
  HashTable after = ComputeHashTable(set);
  EXPECT_EQ(before[0], after[0]);
  EXPECT_EQ(before[2], after[2]);
  EXPECT_NE(before[1][2], after[1][2]);
  EXPECT_EQ(before[1][3], after[1][3]);
}

TEST(HashTableTest, EncodeDecodeRoundTrip) {
  HashTable hashes = ComputeHashTable(SmallSet(4));
  std::vector<uint8_t> blob = EncodeHashTable(hashes);
  ASSERT_OK_AND_ASSIGN(HashTable decoded, DecodeHashTable(blob));
  EXPECT_EQ(decoded, hashes);
}

TEST(HashTableTest, BlobSizeIs32BytesPerEntryPlusHeader) {
  HashTable hashes = ComputeHashTable(SmallSet(10));
  size_t blob = EncodeHashTable(hashes).size();
  EXPECT_NEAR(static_cast<double>(blob), 10 * 8 * 32, 32);
}

TEST(HashTableTest, DetectsCorruption) {
  std::vector<uint8_t> blob = EncodeHashTable(ComputeHashTable(SmallSet(2)));
  blob[50] ^= 0xff;
  EXPECT_TRUE(DecodeHashTable(blob).status().IsCorruption());
}

TEST(DiffHashTablesTest, FindsExactlyChangedEntries) {
  ModelSet base = SmallSet(5);
  ModelSet current = base;
  current.models[0][0].second.at(3) += 1.0f;
  current.models[4][7].second.at(0) -= 0.5f;
  ASSERT_OK_AND_ASSIGN(
      std::vector<DiffEntry> entries,
      DiffHashTables(ComputeHashTable(base), ComputeHashTable(current)));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].model_index, 0u);
  EXPECT_EQ(entries[0].param_index, 0u);
  EXPECT_EQ(entries[1].model_index, 4u);
  EXPECT_EQ(entries[1].param_index, 7u);
}

TEST(DiffHashTablesTest, IdenticalSetsYieldNoEntries) {
  ModelSet set = SmallSet(3);
  ASSERT_OK_AND_ASSIGN(
      std::vector<DiffEntry> entries,
      DiffHashTables(ComputeHashTable(set), ComputeHashTable(set)));
  EXPECT_TRUE(entries.empty());
}

TEST(DiffHashTablesTest, MismatchedDimensionsFail) {
  HashTable a = ComputeHashTable(SmallSet(2));
  HashTable b = ComputeHashTable(SmallSet(3));
  EXPECT_TRUE(DiffHashTables(a, b).status().IsInvalidArgument());
}

TEST(DiffBlobTest, RoundTrip) {
  ModelSet set = SmallSet(4);
  std::vector<DiffEntry> entries{{1, 0}, {1, 1}, {3, 6}};
  std::vector<uint8_t> blob = EncodeDiffBlob(set, entries);
  ASSERT_OK_AND_ASSIGN(DecodedDiff diff, DecodeDiffBlob(set.spec, blob));
  ASSERT_EQ(diff.entries.size(), 3u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(diff.entries[i].model_index, entries[i].model_index);
    EXPECT_EQ(diff.entries[i].param_index, entries[i].param_index);
    EXPECT_TRUE(diff.tensors[i].Equals(
        set.models[entries[i].model_index][entries[i].param_index].second));
  }
}

TEST(DiffBlobTest, EmptyDiffRoundTrips) {
  ModelSet set = SmallSet(1);
  std::vector<uint8_t> blob = EncodeDiffBlob(set, {});
  ASSERT_OK_AND_ASSIGN(DecodedDiff diff, DecodeDiffBlob(set.spec, blob));
  EXPECT_TRUE(diff.entries.empty());
  EXPECT_LT(blob.size(), 32u);
}

TEST(DiffBlobTest, SizeTracksChangedParamsOnly) {
  ModelSet set = SmallSet(100);
  // One fc4 weight tensor (48 floats) + bias (1 float).
  std::vector<DiffEntry> entries{{7, 6}, {7, 7}};
  size_t blob = EncodeDiffBlob(set, entries).size();
  EXPECT_LT(blob, 49 * 4 + 64);
}

TEST(DiffBlobTest, OutOfRangeParamIndexFails) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> blob = EncodeDiffBlob(set, {{0, 0}});
  // Decode with a spec that has fewer parameter tensors.
  ArchitectureSpec tiny;
  tiny.family = "tiny";
  tiny.input_shape = {4};
  tiny.layers = {};
  EXPECT_TRUE(DecodeDiffBlob(tiny, blob).status().IsCorruption());
}

TEST(DiffBlobTest, DetectsCorruption) {
  ModelSet set = SmallSet(2);
  std::vector<uint8_t> blob = EncodeDiffBlob(set, {{0, 0}});
  blob[20] ^= 0x10;
  EXPECT_TRUE(DecodeDiffBlob(set.spec, blob).status().IsCorruption());
}

TEST(ModelSetTest, CheckSetConsistentAcceptsValidSet) {
  EXPECT_OK(CheckSetConsistent(SmallSet(3)));
}

TEST(ModelSetTest, CheckSetConsistentRejectsWrongShape) {
  ModelSet set = SmallSet(2);
  set.models[1][0].second = Tensor(Shape{1});
  EXPECT_TRUE(CheckSetConsistent(set).IsInvalidArgument());
}

TEST(ModelSetTest, CheckSetConsistentRejectsWrongKey) {
  ModelSet set = SmallSet(2);
  set.models[0][0].first = "renamed";
  EXPECT_TRUE(CheckSetConsistent(set).IsInvalidArgument());
}

TEST(ModelSetTest, InitializedSetModelsDiffer) {
  ModelSet set = SmallSet(3);
  EXPECT_FALSE(set.models[0][0].second.Equals(set.models[1][0].second));
  EXPECT_FALSE(set.models[1][0].second.Equals(set.models[2][0].second));
}

TEST(ModelSetTest, InitializedSetIsSeedDeterministic) {
  ModelSet a = SmallSet(3, 9);
  ModelSet b = SmallSet(3, 9);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_TRUE(a.models[m][0].second.Equals(b.models[m][0].second));
  }
}

}  // namespace
}  // namespace mmm
