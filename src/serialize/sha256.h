#ifndef MMM_SERIALIZE_SHA256_H_
#define MMM_SERIALIZE_SHA256_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mmm {

/// \brief A 256-bit digest.
struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  /// Lowercase hex representation (64 characters).
  std::string ToHex() const;

  bool operator==(const Sha256Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Sha256Digest& other) const { return !(*this == other); }
};

/// \brief Incremental SHA-256 (FIPS 180-4).
///
/// The Update approach hashes every layer's parameter bytes to detect which
/// layers changed between model-set versions without loading the previous
/// set's parameters.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  void Update(std::span<const uint8_t> data);
  void Update(std::string_view data);

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Sha256Digest Finish();

  /// One-shot helpers.
  static Sha256Digest Hash(std::span<const uint8_t> data);
  static Sha256Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffer_size_ = 0;
};

}  // namespace mmm

#endif  // MMM_SERIALIZE_SHA256_H_
