#include "storage/store_batch.h"

#include <algorithm>

#include "serialize/crc32.h"

namespace mmm {

StoreBatch::StoreBatch(FileStore* file_store, DocumentStore* doc_store,
                       Executor* executor, StorePipelineOptions options,
                       CommitJournal* journal, CasWriter* cas)
    : file_store_(file_store),
      doc_store_(doc_store),
      executor_(executor),
      options_(options),
      journal_(journal),
      cas_(cas) {}

void StoreBatch::PutBlob(std::string name, std::vector<uint8_t> data) {
  ops_.push_back(StagedOp{OpKind::kBlobWrite, std::move(name), std::move(data),
                          nullptr, JsonValue()});
}

void StoreBatch::PutBlobString(std::string name, std::string_view data) {
  PutBlob(std::move(name),
          std::vector<uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                               reinterpret_cast<const uint8_t*>(data.data()) +
                                   data.size()));
}

void StoreBatch::PutBlobDeferred(std::string name, BlobProducer producer) {
  ops_.push_back(StagedOp{OpKind::kBlobWrite, std::move(name), {},
                          std::move(producer), JsonValue()});
}

void StoreBatch::InsertDocument(std::string collection, JsonValue doc) {
  ops_.push_back(StagedOp{OpKind::kDocInsert, std::move(collection), {},
                          nullptr, std::move(doc)});
}

void StoreBatch::ReplaceDocument(std::string collection, JsonValue doc) {
  ops_.push_back(StagedOp{OpKind::kDocReplace, std::move(collection), {},
                          nullptr, std::move(doc)});
}

void StoreBatch::DeleteBlob(std::string name) {
  ops_.push_back(
      StagedOp{OpKind::kBlobDelete, std::move(name), {}, nullptr, JsonValue()});
}

Status StoreBatch::ApplyDocOp(const StagedOp& op) {
  if (op.kind == OpKind::kDocReplace) {
    MMM_ASSIGN_OR_RETURN(std::string id, op.doc.GetString("_id"));
    if (doc_store_->Get(op.name, id).ok()) {
      MMM_RETURN_NOT_OK(doc_store_->Remove(op.name, id));
    }
  }
  return doc_store_->Insert(op.name, op.doc);
}

void StoreBatch::AnnotateCommit(std::string set_id, std::string approach) {
  set_id_ = std::move(set_id);
  approach_ = std::move(approach);
}

Status StoreBatch::Commit() {
  const size_t lanes = executor_ != nullptr ? executor_->lanes() : 1;
  std::unique_ptr<CasWriteSession> cas_session;
  if (cas_ != nullptr) {
    Status transformed = ApplyCasTransform(&cas_session);
    if (!transformed.ok()) {
      if (cas_session != nullptr) cas_session->Aborted();
      ops_.clear();
      return transformed;
    }
  }
  Status status;
  if (journal_ != nullptr) {
    status = CommitJournaled(lanes);
  } else {
    status = lanes > 1 ? CommitParallel() : CommitSerial();
  }
  if (cas_session != nullptr) {
    if (status.ok()) {
      // The commit is durable: fold the refcount deltas in, sweep chunks
      // the retirements zeroed, persist the index checkpoint.
      status = cas_session->Applied();
    } else {
      cas_session->Aborted();
    }
  }
  ops_.clear();
  return status;
}

Status StoreBatch::ApplyCasTransform(
    std::unique_ptr<CasWriteSession>* session) {
  *session = cas_->BeginSession();
  std::vector<StagedOp> transformed;
  transformed.reserve(ops_.size());
  for (StagedOp& op : ops_) {
    if (op.kind == OpKind::kBlobWrite) {
      // Producers run inline here: the chunker needs the payload bytes
      // before the lanes start. Chunk writes (below) still fan out across
      // lanes, so the store ops themselves stay overlapped.
      if (op.producer != nullptr) {
        MMM_ASSIGN_OR_RETURN(op.data, op.producer());
        op.producer = nullptr;
      }
      std::vector<CasWriteSession::ChunkWrite> chunks;
      MMM_RETURN_NOT_OK(
          (*session)->TransformWrite(op.name, &op.data, &chunks));
      for (CasWriteSession::ChunkWrite& chunk : chunks) {
        StagedOp chunk_op{OpKind::kBlobWrite, std::move(chunk.name),
                          std::move(chunk.data), nullptr, JsonValue()};
        chunk_op.cas_chunk = true;
        transformed.push_back(std::move(chunk_op));
      }
    } else if (op.kind == OpKind::kBlobDelete) {
      MMM_RETURN_NOT_OK((*session)->TrackDelete(op.name));
    }
    transformed.push_back(std::move(op));
  }
  ops_ = std::move(transformed);
  return Status::OK();
}

Status StoreBatch::CommitSerial() {
  // One lane: ops run inline in staging order through the stores' plain
  // entry points, which charge the simulated clock per op — the serial sum,
  // i.e. the paper's original cost model, bit-exactly.
  for (StagedOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kBlobWrite: {
        if (op.producer != nullptr) {
          MMM_ASSIGN_OR_RETURN(op.data, op.producer());
        }
        MMM_RETURN_NOT_OK(file_store_->Put(op.name, op.data));
        break;
      }
      case OpKind::kDocInsert:
      case OpKind::kDocReplace:
        MMM_RETURN_NOT_OK(ApplyDocOp(op));
        break;
      case OpKind::kBlobDelete:
        MMM_RETURN_NOT_OK(file_store_->Delete(op.name));
        break;
    }
  }
  return Status::OK();
}

Status StoreBatch::CommitParallel() {
  const size_t lanes = executor_->lanes();

  // File ops in staging order; each is one parallel work item.
  std::vector<size_t> blob_ops;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kBlobWrite) blob_ops.push_back(i);
  }

  std::vector<Status> statuses(blob_ops.size());
  std::vector<uint64_t> costs(blob_ops.size(), 0);
  std::vector<StoreStats> deltas(blob_ops.size());
  WriteOrderGroup group(blob_ops.size());
  executor_->ParallelFor(blob_ops.size(), [&](size_t i) {
    StagedOp& op = ops_[blob_ops[i]];
    if (op.producer != nullptr) {
      Result<std::vector<uint8_t>> produced = op.producer();
      if (!produced.ok()) {
        statuses[i] = std::move(produced).status();
        return;
      }
      op.data = std::move(produced).ValueOrDie();
    }
    // Tagged so fault-injection numbers this write by its staging index
    // even though lanes race (see WriteOrderGroup in storage/env.h).
    ScopedWriteOrderTag tag(&group, i);
    statuses[i] =
        file_store_->PutDetached(op.name, op.data, &deltas[i], &costs[i]);
  });

  // Merge the per-op counters once and charge the overlapped latency:
  // max across lanes plus the per-op dispatch cost.
  StoreStats merged;
  std::vector<uint64_t> lane_nanos(lanes, 0);
  for (size_t i = 0; i < blob_ops.size(); ++i) {
    merged = merged + deltas[i];
    lane_nanos[i % lanes] += costs[i];
  }
  uint64_t charge =
      *std::max_element(lane_nanos.begin(), lane_nanos.end()) +
      options_.dispatch_nanos_per_op * static_cast<uint64_t>(blob_ops.size());
  file_store_->MergeBatch(merged, charge);

  // First failure in staging order aborts the batch before the document
  // phase.
  for (const Status& status : statuses) {
    MMM_RETURN_NOT_OK(status);
  }

  // Document inserts model a single serialized metadata-store connection.
  for (StagedOp& op : ops_) {
    if (op.kind != OpKind::kDocInsert && op.kind != OpKind::kDocReplace) {
      continue;
    }
    MMM_RETURN_NOT_OK(ApplyDocOp(op));
  }
  // Blob retirements run last so a failure above leaves them untouched.
  for (StagedOp& op : ops_) {
    if (op.kind != OpKind::kBlobDelete) continue;
    MMM_RETURN_NOT_OK(file_store_->Delete(op.name));
  }
  return Status::OK();
}

Status StoreBatch::WriteBlobs(const std::vector<size_t>& blob_ops,
                              size_t lanes) {
  if (lanes <= 1) {
    // Serial writes arrive in staging order, so no tagging is needed for
    // the fault-injection numbering to match the parallel path's.
    for (size_t index : blob_ops) {
      StagedOp& op = ops_[index];
      MMM_RETURN_NOT_OK(file_store_->Put(op.name, op.data));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(blob_ops.size());
  std::vector<uint64_t> costs(blob_ops.size(), 0);
  std::vector<StoreStats> deltas(blob_ops.size());
  WriteOrderGroup group(blob_ops.size());
  executor_->ParallelFor(blob_ops.size(), [&](size_t i) {
    StagedOp& op = ops_[blob_ops[i]];
    ScopedWriteOrderTag tag(&group, i);
    statuses[i] =
        file_store_->PutDetached(op.name, op.data, &deltas[i], &costs[i]);
  });

  StoreStats merged;
  std::vector<uint64_t> lane_nanos(lanes, 0);
  for (size_t i = 0; i < blob_ops.size(); ++i) {
    merged = merged + deltas[i];
    lane_nanos[i % lanes] += costs[i];
  }
  uint64_t charge =
      *std::max_element(lane_nanos.begin(), lane_nanos.end()) +
      options_.dispatch_nanos_per_op * static_cast<uint64_t>(blob_ops.size());
  file_store_->MergeBatch(merged, charge);

  for (const Status& status : statuses) {
    MMM_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

Status StoreBatch::CommitJournaled(size_t lanes) {
  // Phase 1 — produce every blob payload up front. A failed encode aborts
  // before anything (journal included) is touched, and the begin record can
  // declare the exact CRC of every payload about to be written.
  std::vector<size_t> blob_ops;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kBlobWrite) blob_ops.push_back(i);
  }
  std::vector<Status> produced(blob_ops.size());
  auto produce = [&](size_t i) {
    StagedOp& op = ops_[blob_ops[i]];
    if (op.producer == nullptr) return;
    Result<std::vector<uint8_t>> result = op.producer();
    if (!result.ok()) {
      produced[i] = std::move(result).status();
      return;
    }
    op.data = std::move(result).ValueOrDie();
    op.producer = nullptr;
  };
  if (lanes > 1) {
    executor_->ParallelFor(blob_ops.size(), produce);
  } else {
    for (size_t i = 0; i < blob_ops.size(); ++i) produce(i);
  }
  for (const Status& status : produced) {
    MMM_RETURN_NOT_OK(status);
  }

  // Phase 2 — declare every intended side effect before causing any.
  std::vector<CommitJournal::BlobIntent> blob_intents;
  blob_intents.reserve(blob_ops.size());
  for (size_t index : blob_ops) {
    blob_intents.push_back({ops_[index].name, Crc32::Compute(ops_[index].data),
                            ops_[index].cas_chunk});
  }
  std::vector<CommitJournal::DocIntent> doc_intents;
  std::vector<std::string> delete_intents;
  for (const StagedOp& op : ops_) {
    if (op.kind == OpKind::kDocInsert) {
      doc_intents.push_back({op.name, op.doc, /*replace=*/false});
    } else if (op.kind == OpKind::kDocReplace) {
      doc_intents.push_back({op.name, op.doc, /*replace=*/true});
    } else if (op.kind == OpKind::kBlobDelete) {
      delete_intents.push_back(op.name);
    }
  }
  MMM_ASSIGN_OR_RETURN(uint64_t txn,
                       journal_->Begin(set_id_, approach_,
                                       std::move(blob_intents),
                                       std::move(doc_intents),
                                       std::move(delete_intents)));

  // Phase 3 — blob writes. On failure the entry stays uncommitted and the
  // next open rolls back whatever landed; no in-process cleanup, so a crash
  // anywhere in here exercises exactly the recovery path.
  MMM_RETURN_NOT_OK(WriteBlobs(blob_ops, lanes));

  // Phase 4 — the atomicity point: from here on, recovery rolls forward.
  MMM_RETURN_NOT_OK(journal_->MarkCommitted(txn));

  // Phase 5 — document inserts and replaces, serial in staging order (one
  // metadata-store connection). Idempotently completed by replay if
  // interrupted (replaces upsert; see journal.h).
  for (StagedOp& op : ops_) {
    if (op.kind != OpKind::kDocInsert && op.kind != OpKind::kDocReplace) {
      continue;
    }
    MMM_RETURN_NOT_OK(ApplyDocOp(op));
  }

  // Phase 5b — retire superseded blobs, now that no live document references
  // them. Replay re-issues these after the commit mark, so a crash anywhere
  // in here still converges to all deletes applied.
  for (StagedOp& op : ops_) {
    if (op.kind != OpKind::kBlobDelete) continue;
    MMM_RETURN_NOT_OK(file_store_->Delete(op.name));
  }

  // Phase 6 — retire the entry. If this last append fails the save reports
  // an error, but the store already holds the full commit (replay verifies
  // and re-finishes it) — the "acknowledgement lost" outcome.
  return journal_->MarkFinished(txn);
}

}  // namespace mmm
