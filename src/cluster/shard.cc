#include "cluster/shard.h"

#include <utility>

namespace mmm {

Result<std::unique_ptr<Shard>> Shard::Open(std::string name, Options options) {
  if (name.empty()) return Status::InvalidArgument("shard name is empty");
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("shard root_dir is empty");
  }
  auto shard = std::unique_ptr<Shard>(new Shard());
  shard->name_ = std::move(name);
  shard->root_dir_ = options.root_dir;
  shard->ids_ = std::make_unique<PreassignedIds>(options.fallback_id_seed);

  ModelSetManager::Options manager_options = options.manager;
  manager_options.root_dir = options.root_dir;
  manager_options.ids = shard->ids_.get();
  MMM_ASSIGN_OR_RETURN(shard->manager_,
                       ModelSetManager::Open(std::move(manager_options)));
  shard->service_ = std::make_unique<ModelSetService>(shard->manager_.get(),
                                                      options.service);
  return shard;
}

Result<SaveResult> Shard::SaveInitial(ApproachType type, const ModelSet& set) {
  MutexLock lock(save_mu_);
  MMM_ASSIGN_OR_RETURN(SaveResult result, manager_->SaveInitial(type, set));
  ++saves_;
  return result;
}

Result<SaveResult> Shard::SaveDerived(ApproachType type, const ModelSet& set,
                                      const ModelSetUpdateInfo& update) {
  MutexLock lock(save_mu_);
  MMM_ASSIGN_OR_RETURN(SaveResult result,
                       manager_->SaveDerived(type, set, update));
  ++saves_;
  return result;
}

uint64_t Shard::saves() const {
  MutexLock lock(save_mu_);
  return saves_;
}

}  // namespace mmm
