# Empty dependencies file for mmm_serialize.
# This may be replaced when dependencies are built.
