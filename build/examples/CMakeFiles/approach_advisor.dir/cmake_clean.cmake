file(REMOVE_RECURSE
  "CMakeFiles/approach_advisor.dir/approach_advisor.cpp.o"
  "CMakeFiles/approach_advisor.dir/approach_advisor.cpp.o.d"
  "approach_advisor"
  "approach_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approach_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
