file(REMOVE_RECURSE
  "CMakeFiles/tab_update_rate_sweep.dir/tab_update_rate_sweep.cpp.o"
  "CMakeFiles/tab_update_rate_sweep.dir/tab_update_rate_sweep.cpp.o.d"
  "tab_update_rate_sweep"
  "tab_update_rate_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_update_rate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
