#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "core/inspect.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

class AdaptiveTest : public ::testing::Test {
 protected:
  AdaptiveTest() : temp_("adaptive") {
    ScenarioConfig config = ScenarioConfig::Battery(30);
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(AdaptiveTest, ArchivalWorkloadSticksWithProvenance) {
  AdaptivePolicyOptions options;  // default profile = storage-first archive
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();
  for (int cycle = 0; cycle < 3; ++cycle) {
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
    EXPECT_EQ(adaptive.current_choice(), ApproachType::kProvenance);
  }
  // Everything stays recoverable.
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, adaptive.Recover(adaptive.head()));
  EXPECT_EQ(recovered.models.size(), 30u);
}

TEST_F(AdaptiveTest, HeavyRecoveryTrafficMovesAwayFromProvenance) {
  AdaptivePolicyOptions options;
  options.profile.recover_time_weight = 2.0;
  options.profile.retrain_seconds_per_model = 600.0;
  options.smoothing = 0.8;  // adapt quickly in this short test
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();

  for (int cycle = 0; cycle < 3; ++cycle) {
    // The set is recovered many times per save: TTR starts to dominate.
    for (int r = 0; r < 5; ++r) {
      adaptive.Recover(adaptive.head()).status().Check();
    }
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
  }
  EXPECT_NE(adaptive.current_choice(), ApproachType::kProvenance);
  EXPECT_GT(adaptive.profile().recoveries_per_save, 1.0);
}

TEST_F(AdaptiveTest, SwitchingApproachesKeepsEverySetRecoverable) {
  AdaptivePolicyOptions options;
  options.smoothing = 1.0;  // follow the latest observation exactly
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();

  std::vector<std::string> ids{adaptive.head()};
  std::vector<ModelSet> states;
  states.push_back(scenario_->current_set());

  for (int cycle = 0; cycle < 4; ++cycle) {
    // Alternate the recovery pressure to force approach switches.
    if (cycle % 2 == 1) {
      for (int r = 0; r < 8; ++r) adaptive.Recover(ids.back()).status().Check();
      options.profile.recover_time_weight = 3.0;
    }
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
    ids.push_back(adaptive.head());
    states.push_back(scenario_->current_set());
  }

  // Every historical version recovers bit-exactly regardless of which
  // approach archived it.
  for (size_t v = 0; v < ids.size(); ++v) {
    ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(ids[v]));
    ASSERT_EQ(recovered.models.size(), states[v].models.size());
    for (size_t m = 0; m < recovered.models.size(); ++m) {
      for (size_t p = 0; p < recovered.models[m].size(); ++p) {
        ASSERT_TRUE(recovered.models[m][p].second.Equals(
            states[v].models[m][p].second))
            << "version " << v << " model " << m;
      }
    }
  }
}

TEST_F(AdaptiveTest, ObservedUpdateRateTracksWorkload) {
  AdaptivePolicyOptions options;
  options.profile.update_rate = 0.5;  // wrong prior
  options.smoothing = 0.5;
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();
  for (int cycle = 0; cycle < 4; ++cycle) {
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
  }
  // The scenario updates ~13% of 30 models (2 full + 2 partial); the
  // estimate must have moved well below the 0.5 prior.
  EXPECT_LT(adaptive.profile().update_rate, 0.2);
  EXPECT_GT(adaptive.profile().update_rate, 0.05);
  // Partial updates retrain fc3+fc4 (~48% of FFNN-48's parameters), so the
  // blended fraction sits between that and 1.0.
  EXPECT_LT(adaptive.profile().updated_param_fraction, 1.0);
  EXPECT_GT(adaptive.profile().updated_param_fraction, 0.4);
}

// Regression for the chain-length estimator: it used to be an EWMA of a
// fabricated `saves_ % 16` signal, unrelated to any real chain. The profile
// must now report exactly the head's true chain depth — the number of hops
// InspectChain counts by walking the store — after every save, across
// approach switches (fresh chains restart at zero), and after the compactor
// rebases the head.
TEST_F(AdaptiveTest, ExpectedChainLengthMatchesInspectedDepthExactly) {
  AdaptivePolicyOptions options;
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();

  auto expect_truthful = [&](const std::string& when) {
    ASSERT_OK_AND_ASSIGN(ChainInspection chain,
                         InspectChain(manager_->context(), adaptive.head()));
    EXPECT_EQ(adaptive.profile().expected_chain_length,
              static_cast<double>(chain.depth))
        << when << ": head " << adaptive.head();
    EXPECT_TRUE(chain.depth_matches()) << when;
  };
  expect_truthful("after initial save");

  // Grow a chain under the default archival profile (provenance sticks, so
  // the depth climbs 1, 2, 3, ...).
  for (int cycle = 0; cycle < 3; ++cycle) {
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
    expect_truthful("after derived save " + std::to_string(cycle));
  }
  EXPECT_EQ(adaptive.profile().expected_chain_length, 3.0);

  // Force an approach switch: the fresh chain starts with a full snapshot
  // and the estimate must drop back to zero, not keep the stale depth.
  options.profile.recover_time_weight = 3.0;
  options.profile.retrain_seconds_per_model = 3600.0;
  options.smoothing = 1.0;
  AdaptiveModelSetManager switched(manager_.get(), options);
  switched.SaveInitial(scenario_->current_set()).status().Check();
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int r = 0; r < 6; ++r) {
      switched.Recover(switched.head()).status().Check();
    }
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(switched.SaveDerived(scenario_->current_set(), update).status());
    ASSERT_OK_AND_ASSIGN(ChainInspection chain,
                         InspectChain(manager_->context(), switched.head()));
    EXPECT_EQ(switched.profile().expected_chain_length,
              static_cast<double>(chain.depth))
        << "switched cycle " << cycle;
  }
}

TEST_F(AdaptiveTest, ObserveCompactionRefreshesDepthAfterHeadRebase) {
  AdaptivePolicyOptions options;
  AdaptiveModelSetManager adaptive(manager_.get(), options);
  adaptive.SaveInitial(scenario_->current_set()).status().Check();
  for (int cycle = 0; cycle < 5; ++cycle) {
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
  }
  ASSERT_EQ(adaptive.profile().expected_chain_length, 5.0);

  // Compact so the head itself is rebased (depths 0..5, bound 2 puts the
  // rebase point at depth 3; the head lands at distance 2 from it — and a
  // second pass with bound 4 rebases the head directly).
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  adaptive.ObserveCompaction(report);
  ASSERT_OK_AND_ASSIGN(ChainInspection chain,
                       InspectChain(manager_->context(), adaptive.head()));
  EXPECT_EQ(chain.depth, 2u);
  EXPECT_EQ(adaptive.profile().expected_chain_length, 2.0);

  // A report that did not touch the head leaves the estimate alone.
  CompactionReport unrelated;
  unrelated.rewritten_set_ids = {"someone-else"};
  adaptive.ObserveCompaction(unrelated);
  EXPECT_EQ(adaptive.profile().expected_chain_length, 2.0);

  // The estimate keeps tracking ground truth on the compacted store.
  ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
  ASSERT_OK(adaptive.SaveDerived(scenario_->current_set(), update).status());
  ASSERT_OK_AND_ASSIGN(ChainInspection after,
                       InspectChain(manager_->context(), adaptive.head()));
  EXPECT_EQ(adaptive.profile().expected_chain_length,
            static_cast<double>(after.depth));
}

}  // namespace
}  // namespace mmm
