// Ablation (design choice from §3.3): granularity of change detection.
//
// The paper "compares related models on a layer granularity". Coarser
// detection (whole model) stores more unchanged bytes but keeps a smaller
// hash table; finer detection stores less. This bench measures, on one real
// update cycle, the delta-payload and hash-table sizes plus hashing time at
// three granularities:
//   per-model  : 1 hash per model, any change re-saves the whole model
//   per-layer  : 1 hash per layer (weight+bias pooled)
//   per-tensor : 1 hash per parameter tensor (the implementation's choice)
//
// Knobs: MMM_MODELS (default 2000), MMM_SAMPLES (128).

#include "bench/bench_util.h"
#include "core/blob_formats.h"
#include "serialize/sha256.h"
#include "workload/scenario.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

// Groups consecutive parameter tensors into per-layer or per-model units
// and returns {changed_payload_bytes, hash_table_bytes, hash_seconds}.
struct GranularityResult {
  uint64_t payload_bytes = 0;
  uint64_t hash_bytes = 0;
  double hash_seconds = 0.0;
};

GranularityResult Measure(const ModelSet& before, const ModelSet& after,
                          size_t tensors_per_unit) {
  GranularityResult result;
  const size_t units_per_model =
      (before.models[0].size() + tensors_per_unit - 1) / tensors_per_unit;
  result.hash_bytes = before.models.size() * units_per_model * 32;

  StopWatch watch;
  // Hash both versions at the chosen granularity and compare.
  auto hash_units = [&](const ModelSet& set) {
    std::vector<Sha256Digest> digests;
    digests.reserve(set.models.size() * units_per_model);
    for (const StateDict& model : set.models) {
      for (size_t unit = 0; unit < model.size(); unit += tensors_per_unit) {
        Sha256 hasher;
        for (size_t t = unit; t < std::min(unit + tensors_per_unit, model.size());
             ++t) {
          const Tensor& tensor = model[t].second;
          hasher.Update(std::span<const uint8_t>(
              reinterpret_cast<const uint8_t*>(tensor.data().data()),
              tensor.numel() * sizeof(float)));
        }
        digests.push_back(hasher.Finish());
      }
    }
    return digests;
  };
  std::vector<Sha256Digest> base = hash_units(before);
  std::vector<Sha256Digest> current = hash_units(after);
  result.hash_seconds = watch.ElapsedSeconds();

  size_t digest_index = 0;
  for (size_t m = 0; m < after.models.size(); ++m) {
    for (size_t unit = 0; unit < after.models[m].size();
         unit += tensors_per_unit) {
      if (base[digest_index] != current[digest_index]) {
        for (size_t t = unit;
             t < std::min(unit + tensors_per_unit, after.models[m].size());
             ++t) {
          result.payload_bytes +=
              after.models[m][t].second.numel() * sizeof(float);
        }
      }
      ++digest_index;
    }
  }
  return result;
}

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/2000,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 128));
  knobs.Describe("tab_ablation_hash_granularity");

  ScenarioConfig config = ScenarioConfig::Battery(knobs.models);
  config.samples_per_dataset = knobs.samples;
  MultiModelScenario scenario(config);
  scenario.Init().Check();
  ModelSet before = scenario.current_set();
  scenario.AdvanceCycle().status().Check();
  const ModelSet& after = scenario.current_set();

  struct Row {
    const char* label;
    size_t tensors_per_unit;
  };
  // FFNN-48 has 8 parameter tensors: 2 per layer, 8 per model.
  const Row rows[] = {{"per-model", 8}, {"per-layer", 2}, {"per-tensor", 1}};

  std::printf(
      "\nChange-detection granularity, %zu models, one 10%% update cycle:\n",
      knobs.models);
  std::printf("%-11s | %12s | %12s | %12s | %10s\n", "granularity",
              "delta MB", "hashes MB", "total MB", "hash time");
  for (const Row& row : rows) {
    GranularityResult r = Measure(before, after, row.tensors_per_unit);
    std::printf("%-11s | %12.2f | %12.3f | %12.2f | %8.3fs\n", row.label,
                static_cast<double>(r.payload_bytes) / 1e6,
                static_cast<double>(r.hash_bytes) / 1e6,
                static_cast<double>(r.payload_bytes + r.hash_bytes) / 1e6,
                r.hash_seconds);
  }
  std::printf(
      "\n(Expected: per-model granularity inflates the delta by re-saving "
      "unchanged\n layers of partially updated models; finer granularity "
      "pays a linearly\n larger hash table — negligible next to the saved "
      "payload at these sizes.)\n");
  return 0;
}
