// The same three shapes with the Status checked or propagated on every
// path: the analysis must stay silent.

Status Load();
Status Persist();

Status CheckedEarlyReturn(bool flaky) {
  Status st = Load();
  if (flaky) {
    if (!st.ok()) return st;
    return Persist();
  }
  return st;
}

Status CheckedBeforeOverwrite() {
  Status st = Load();
  if (!st.ok()) return st;
  st = Persist();
  return st;
}

Status PropagatedAtScopeExit() {
  Status st = Persist();
  return st;
}
