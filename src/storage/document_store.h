#ifndef MMM_STORAGE_DOCUMENT_STORE_H_
#define MMM_STORAGE_DOCUMENT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "serialize/json.h"
#include "storage/env.h"
#include "storage/latency_model.h"
#include "storage/store_stats.h"

namespace mmm {

/// \brief Embedded persistent JSON document store (the "metadata store").
///
/// Plays the role MongoDB plays in MMlib's architecture: approaches insert
/// per-model or per-set metadata documents into named collections and query
/// them back by id or by field equality. Documents are persisted through an
/// append-only JSON-lines write-ahead log and re-loaded on Open(), so a store
/// instance can be closed and reopened without losing data.
///
/// Every Insert/Get/Find charges the configured latency model once — this is
/// what makes MMlib-base's "one insert per model" pattern visibly expensive,
/// exactly as in the paper's evaluation.
class DocumentStore {
 public:
  DocumentStore(Env* env, std::string wal_path, StoreLatencyModel latency = {},
                SimulatedClock* sim_clock = nullptr);

  /// Loads any existing WAL.
  Status Open();

  /// Inserts a document. `doc` must be an object with a string "_id" member
  /// that is unique within the collection.
  Status Insert(const std::string& collection, const JsonValue& doc);

  /// Removes a document by id. Durable via a tombstone record in the WAL
  /// (the log stays append-only). NotFound if absent.
  Status Remove(const std::string& collection, const std::string& id);

  /// Rewrites the WAL from the live state, dropping tombstones and the
  /// records they shadow. Long-running stores call this periodically to
  /// bound log growth after deletions.
  Status Compact();

  /// Current size of the WAL file in bytes (0 if it does not exist yet).
  Result<uint64_t> WalBytes() const;

  /// Fetches a document by id.
  Result<JsonValue> Get(const std::string& collection, const std::string& id) const;

  /// Returns all documents whose `field` member equals `value` (string
  /// comparison), in insertion order.
  Result<std::vector<JsonValue>> Find(const std::string& collection,
                                      const std::string& field,
                                      const JsonValue& value) const;

  /// Returns all documents of a collection in insertion order.
  Result<std::vector<JsonValue>> All(const std::string& collection) const;

  /// Number of documents in a collection (0 if the collection is unknown).
  size_t Count(const std::string& collection) const;

  /// Snapshot of the operation counters. Accounting is atomic, so the
  /// snapshot is race-free even while other threads query the store.
  StoreStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Names of all collections, sorted.
  std::vector<std::string> Collections() const;

 private:
  void Charge(uint64_t bytes) const;
  void RemoveAt(const std::string& collection, size_t position);

  Env* env_;
  std::string wal_path_;
  StoreLatencyModel latency_;
  SimulatedClock* sim_clock_;
  mutable AtomicStoreStats stats_;
  // collection -> ordered documents; ids index into the vector.
  std::map<std::string, std::vector<JsonValue>> collections_;
  std::map<std::string, std::map<std::string, size_t>> id_index_;
};

}  // namespace mmm

#endif  // MMM_STORAGE_DOCUMENT_STORE_H_
