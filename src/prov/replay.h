#ifndef MMM_PROV_REPLAY_H_
#define MMM_PROV_REPLAY_H_

#include "data/dataset_ref.h"
#include "nn/model.h"
#include "prov/pipeline.h"

namespace mmm {

/// \brief Deterministically re-executes training pipelines from provenance.
///
/// The Provenance approach recovers a model by "deterministically repeating
/// its training on the associated dataset" (paper §3.4). ReplayEngine is
/// that recovery path: it resolves the dataset reference (verifying its
/// content hash), validates the pipeline record, and re-runs the exact
/// TrainConfig on the model's current parameters.
class ReplayEngine {
 public:
  /// \param resolver external system that owns the training data
  explicit ReplayEngine(DatasetResolver* resolver) : resolver_(resolver) {}

  /// Replays one model update in place. `model` must hold the parameters it
  /// had *before* the update being replayed (the recursive recovery engine
  /// guarantees this by replaying sets oldest-first).
  ///
  /// \param max_samples optional cap on the replayed dataset size (the
  ///        paper's "reduced data" recovery protocol, §4.4); 0 = use all.
  Status ReplayUpdate(Model* model, const TrainPipelineSpec& pipeline,
                      const DatasetRef& data_ref, size_t max_samples = 0);

  DatasetResolver* resolver() { return resolver_; }

 private:
  DatasetResolver* resolver_;
};

}  // namespace mmm

#endif  // MMM_PROV_REPLAY_H_
