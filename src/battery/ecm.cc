#include "battery/ecm.h"

#include <algorithm>
#include <cmath>

#include "battery/ocv.h"

namespace mmm {

EcmParameters EcmParameters::Perturbed(const EcmParameters& base, Rng* rng,
                                       double relative_spread) {
  auto jitter = [&](double value) {
    return value * (1.0 + rng->NextGaussian(0.0, relative_spread));
  };
  EcmParameters p = base;
  p.capacity_ah = jitter(base.capacity_ah);
  p.r0_ohm = jitter(base.r0_ohm);
  p.r1_ohm = jitter(base.r1_ohm);
  p.c1_farad = jitter(base.c1_farad);
  p.r2_ohm = jitter(base.r2_ohm);
  p.c2_farad = jitter(base.c2_farad);
  return p;
}

EcmCell::EcmCell(EcmParameters parameters, double ambient_temperature_c)
    : parameters_(parameters), ambient_temperature_c_(ambient_temperature_c) {
  state_.temperature_c = ambient_temperature_c;
  state_.terminal_voltage = OcvCurve::Voltage(state_.soc);
}

void EcmCell::ResetState(double soc) {
  double soh = state_.soh;
  state_ = State{};
  state_.soc = std::clamp(soc, 0.0, 1.0);
  state_.soh = soh;
  state_.temperature_c = ambient_temperature_c_;
  state_.terminal_voltage = OcvCurve::Voltage(state_.soc);
}

void EcmCell::SetSoh(double soh) { state_.soh = std::clamp(soh, 0.5, 1.0); }

double EcmCell::EffectiveCapacityAh() const {
  return parameters_.capacity_ah * state_.soh;
}

double EcmCell::EffectiveR0() const {
  // Aging raises resistance; colder cells are more resistive (~0.7%/K below
  // 25 C is a typical first-order fit).
  double aging = 2.0 - state_.soh;
  double thermal = 1.0 + 0.007 * (25.0 - state_.temperature_c);
  return parameters_.r0_ohm * aging * std::max(thermal, 0.5);
}

double EcmCell::Step(double current_a, double dt_seconds) {
  // Coulomb counting.
  double capacity_as = EffectiveCapacityAh() * 3600.0;
  state_.soc =
      std::clamp(state_.soc - current_a * dt_seconds / capacity_as, 0.0, 1.0);

  // RC pairs: exact exponential update for a piecewise-constant current.
  double aging = 2.0 - state_.soh;
  double r1 = parameters_.r1_ohm * aging;
  double r2 = parameters_.r2_ohm * aging;
  double tau1 = r1 * parameters_.c1_farad;
  double tau2 = r2 * parameters_.c2_farad;
  double decay1 = std::exp(-dt_seconds / tau1);
  double decay2 = std::exp(-dt_seconds / tau2);
  state_.v_rc1_volt = state_.v_rc1_volt * decay1 + r1 * current_a * (1.0 - decay1);
  state_.v_rc2_volt = state_.v_rc2_volt * decay2 + r2 * current_a * (1.0 - decay2);

  double r0 = EffectiveR0();
  state_.terminal_voltage = OcvCurve::Voltage(state_.soc) - current_a * r0 -
                            state_.v_rc1_volt - state_.v_rc2_volt;

  // Thermal model: Joule heating in all resistive elements, Newtonian
  // cooling toward ambient.
  double v1 = state_.v_rc1_volt;
  double v2 = state_.v_rc2_volt;
  double heat_w = current_a * current_a * r0 + (r1 > 0 ? v1 * v1 / r1 : 0.0) +
                  (r2 > 0 ? v2 * v2 / r2 : 0.0);
  double cooling_w = (state_.temperature_c - ambient_temperature_c_) /
                     parameters_.thermal_resistance_k_per_w;
  state_.temperature_c +=
      (heat_w - cooling_w) * dt_seconds / parameters_.thermal_mass_j_per_k;

  return state_.terminal_voltage;
}

}  // namespace mmm
