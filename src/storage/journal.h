#ifndef MMM_STORAGE_JOURNAL_H_
#define MMM_STORAGE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serialize/json.h"
#include "storage/document_store.h"
#include "storage/env.h"
#include "storage/file_store.h"

namespace mmm {

/// \brief Outcome of replaying the commit journal at open time.
struct RepairReport {
  /// Unfinished journal entries found (each is a save interrupted mid-commit).
  size_t entries_scanned = 0;
  /// Entries that never reached their commit mark: artifacts rolled back.
  size_t rolled_back = 0;
  /// Committed entries whose document inserts were completed idempotently.
  size_t completed = 0;
  size_t blobs_deleted = 0;
  size_t docs_removed = 0;
  size_t docs_inserted = 0;
  /// Inconsistencies replay could not repair (empty = store healthy).
  std::vector<std::string> problems;

  bool clean() const { return problems.empty(); }
  bool repaired_anything() const { return rolled_back > 0 || completed > 0; }
};

/// \brief Write-ahead intent log that makes StoreBatch commits atomic.
///
/// Every journaled commit appends three records to an append-only JSON-lines
/// log (one object per line, like the document store's WAL):
///
///   {"txn":N,"state":"begin","set_id":...,"approach":...,
///    "blobs":[{"name":...,"crc":...}],"docs":[{"collection":...,"doc":...}],
///    "deletes":[...]}
///   {"txn":N,"state":"commit"}
///   {"txn":N,"state":"finish"}
///
/// The `begin` record declares every side effect of the commit before any of
/// them happens: the blob names with the CRC32 of the exact bytes about to be
/// written, the metadata documents about to be inserted (or, with
/// `"replace":true`, overwritten in place), and the blobs the commit retires
/// once it is durable (`deletes`, written only when non-empty — used by the
/// chain compactor to hand superseded delta blobs to GC atomically with the
/// metadata rewrite). `commit` is the atomicity point — it is appended after
/// all blob writes succeed and before the first document insert. `finish`
/// marks the entry fully applied, including the retirement deletes.
///
/// Replay() turns a crash at any point into rollback-or-commit:
///  - entries without a `commit` mark are rolled back (listed blobs deleted,
///    any listed insert documents defensively removed; replace intents keep
///    their old live document and retirement deletes never run) — the save
///    never happened;
///  - entries with `commit` but no `finish` are completed by idempotently
///    inserting (or upserting, for replace intents) the listed documents,
///    after verifying the listed blobs exist with the recorded CRCs, and by
///    re-issuing the retirement deletes — the save fully happened.
///
/// A torn final line (crash mid-append) is dropped, exactly like the document
/// store's WAL: the record was never acknowledged, so the entry it would have
/// started never began. Journal appends go straight through Env and charge
/// nothing to the stores' statistics or the simulated clock — the journal is
/// infrastructure, not part of the modeled storage cost.
///
/// Thread safety: Begin/MarkCommitted/MarkFinished serialize on an internal
/// mutex (batches commit one at a time, but from any thread). Open/Replay are
/// single-threaded open-time operations.
class CommitJournal {
 public:
  /// One blob the commit is about to write, with the CRC32 of its payload.
  /// `cas_chunk` marks content-addressed chunk blobs (serialized as
  /// `"cas":true`): rollback must NOT delete them, because a chunk written
  /// by this (failed) commit may be shared with a manifest an earlier
  /// commit already made durable — deleting it would corrupt that blob.
  /// A rolled-back chunk nobody references is reclaimed instead by the CAS
  /// open-time orphan sweep, which runs right after Replay()
  /// (see cas/cas_store.h).
  struct BlobIntent {
    std::string name;
    uint32_t crc = 0;
    bool cas_chunk = false;
  };
  /// One document the commit is about to insert. When `replace` is set the
  /// commit overwrites an existing document under the same `_id` (remove +
  /// insert after the commit mark): rollback must then leave the old
  /// document alone — it is still the live version — and roll-forward
  /// upserts the new body idempotently.
  struct DocIntent {
    std::string collection;
    JsonValue doc;
    bool replace = false;
  };

  CommitJournal(Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  /// Loads any existing journal file; unfinished entries become pending and
  /// wait for Replay(). Tolerates a torn trailing record.
  Status Open();

  /// Repairs the stores as described above, then truncates the journal.
  /// Call once after Open(), after the stores themselves are open.
  Result<RepairReport> Replay(FileStore* file_store, DocumentStore* doc_store);

  /// Appends the `begin` record and returns the transaction id. `deletes`
  /// names blobs the commit retires after its documents are durable; they
  /// are executed only on the committed path (in the commit itself or by
  /// roll-forward), never on rollback.
  Result<uint64_t> Begin(const std::string& set_id, const std::string& approach,
                         std::vector<BlobIntent> blobs,
                         std::vector<DocIntent> docs,
                         std::vector<std::string> deletes = {});
  /// Appends the `commit` record: all blob writes are durable.
  Status MarkCommitted(uint64_t txn);
  /// Appends the `finish` record: all document inserts are durable.
  Status MarkFinished(uint64_t txn);

  /// Blob names claimed by unfinished entries. GC must treat these as live:
  /// they belong to an in-flight or crashed commit whose fate the next
  /// Replay() decides.
  std::vector<std::string> PendingBlobs() const;

  /// Number of unfinished entries.
  size_t pending_entries() const;

  const std::string& path() const { return path_; }

 private:
  struct Entry {
    uint64_t txn = 0;
    std::string set_id;
    std::string approach;
    std::vector<BlobIntent> blobs;
    std::vector<DocIntent> docs;
    std::vector<std::string> deletes;
    bool committed = false;
  };

  /// Serializes one record to the log through the Env. Touches no journal
  /// state, but runs under mu_ so records land in txn order.
  Status AppendRecord(const JsonValue& record);
  Entry* FindEntry(uint64_t txn) MMM_REQUIRES(mu_);

  Env* env_;
  std::string path_;
  mutable Mutex mu_ MMM_LOCK_RANK(120);
  uint64_t next_txn_ MMM_GUARDED_BY(mu_) = 1;
  /// Unfinished entries in begin order; finished entries are dropped.
  std::vector<Entry> entries_ MMM_GUARDED_BY(mu_);
};

}  // namespace mmm

#endif  // MMM_STORAGE_JOURNAL_H_
