// Figure 3 (paper §4.2): storage consumption per use case for all four
// approaches, battery scenario, FFNN-48, 5000 models, 10% update rate
// (5% full + 5% partial).
//
// Expected shape (paper): at U1 Baseline/Provenance ~= 99.9 MB, MMlib-base
// ~29% higher, Update slightly above Baseline (hash blob). At U3-x the
// full-snapshot approaches stay flat while Update saves ~86% less than
// Baseline and Provenance ~99.8% less.
//
// Knobs: MMM_MODELS (default 5000), MMM_U3_ITERATIONS (3), MMM_SAMPLES (256).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/5000,
                                         /*default_runs=*/1);
  knobs.Describe("fig3_storage");

  ExperimentConfig config;
  config.scenario = ScenarioConfig::Battery(knobs.models);
  config.scenario.samples_per_dataset = knobs.samples;
  config.u3_iterations = knobs.u3_iterations;
  config.runs = 1;           // storage consumption is constant across runs
  config.measure_ttr = false;
  config.profile = SetupProfile::Server();
  config.work_dir = "/tmp/mmm-bench-fig3";

  ExperimentRunner runner(config);
  auto results = runner.Run().ValueOrDie();

  PrintMetricTable(
      StringFormat("Figure 3: storage consumption per use case in MB "
                   "(FFNN-48, %zu models, 10%% updates)",
                   knobs.models),
      results, [](const ApproachMetrics& m) { return Mb(m.storage_bytes); });

  // The store-write counts behind optimization O3.
  PrintMetricTable(
      "Store writes per save (file store + document store round-trips)",
      results, [](const ApproachMetrics& m) {
        return StringFormat("%llu", static_cast<unsigned long long>(
                                        m.file_store_writes + m.doc_store_writes));
      });

  // Headline ratios the paper reports.
  const auto& u1 = results.front().metrics;
  const auto& u3 = results.back().metrics;
  double mmlib_u1 = static_cast<double>(u1.at(ApproachType::kMMlibBase).storage_bytes);
  double base_u1 = static_cast<double>(u1.at(ApproachType::kBaseline).storage_bytes);
  double base_u3 = static_cast<double>(u3.at(ApproachType::kBaseline).storage_bytes);
  double update_u3 = static_cast<double>(u3.at(ApproachType::kUpdate).storage_bytes);
  double prov_u3 =
      static_cast<double>(u3.at(ApproachType::kProvenance).storage_bytes);
  std::printf(
      "\nHeadline comparisons (paper: -29%%, -86%%, -99.84%%):\n"
      "  Baseline vs MMlib-base at U1 : %+.1f%%\n"
      "  Update vs Baseline at U3     : %+.1f%%\n"
      "  Provenance vs Baseline at U3 : %+.2f%%\n",
      100.0 * (base_u1 - mmlib_u1) / mmlib_u1,
      100.0 * (update_u3 - base_u3) / base_u3,
      100.0 * (prov_u3 - base_u3) / base_u3);

  CleanupWorkDir(knobs, config.work_dir);
  return 0;
}
