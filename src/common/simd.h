#ifndef MMM_COMMON_SIMD_H_
#define MMM_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace mmm {

/// \brief Runtime-dispatched SIMD substrate for the recovery hot loops
/// (DESIGN.md §12).
///
/// Every primitive here is bit-exact with its scalar fallback by
/// construction: all of them are pure byte moves or integer/bitwise
/// operations, so the vectorized variants produce the identical output
/// bytes — no floating-point re-association, no lane-dependent rounding.
/// That is what lets the streaming recovery path flip between ISA levels
/// (and lets tests pin a level via MMM_SIMD) without perturbing hashes,
/// CRCs, or recovered tensors.
///
/// Dispatch policy: the active level is detected once per process from
/// CPUID (AVX2 > SSE2 > scalar; non-x86 builds are always scalar) and can
/// be clamped down with the MMM_SIMD environment variable ("scalar",
/// "sse2", "avx2") — requesting a level the CPU lacks falls back to the
/// best supported one. The primitives are small enough that per-call
/// dispatch is a single relaxed atomic load.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable level name ("scalar", "sse2", "avx2") for bench metadata.
const char* SimdLevelName(SimdLevel level);

/// The level the process dispatches to: min(CPU support, MMM_SIMD clamp).
/// Detected once; cheap to call afterwards.
SimdLevel ActiveSimdLevel();

namespace simd {

/// dst[i] ^= src[i] for i in [0, n). The regions must not overlap. This is
/// the delta-apply kernel: XOR of raw IEEE-754 bit patterns (via uint8/
/// uint32 lanes), never float arithmetic, so it is bit-exact at any level.
void XorBytes(uint8_t* dst, const uint8_t* src, size_t n);

/// Float-typed convenience over XorBytes for tensor delta-apply; operates
/// on the bit patterns of `n` floats.
void XorFloats(float* dst, const float* src, size_t n);

/// LZ match copy: replicates `n` bytes starting `offset` bytes *behind*
/// `dst` into `dst`, byte-sequentially — i.e. bit-exact with
///   for (i < n) dst[i] = dst[i - offset];
/// which is the overlap/RLE semantic the LZ decoders rely on (offset < n
/// replicates bytes written earlier in the same call). `offset >= 1` and
/// the caller guarantees `dst - offset` through `dst + n` is valid,
/// writable memory. Wide copies are used only when they cannot observe
/// their own output (offset >= vector width); short offsets fall back to
/// the scalar loop, keeping the result identical everywhere.
void ReplicateRun(uint8_t* dst, size_t offset, size_t n);

}  // namespace simd

}  // namespace mmm

#endif  // MMM_COMMON_SIMD_H_
