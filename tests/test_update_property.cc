#include <gtest/gtest.h>

#include "core/manager.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::TempDir;

// Property suite: the Update approach must capture *arbitrary* parameter
// changes — any subset of tensors, any magnitude (including sign flips,
// zeros, subnormals) — purely via hash comparison, across multi-step chains,
// for both diff encodings and all compression codecs.

struct PropertyParam {
  uint64_t seed;
  DiffEncoding encoding;
  Compression codec;
};

class UpdatePropertySweep : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(UpdatePropertySweep, RandomMutationChainsRoundTrip) {
  const PropertyParam param = GetParam();
  TempDir temp("update-property");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.update_options.diff_encoding = param.encoding;
  options.blob_compression = param.codec;
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  Rng rng(param.seed);
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 12, param.seed).ValueOrDie();
  std::string head =
      manager->SaveInitial(ApproachType::kUpdate, set).ValueOrDie().set_id;
  std::vector<ModelSet> history{set};

  for (int step = 0; step < 4; ++step) {
    ModelSet base = set;
    // Mutate a random subset of (model, tensor) pairs in random ways.
    size_t mutations = rng.NextBounded(20);
    for (size_t k = 0; k < mutations; ++k) {
      StateDict& model = set.models[rng.NextBounded(set.models.size())];
      Tensor& tensor = model[rng.NextBounded(model.size())].second;
      switch (rng.NextBounded(4)) {
        case 0:  // single-element nudge
          tensor.at(rng.NextBounded(tensor.numel())) +=
              static_cast<float>(rng.NextGaussian(0.0, 0.1));
          break;
        case 1:  // zero out
          tensor.Fill(0.0f);
          break;
        case 2:  // sign flip of everything
          for (float& x : tensor.mutable_data()) x = -x;
          break;
        default:  // tiny subnormal-scale perturbation of one element
          tensor.at(rng.NextBounded(tensor.numel())) += 1e-40f;
          break;
      }
    }
    ModelSetUpdateInfo update;
    update.base_set_id = head;
    update.base_set = &base;
    head = manager->SaveDerived(ApproachType::kUpdate, set, update)
               .ValueOrDie()
               .set_id;
    history.push_back(set);
  }

  // Full recovery reproduces the final state bit-exactly.
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(head));
  for (size_t m = 0; m < set.models.size(); ++m) {
    for (size_t p = 0; p < set.models[m].size(); ++p) {
      ASSERT_TRUE(recovered.models[m][p].second.Equals(set.models[m][p].second))
          << "model " << m << " param " << p;
    }
  }
  // Selective recovery agrees for a random subset of models.
  std::vector<size_t> indices;
  for (int i = 0; i < 4; ++i) {
    indices.push_back(rng.NextBounded(set.models.size()));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> selected,
                       manager->RecoverModels(head, indices));
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t p = 0; p < selected[i].size(); ++p) {
      ASSERT_TRUE(selected[i][p].second.Equals(
          set.models[indices[i]][p].second))
          << "selective model " << indices[i] << " param " << p;
    }
  }
  // The store stays healthy.
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report,
                       ValidateStore(manager->context()));
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
}

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = "seed" + std::to_string(info.param.seed);
  name += info.param.encoding == DiffEncoding::kXorBase ? "_xor" : "_abs";
  name += info.param.codec == Compression::kNone
              ? "_raw"
              : (info.param.codec == Compression::kLz ? "_lz" : "_shufflelz");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, UpdatePropertySweep,
    ::testing::Values(
        PropertyParam{1, DiffEncoding::kAbsolute, Compression::kNone},
        PropertyParam{2, DiffEncoding::kAbsolute, Compression::kShuffleLz},
        PropertyParam{3, DiffEncoding::kXorBase, Compression::kNone},
        PropertyParam{4, DiffEncoding::kXorBase, Compression::kShuffleLz},
        PropertyParam{5, DiffEncoding::kAbsolute, Compression::kLz},
        PropertyParam{6, DiffEncoding::kXorBase, Compression::kLz},
        PropertyParam{7, DiffEncoding::kXorBase, Compression::kShuffleLz},
        PropertyParam{8, DiffEncoding::kAbsolute, Compression::kNone}),
    ParamName);

}  // namespace
}  // namespace mmm
