#include "storage/env.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace mmm {

namespace fs = std::filesystem;

namespace {

/// Env backed by the host filesystem via <filesystem> and stdio.
class PosixEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::span<const uint8_t> data) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IOError("cannot open for write: ", path);
    }
    size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file);
    int close_rc = std::fclose(file);
    if (written != data.size() || close_rc != 0) {
      return Status::IOError("short write to ", path);
    }
    return Status::OK();
  }

  Status AppendToFile(const std::string& path,
                      std::span<const uint8_t> data) override {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
      return Status::IOError("cannot open for append: ", path);
    }
    size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file);
    int close_rc = std::fclose(file);
    if (written != data.size() || close_rc != 0) {
      return Status::IOError("short append to ", path);
    }
    return Status::OK();
  }

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::NotFound("cannot open for read: ", path);
    }
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> data(static_cast<size_t>(size < 0 ? 0 : size));
    size_t read = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), file);
    std::fclose(file);
    if (read != data.size()) {
      return Status::IOError("short read from ", path);
    }
    return data;
  }

  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::NotFound("cannot open for read: ", path);
    }
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    // Overflow-safe form of `offset + length > size` (the sum can wrap in
    // uint64); see the ReadFileRange contract in env.h.
    if (size < 0 || offset > static_cast<uint64_t>(size) ||
        length > static_cast<uint64_t>(size) - offset) {
      std::fclose(file);
      return Status::OutOfRange("range [", offset, ", +", length,
                                ") past end of ", path);
    }
    std::fseek(file, static_cast<long>(offset), SEEK_SET);
    std::vector<uint8_t> data(length);
    size_t read = data.empty() ? 0 : std::fread(data.data(), 1, length, file);
    std::fclose(file);
    if (read != length) {
      return Status::IOError("short ranged read from ", path);
    }
    return data;
  }

  Result<bool> FileExists(const std::string& path) override {
    std::error_code ec;
    bool exists = fs::exists(path, ec);
    if (ec) return Status::IOError("exists(", path, "): ", ec.message());
    return exists;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (ec) return Status::IOError("file_size(", path, "): ", ec.message());
    return size;
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) return Status::IOError("remove(", path, "): ", ec.message());
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("create_directories(", path, "): ", ec.message());
    return Status::OK();
  }

  Status RemoveDirs(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IOError("remove_all(", path, "): ", ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError("list(", path, "): ", ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

// ---------------------------------------------------------------------------
// InMemoryEnv

Status InMemoryEnv::WriteFile(const std::string& path,
                              std::span<const uint8_t> data) {
  MutexLock lock(mu_);
  for (auto& [name, contents] : files_) {
    if (name == path) {
      contents.assign(data.begin(), data.end());
      return Status::OK();
    }
  }
  files_.emplace_back(path, std::vector<uint8_t>(data.begin(), data.end()));
  return Status::OK();
}

Status InMemoryEnv::AppendToFile(const std::string& path,
                                 std::span<const uint8_t> data) {
  MutexLock lock(mu_);
  for (auto& [name, contents] : files_) {
    if (name == path) {
      contents.insert(contents.end(), data.begin(), data.end());
      return Status::OK();
    }
  }
  files_.emplace_back(path, std::vector<uint8_t>(data.begin(), data.end()));
  return Status::OK();
}

Result<std::vector<uint8_t>> InMemoryEnv::ReadFile(const std::string& path) {
  MutexLock lock(mu_);
  for (const auto& [name, contents] : files_) {
    if (name == path) return contents;
  }
  return Status::NotFound("in-memory env: no file ", path);
}

Result<std::vector<uint8_t>> InMemoryEnv::ReadFileRange(const std::string& path,
                                                        uint64_t offset,
                                                        uint64_t length) {
  MutexLock lock(mu_);
  for (const auto& [name, contents] : files_) {
    if (name != path) continue;
    // Overflow-safe form of `offset + length > size`; see env.h.
    if (offset > contents.size() || length > contents.size() - offset) {
      return Status::OutOfRange("range [", offset, ", +", length,
                                ") past end of ", path);
    }
    return std::vector<uint8_t>(contents.begin() + offset,
                                contents.begin() + offset + length);
  }
  return Status::NotFound("in-memory env: no file ", path);
}

Result<bool> InMemoryEnv::FileExists(const std::string& path) {
  MutexLock lock(mu_);
  for (const auto& [name, _] : files_) {
    if (name == path) return true;
  }
  return false;
}

Result<uint64_t> InMemoryEnv::FileSize(const std::string& path) {
  MutexLock lock(mu_);
  for (const auto& [name, contents] : files_) {
    if (name == path) return static_cast<uint64_t>(contents.size());
  }
  return Status::NotFound("in-memory env: no file ", path);
}

Status InMemoryEnv::DeleteFile(const std::string& path) {
  MutexLock lock(mu_);
  for (auto it = files_.begin(); it != files_.end(); ++it) {
    if (it->first == path) {
      files_.erase(it);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status InMemoryEnv::CreateDirs(const std::string&) { return Status::OK(); }

Status InMemoryEnv::RemoveDirs(const std::string& path) {
  MutexLock lock(mu_);
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::erase_if(files_, [&](const auto& entry) {
    return entry.first.rfind(prefix, 0) == 0;
  });
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryEnv::ListDir(const std::string& path) {
  MutexLock lock(mu_);
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [name, _] : files_) {
    if (name.rfind(prefix, 0) == 0) {
      std::string rest = name.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Write-order tagging

namespace {
// The active tag of this thread, published by ScopedWriteOrderTag. One level
// is enough: a batch wraps exactly the env write of one staged op.
thread_local const WriteOrderGroup* tls_write_order_group = nullptr;
thread_local size_t tls_write_order_index = 0;
}  // namespace

ScopedWriteOrderTag::ScopedWriteOrderTag(const WriteOrderGroup* group,
                                         size_t index) {
  tls_write_order_group = group;
  tls_write_order_index = index;
}

ScopedWriteOrderTag::~ScopedWriteOrderTag() {
  tls_write_order_group = nullptr;
  tls_write_order_index = 0;
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv

Status FaultInjectionEnv::MaybeFail() {
  int64_t index;
  int64_t fail_after;
  {
    MutexLock lock(mu_);
    const WriteOrderGroup* group = tls_write_order_group;
    if (group != nullptr) {
      int64_t base = group->base_.load(std::memory_order_relaxed);
      if (base < 0) {
        // First member of the group to arrive claims the whole block, so
        // every member's index reflects staging order, not arrival order.
        base = next_index_;
        group->base_.store(base, std::memory_order_relaxed);
        next_index_ += static_cast<int64_t>(group->size());
      }
      index = base + static_cast<int64_t>(tls_write_order_index);
    } else {
      index = next_index_++;
    }
    fail_after = fail_after_;
  }
  if (fail_after >= 0 && index >= fail_after) {
    return Status::IOError("injected write failure (write #", index, ")");
  }
  return Status::OK();
}

Status FaultInjectionEnv::CheckPath(const std::string& path) const {
  MutexLock lock(mu_);
  for (const std::string& prefix : dead_prefixes_) {
    if (path.rfind(prefix, 0) == 0) {
      return Status::IOError("injected shard failure: ", path,
                             " is under dead prefix ", prefix);
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    std::span<const uint8_t> data) {
  MMM_RETURN_NOT_OK(CheckPath(path));
  MMM_RETURN_NOT_OK(MaybeFail());
  return base_->WriteFile(path, data);
}

Status FaultInjectionEnv::AppendToFile(const std::string& path,
                                       std::span<const uint8_t> data) {
  MMM_RETURN_NOT_OK(CheckPath(path));
  MMM_RETURN_NOT_OK(MaybeFail());
  return base_->AppendToFile(path, data);
}

Result<std::vector<uint8_t>> FaultInjectionEnv::ReadFile(const std::string& path) {
  MMM_RETURN_NOT_OK(CheckPath(path));
  return base_->ReadFile(path);
}

Result<std::vector<uint8_t>> FaultInjectionEnv::ReadFileRange(
    const std::string& path, uint64_t offset, uint64_t length) {
  MMM_RETURN_NOT_OK(CheckPath(path));
  return base_->ReadFileRange(path, offset, length);
}

Result<bool> FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  MMM_RETURN_NOT_OK(CheckPath(path));
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::RemoveDirs(const std::string& path) {
  return base_->RemoveDirs(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(const std::string& path) {
  return base_->ListDir(path);
}

}  // namespace mmm
