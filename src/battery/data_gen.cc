#include "battery/data_gen.h"

#include "battery/drive_cycle.h"
#include "battery/pack.h"
#include "common/rng.h"

namespace mmm {

BatteryDataGenerator::BatteryDataGenerator(BatteryDataConfig config)
    : config_(config) {}

FeatureNormalizer BatteryDataGenerator::InputNormalizer() {
  // Offsets/scales chosen from the generator's physical ranges: current in
  // [-6, 12] A, temperature in [15, 45] C, SoC in [0, 1].
  return FeatureNormalizer({3.0f, 30.0f, 0.5f, 3.0f}, {9.0f, 15.0f, 0.5f, 9.0f});
}

FeatureNormalizer BatteryDataGenerator::TargetNormalizer() {
  // Terminal voltage in [2.5, 4.3] V.
  return FeatureNormalizer({3.4f}, {0.9f});
}

TrainingData BatteryDataGenerator::GenerateCellDataset(uint64_t cell_id,
                                                       uint64_t cycle,
                                                       double soh) const {
  // Cell-specific physical parameters: fixed per cell across cycles.
  Rng cell_rng = Rng(config_.seed).Fork("cell-params", cell_id);
  EcmParameters params = EcmParameters::Perturbed(base_parameters_, &cell_rng);
  EcmCell cell(params, config_.ambient_temperature_c);
  cell.SetSoh(soh);
  cell.ResetState(/*soc=*/0.95);

  // Each (cell, cycle) pair gets its own drive cycle and noise stream.
  uint64_t trace_key = Rng::Mix64(cell_id * 2654435761ULL + cycle);
  DriveCycleGenerator cycles(config_.seed);
  std::vector<double> current = cycles.Generate(trace_key, config_.samples_per_cycle);
  Rng noise_rng = Rng(config_.seed).Fork("measurement-noise", trace_key);

  const size_t n = current.size();
  Tensor inputs(Shape{n, 4});
  Tensor targets(Shape{n, 1});
  double previous_current = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double temperature_before = cell.state().temperature_c;
    double soc_before = cell.state().soc;
    double voltage = cell.Step(current[t], config_.dt_seconds);
    inputs.at2(t, 0) = static_cast<float>(current[t]);
    inputs.at2(t, 1) = static_cast<float>(temperature_before);
    inputs.at2(t, 2) = static_cast<float>(soc_before);
    inputs.at2(t, 3) = static_cast<float>(previous_current);
    targets.at2(t, 0) = static_cast<float>(
        voltage + noise_rng.NextGaussian(0.0, config_.voltage_noise_stddev));
    previous_current = current[t];
  }

  TrainingData data{std::move(inputs), std::move(targets)};
  data.inputs = InputNormalizer().Normalize(data.inputs).ValueOrDie();
  data.targets = TargetNormalizer().Normalize(data.targets).ValueOrDie();
  return data;
}

std::vector<TrainingData> BatteryDataGenerator::GeneratePackDatasets(
    uint64_t pack_id, uint64_t cycle, const std::vector<double>& sohs) const {
  PackConfig pack_config;
  pack_config.num_cells = sohs.size();
  pack_config.seed = Rng::Mix64(config_.seed ^ (pack_id * 0x9e3779b97f4a7c15ULL));
  pack_config.ambient_temperature_c = config_.ambient_temperature_c;
  SeriesPack pack(pack_config);
  for (size_t i = 0; i < sohs.size(); ++i) pack.AgeCell(i, sohs[i]);
  pack.ResetState(0.95);

  uint64_t trace_key = Rng::Mix64(pack_id * 2654435761ULL + cycle);
  DriveCycleGenerator cycles(config_.seed);
  std::vector<double> current =
      cycles.Generate(trace_key, config_.samples_per_cycle);
  Rng noise_rng = Rng(config_.seed).Fork("pack-noise", trace_key);

  const size_t n = current.size();
  const size_t cells = sohs.size();
  std::vector<Tensor> inputs(cells, Tensor(Shape{n, 4}));
  std::vector<Tensor> targets(cells, Tensor(Shape{n, 1}));
  double previous_current = 0.0;
  for (size_t t = 0; t < n; ++t) {
    // Capture pre-step observables, then advance the coupled pack once.
    for (size_t c = 0; c < cells; ++c) {
      inputs[c].at2(t, 0) = static_cast<float>(current[t]);
      inputs[c].at2(t, 1) = static_cast<float>(pack.cell(c).state().temperature_c);
      inputs[c].at2(t, 2) = static_cast<float>(pack.cell(c).state().soc);
      inputs[c].at2(t, 3) = static_cast<float>(previous_current);
    }
    pack.Step(current[t], config_.dt_seconds);
    for (size_t c = 0; c < cells; ++c) {
      targets[c].at2(t, 0) = static_cast<float>(
          pack.cell(c).state().terminal_voltage +
          noise_rng.NextGaussian(0.0, config_.voltage_noise_stddev));
    }
    previous_current = current[t];
  }

  std::vector<TrainingData> datasets;
  datasets.reserve(cells);
  for (size_t c = 0; c < cells; ++c) {
    TrainingData data{std::move(inputs[c]), std::move(targets[c])};
    data.inputs = InputNormalizer().Normalize(data.inputs).ValueOrDie();
    data.targets = TargetNormalizer().Normalize(data.targets).ValueOrDie();
    datasets.push_back(std::move(data));
  }
  return datasets;
}

}  // namespace mmm
