#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mmm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextFloatInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    float x = rng.NextFloat();
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsScales) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(29);
  std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(31);
  std::vector<int> values{1, 2, 3, 4, 5, 6};
  std::vector<int> original = values;
  rng.Shuffle(&values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkIsIndependentOfConsumption) {
  Rng a(41);
  Rng fork_before = a.Fork("child", 3);
  a.NextUint64();
  a.NextUint64();
  Rng fork_after = a.Fork("child", 3);
  EXPECT_EQ(fork_before.NextUint64(), fork_after.NextUint64());
}

TEST(RngTest, ForkPurposeAndIndexMatter) {
  Rng a(43);
  EXPECT_NE(a.Fork("x", 0).NextUint64(), a.Fork("y", 0).NextUint64());
  EXPECT_NE(a.Fork("x", 0).NextUint64(), a.Fork("x", 1).NextUint64());
}

TEST(RngTest, Mix64IsDeterministicAndSpread) {
  EXPECT_EQ(Rng::Mix64(12345), Rng::Mix64(12345));
  EXPECT_NE(Rng::Mix64(1), Rng::Mix64(2));
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformityChiSquaredAcrossBuckets) {
  Rng rng(GetParam());
  constexpr int kBuckets = 16;
  constexpr int kSamples = 32000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int count : counts) {
    double d = count - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST_P(RngSeedSweep, GaussianCacheKeepsStreamDeterministic) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextGaussian(), b.NextGaussian());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace mmm
