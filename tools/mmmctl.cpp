// mmmctl — command-line inspector for a multi-model-management store.
//
//   mmmctl <store-dir> list                 list every saved set
//   mmmctl <store-dir> lineage <set-id>     show a set's delta/prov chain
//   mmmctl <store-dir> validate             full integrity check
//   mmmctl <store-dir> fsck                 crash-recovery check: report the
//                                           open-time journal replay, validate
//                                           every set, and list orphan blobs
//   mmmctl <store-dir> show <set-id>        metadata + artifact sizes
//   mmmctl <store-dir> export <set-id> <out-dir>
//                                           recover a set and write one
//                                           state-dict blob per model
//   mmmctl <store-dir> compact [--max-depth N] [--dry-run]
//                                           rebase over-deep delta/prov chains
//                                           onto fresh full snapshots (bounding
//                                           recovery TTR), fold the metadata
//                                           log, and fsck the result
//   mmmctl <store-dir> cas-stats            content-addressed chunk store
//                                           report: unique chunks, dedup
//                                           ratio, refcount histogram,
//                                           orphans (requires a store saved
//                                           with Options::cas enabled)
//   mmmctl <store-dir> serve-replay [requests] [workers] [cache-mb] [theta]
//                                           replay a Zipfian recovery trace
//                                           over every saved set through the
//                                           serving layer and report cache
//                                           hit rate + recovery cost
//   mmmctl <root-dir> cluster init [shards] create a sharded cluster
//   mmmctl <root-dir> cluster status        per-shard sets/bytes/misplacement
//   mmmctl <root-dir> cluster rebalance     move misplaced sets to ring owners
//   mmmctl <root-dir> cluster kill-shard <name>
//                                           fail a shard over to a replacement
//                                           (journal replay over its subtree)
//   mmmctl <root-dir> cluster add-shard <name>
//                                           grow the ring (rebalance separately)
//   mmmctl <out-dir> fleet-sim [steps] [seed] [shards] [workers]
//                              [--crashes] [--cas]
//                                           run the deterministic fleet-
//                                           lifecycle simulator (in-memory
//                                           world, invariant oracles at every
//                                           step); on a violation, minimize
//                                           the failing trace with ddmin and
//                                           write <out-dir>/fleet-repro.json
//
// Export works for full-snapshot and Update chains; Provenance chains
// additionally need the external data owner, which a generic CLI does not
// have — exporting such sets reports an error explaining that.
//
// Every command-line shape error prints the one-line usage string to stderr
// and exits 64 (EX_USAGE); runtime failures print "error: ..." and exit
// nonzero.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cas/cas_store.h"
#include "cluster/coordinator.h"
#include "common/strings.h"
#include "fleet/minimize.h"
#include "fleet/simulator.h"
#include "core/blob_formats.h"
#include "core/gc.h"
#include "core/manager.h"
#include "serve/service.h"
#include "serve/trace.h"

using namespace mmm;  // NOLINT — tool code

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Single usage line for every command-shape error (wrong argument count,
/// unknown command, unknown flag), exit code 64 (EX_USAGE).
int Usage() {
  std::fprintf(stderr,
               "usage: mmmctl <store-dir> "
               "{list | lineage <set-id> | validate | fsck | show <set-id> | "
               "export <set-id> <out-dir> | delete <set-id> [--cascade] | "
               "retain <set-id>... | compact [--max-depth N] [--dry-run] | "
               "cas-stats | "
               "serve-replay [requests] [workers] [cache-mb] [theta] | "
               "cluster {init [shards] | status | rebalance | "
               "kill-shard <name> | add-shard <name>} | "
               "fleet-sim [steps] [seed] [shards] [workers] "
               "[--crashes] [--cas]}\n");
  return 64;
}

void PrintSummaryHeader() {
  std::printf("%-24s %-11s %-6s %-8s %7s %6s %10s  %s\n", "set id", "approach",
              "kind", "family", "models", "depth", "bytes", "base");
}

void PrintSummary(const SetSummary& s) {
  std::printf("%-24s %-11s %-6s %-8s %7llu %6llu %10s  %s\n", s.id.c_str(),
              s.approach.c_str(), s.kind.c_str(), s.family.c_str(),
              static_cast<unsigned long long>(s.num_models),
              static_cast<unsigned long long>(s.chain_depth),
              HumanBytes(s.artifact_bytes).c_str(), s.base_set_id.c_str());
}

int CmdList(ModelSetManager* manager) {
  auto sets = manager->ListSets();
  if (!sets.ok()) return Fail(sets.status());
  PrintSummaryHeader();
  uint64_t total = 0;
  for (const SetSummary& s : sets.ValueOrDie()) {
    PrintSummary(s);
    total += s.artifact_bytes;
  }
  std::printf("%zu sets, %s of artifacts\n", sets.ValueOrDie().size(),
              HumanBytes(total).c_str());
  return 0;
}

int CmdLineage(ModelSetManager* manager, const std::string& set_id) {
  auto chain = manager->Lineage(set_id);
  if (!chain.ok()) return Fail(chain.status());
  PrintSummaryHeader();
  for (const SetSummary& s : chain.ValueOrDie()) PrintSummary(s);
  return 0;
}

int CmdValidate(ModelSetManager* manager) {
  auto report = manager->ValidateStore();
  if (!report.ok()) return Fail(report.status());
  const StoreValidationReport& r = report.ValueOrDie();
  std::printf("checked %zu sets, %zu blobs, %s\n", r.sets_checked,
              r.blobs_checked, HumanBytes(r.bytes_checked).c_str());
  if (r.ok()) {
    std::printf("store is healthy\n");
    return 0;
  }
  for (const std::string& problem : r.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }
  return 2;
}

int CmdFsck(ModelSetManager* manager) {
  // Opening the store already replayed the commit journal; report what the
  // replay repaired, then cross-check both stores against each other.
  const RepairReport& repair = manager->repair_report();
  if (repair.entries_scanned == 0) {
    std::printf("journal: clean (no interrupted commits)\n");
  } else {
    std::printf(
        "journal: %zu interrupted commit(s) — %zu rolled back, %zu completed "
        "(%zu blobs deleted, %zu docs removed, %zu docs inserted)\n",
        repair.entries_scanned, repair.rolled_back, repair.completed,
        repair.blobs_deleted, repair.docs_removed, repair.docs_inserted);
  }
  bool healthy = repair.clean();
  for (const std::string& problem : repair.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }

  auto report = manager->ValidateStore();
  if (!report.ok()) return Fail(report.status());
  const StoreValidationReport& r = report.ValueOrDie();
  std::printf("checked %zu sets, %zu blobs, %s\n", r.sets_checked,
              r.blobs_checked, HumanBytes(r.bytes_checked).c_str());
  healthy = healthy && r.ok();
  for (const std::string& problem : r.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }

  auto orphans = FindOrphanBlobs(manager->context());
  if (!orphans.ok()) return Fail(orphans.status());
  const OrphanReport& o = orphans.ValueOrDie();
  if (o.clean()) {
    std::printf("no orphan blobs\n");
  } else {
    healthy = false;
    for (const std::string& blob : o.orphan_blobs) {
      std::printf("PROBLEM: orphan blob '%s'\n", blob.c_str());
    }
    std::printf("%zu orphan blob(s), %s unaccounted\n", o.orphan_blobs.size(),
                HumanBytes(o.orphan_bytes).c_str());
  }

  if (healthy) {
    std::printf("store is consistent\n");
    return 0;
  }
  return 2;
}

int CmdCasStats(ModelSetManager* manager) {
  CasStore* cas = manager->cas();
  if (cas == nullptr) {
    // Opening a store that ever checkpointed a CAS index re-enables it
    // automatically, so reaching here means this store never used CAS.
    std::fprintf(stderr,
                 "store has no content-addressed chunk index (save with "
                 "Options::cas enabled first)\n");
    return 1;
  }
  auto stats_or = cas->ComputeStats();
  if (!stats_or.ok()) return Fail(stats_or.status());
  const CasStore::Stats& stats = stats_or.ValueOrDie();
  std::printf("manifests: %llu (%s of logical payload)\n",
              static_cast<unsigned long long>(stats.manifests),
              HumanBytes(stats.manifest_raw_bytes).c_str());
  std::printf("unique chunks: %llu (%s stored), %llu references\n",
              static_cast<unsigned long long>(stats.unique_chunks),
              HumanBytes(stats.chunk_bytes).c_str(),
              static_cast<unsigned long long>(stats.total_refs));
  std::printf("dedup ratio: %.2fx (logical bytes / stored chunk bytes)\n",
              stats.dedup_ratio());
  std::printf("refcount histogram:\n");
  for (const auto& [refs, chunks] : stats.refcount_histogram) {
    std::printf("  %6llu ref(s): %llu chunk(s)\n",
                static_cast<unsigned long long>(refs),
                static_cast<unsigned long long>(chunks));
  }
  if (stats.orphan_chunks != 0) {
    std::printf("PROBLEM: %llu zero-ref chunk(s) awaiting sweep\n",
                static_cast<unsigned long long>(stats.orphan_chunks));
  }
  std::vector<std::string> problems;
  Status audit = cas->Audit(&problems);
  if (!audit.ok()) return Fail(audit);
  for (const std::string& problem : problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }
  if (stats.orphan_chunks == 0 && problems.empty()) {
    std::printf("chunk index is consistent\n");
    return 0;
  }
  return 2;
}

int CmdShow(ModelSetManager* manager, const std::string& set_id) {
  auto doc = manager->doc_store()->Get(kSetCollection, set_id);
  if (!doc.ok()) return Fail(doc.status());
  std::printf("%s\n", doc.ValueOrDie().DumpPretty().c_str());
  return 0;
}

int CmdExport(ModelSetManager* manager, const std::string& set_id,
              const std::string& out_dir) {
  RecoverStats stats;
  auto recovered = manager->Recover(set_id, &stats);
  if (!recovered.ok()) return Fail(recovered.status());
  const ModelSet& set = recovered.ValueOrDie();
  Status st = Env::Default()->CreateDirs(out_dir);
  if (!st.ok()) return Fail(st);
  for (size_t m = 0; m < set.models.size(); ++m) {
    std::vector<uint8_t> blob = EncodeStateDict(set.models[m]);
    std::string path = StringFormat("%s/model-%05zu.sd", out_dir.c_str(), m);
    st = Env::Default()->WriteFile(path, blob);
    if (!st.ok()) return Fail(st);
  }
  std::printf("exported %zu models of %s to %s (walked %llu sets)\n",
              set.models.size(), set.spec.family.c_str(), out_dir.c_str(),
              static_cast<unsigned long long>(stats.sets_recovered));
  return 0;
}

int CmdDelete(ModelSetManager* manager, const std::string& set_id,
              bool cascade) {
  DeleteOptions options;
  options.cascade = cascade;
  auto report = DeleteSet(manager->context(), set_id, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("deleted %zu set(s), %zu blobs, reclaimed %s\n",
              report.ValueOrDie().sets_deleted,
              report.ValueOrDie().blobs_deleted,
              HumanBytes(report.ValueOrDie().bytes_reclaimed).c_str());
  return 0;
}

int CmdRetain(ModelSetManager* manager, const std::vector<std::string>& keep) {
  auto report = RetainOnly(manager->context(), keep);
  if (!report.ok()) return Fail(report.status());
  std::printf("deleted %zu set(s), reclaimed %s\n",
              report.ValueOrDie().sets_deleted,
              HumanBytes(report.ValueOrDie().bytes_reclaimed).c_str());
  return 0;
}

int CmdServeReplay(ModelSetManager* manager, size_t requests, size_t workers,
                   uint64_t cache_mb, double theta) {
  auto sets = manager->ListSets();
  if (!sets.ok()) return Fail(sets.status());
  // Newest sets first: in a versioned store the latest versions are the hot
  // ones, so they get the head of the Zipfian distribution. Provenance delta
  // sets are excluded: recovering them replays training against the external
  // data owner, which a generic CLI does not have (same limitation as
  // 'export').
  std::vector<std::string> ids;
  size_t skipped_prov = 0;
  for (const SetSummary& s : sets.ValueOrDie()) {
    if (s.kind == "prov") {
      skipped_prov += 1;
      continue;
    }
    ids.push_back(s.id);
  }
  std::reverse(ids.begin(), ids.end());
  if (skipped_prov != 0) {
    std::printf(
        "skipping %zu provenance delta set(s): replay needs the external "
        "data owner\n",
        skipped_prov);
  }
  if (ids.empty()) {
    std::fprintf(stderr, "store has no saved sets\n");
    return 1;
  }

  ModelSetServiceOptions options;
  options.workers = workers;
  options.cache_enabled = cache_mb > 0;
  options.cache_capacity_bytes = cache_mb << 20;
  ModelSetService service(manager, options);

  std::vector<std::string> trace =
      BuildZipfianTrace(ids, requests, theta, /*seed=*/7);
  std::vector<ServeResult> results = service.Replay(trace);

  size_t failed = 0;
  CacheRequestStats cache;
  uint64_t modeled = 0;
  std::vector<uint64_t> wall;
  wall.reserve(results.size());
  std::vector<std::string> failure_reasons;  // distinct, e.g. provenance
                                             // replay without a data owner
  for (const ServeResult& r : results) {
    if (!r.status.ok()) {
      failed += 1;
      std::string reason = r.set_id + ": " + r.status.ToString();
      if (std::find(failure_reasons.begin(), failure_reasons.end(), reason) ==
          failure_reasons.end()) {
        failure_reasons.push_back(reason);
      }
      continue;
    }
    cache += r.cache;
    modeled += r.modeled_store_nanos;
    wall.push_back(r.wall_nanos);
  }
  LatencySummary lat = Summarize(wall);
  LayerCacheStats cs = service.cache_stats();

  std::printf("replayed %zu requests over %zu sets (%zu workers, theta %.2f)\n",
              results.size(), ids.size(), workers, theta);
  if (failed != 0) {
    std::printf("FAILED requests: %zu\n", failed);
    for (const std::string& reason : failure_reasons) {
      std::printf("  %s\n", reason.c_str());
    }
  }
  uint64_t probes = cache.layer_hits + cache.layer_misses;
  std::printf("cache: %s capacity, %llu/%llu layer hits (%.1f%%), "
              "%llu sets served without any store read\n",
              HumanBytes(options.cache_enabled ? options.cache_capacity_bytes : 0).c_str(),
              static_cast<unsigned long long>(cache.layer_hits),
              static_cast<unsigned long long>(probes),
              probes == 0 ? 0.0 : 100.0 * cache.layer_hits / probes,
              static_cast<unsigned long long>(cache.sets_from_cache));
  std::printf("cache residency: %s in %llu entries, %llu evictions\n",
              HumanBytes(cs.bytes_used).c_str(),
              static_cast<unsigned long long>(cs.entries),
              static_cast<unsigned long long>(cs.evictions));
  std::printf("modeled store time: %.3f ms total\n", modeled / 1e6);
  std::printf("wall per request: mean %.3f ms, p50 %.3f ms, p99 %.3f ms, "
              "max %.3f ms\n",
              lat.mean / 1e6, lat.p50 / 1e6, lat.p99 / 1e6, lat.max / 1e6);
  return failed == 0 ? 0 : 2;
}

int CmdCompact(ModelSetManager* manager, const CompactionPolicy& policy) {
  // Phase 1: chain compaction — rebase every over-deep chain onto a fresh
  // full snapshot so recovery stays O(max_chain_depth).
  auto compaction = manager->CompactChains(policy);
  if (!compaction.ok()) return Fail(compaction.status());
  const CompactionReport& c = compaction.ValueOrDie();
  std::printf(
      "%schains: %zu scanned, %zu set(s) rebased, %zu doc(s) rewritten, "
      "%s written, %s reclaimed\n",
      policy.dry_run ? "[dry-run] " : "",
      static_cast<size_t>(c.chains_scanned),
      static_cast<size_t>(c.sets_rebased),
      static_cast<size_t>(c.docs_rewritten), HumanBytes(c.bytes_written).c_str(),
      HumanBytes(c.bytes_reclaimed).c_str());
  for (const std::string& id : c.rebased_set_ids) {
    std::printf("  rebased %s to a full snapshot\n", id.c_str());
  }
  for (const std::string& note : c.skipped) {
    std::printf("  skipped: %s\n", note.c_str());
  }
  if (policy.dry_run) return 0;

  // Phase 2: fold the metadata write-ahead log (rewritten set documents
  // made it grow).
  uint64_t before = manager->doc_store()->WalBytes().ValueOr(0);
  Status st = manager->CompactStore();
  if (!st.ok()) return Fail(st);
  uint64_t after = manager->doc_store()->WalBytes().ValueOr(0);
  std::printf("metadata log: %s -> %s\n", HumanBytes(before).c_str(),
              HumanBytes(after).c_str());

  // Phase 3: verify — compaction must leave the store fsck-clean (every
  // set recoverable, no orphan blobs left behind by the rebases).
  return CmdFsck(manager);
}

Result<std::unique_ptr<Coordinator>> OpenCluster(const std::string& root,
                                                 size_t shard_count) {
  ClusterOptions options;
  options.root_dir = root;
  options.shard_count = shard_count;
  return Coordinator::Open(std::move(options));
}

int CmdClusterInit(const std::string& root, size_t shards) {
  auto cluster = OpenCluster(root, shards);
  if (!cluster.ok()) return Fail(cluster.status());
  std::printf("created cluster at %s with %zu shard(s):\n", root.c_str(),
              cluster.ValueOrDie()->shard_count());
  for (const std::string& name : cluster.ValueOrDie()->ShardNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int CmdClusterStatus(Coordinator* cluster) {
  auto status = cluster->StatusReport();
  if (!status.ok()) return Fail(status.status());
  const ClusterStatus& s = status.ValueOrDie();
  std::printf("%zu shard(s), %zu set(s), %zu virtual nodes/shard, "
              "%llu failover(s)\n",
              s.shards.size(), s.total_sets, s.virtual_nodes,
              static_cast<unsigned long long>(s.failovers));
  std::printf("%-20s %-12s %6s %10s %10s  %s\n", "shard", "ring key", "sets",
              "misplaced", "bytes", "subtree");
  size_t misplaced = 0;
  for (const ShardStatus& row : s.shards) {
    std::printf("%-20s %-12s %6zu %10zu %10s  %s\n", row.name.c_str(),
                row.ring_key.c_str(), row.sets, row.misplaced_sets,
                HumanBytes(row.artifact_bytes).c_str(), row.root_dir.c_str());
    misplaced += row.misplaced_sets;
  }
  if (misplaced != 0) {
    std::printf("%zu misplaced set(s); run 'cluster rebalance'\n", misplaced);
  }
  return 0;
}

int CmdClusterRebalance(Coordinator* cluster) {
  auto report = cluster->Rebalance();
  if (!report.ok()) return Fail(report.status());
  const RebalanceReport& r = report.ValueOrDie();
  std::printf("rebalanced in %zu pass(es): %zu chain member(s) flattened, "
              "%zu set(s) moved (%s)\n",
              r.passes, r.chains_flattened, r.sets_moved,
              HumanBytes(r.bytes_moved).c_str());
  for (const std::string& note : r.skipped) {
    std::printf("  skipped: %s\n", note.c_str());
  }
  return 0;
}

int CmdClusterKillShard(Coordinator* cluster, const std::string& name) {
  auto replay = cluster->FailOver(name);
  if (!replay.ok()) return Fail(replay.status());
  const RepairReport& r = replay.ValueOrDie();
  std::printf("failed '%s' over to a replacement shard\n", name.c_str());
  if (r.entries_scanned == 0) {
    std::printf("journal replay: clean (no interrupted commits)\n");
  } else {
    std::printf("journal replay: %zu interrupted commit(s) — %zu rolled "
                "back, %zu completed\n",
                r.entries_scanned, r.rolled_back, r.completed);
  }
  for (const std::string& problem : r.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }
  return r.clean() ? 0 : 2;
}

int CmdClusterAddShard(Coordinator* cluster, const std::string& name) {
  Status st = cluster->AddShard(name);
  if (!st.ok()) return Fail(st);
  std::printf("added shard '%s'; existing sets move on the next "
              "'cluster rebalance'\n",
              name.c_str());
  return 0;
}

int CmdFleetSim(const std::string& out_dir, const FleetPlanConfig& config,
                const FleetSimOptions& options) {
  FleetPlan plan = FleetPlan::Generate(config);
  FleetSimulator simulator(plan, options);
  auto run = simulator.Run();
  if (!run.ok()) return Fail(run.status());
  const FleetRunReport& report = run.ValueOrDie();

  std::printf("fleet-sim seed=%llu steps=%zu shards=%zu workers=%zu "
              "crashes=%s cas=%s\n",
              static_cast<unsigned long long>(config.seed), config.steps,
              options.shards, options.workers,
              options.inject_crashes ? "on" : "off",
              options.cas.enabled ? "on" : "off");
  std::printf("  %zu ops executed, %zu skipped\n", report.ops_executed,
              report.ops_skipped);
  std::printf("  %llu saves, %llu recoveries, %llu deletes, %llu retains, "
              "%llu compactions\n",
              static_cast<unsigned long long>(report.saves),
              static_cast<unsigned long long>(report.recoveries),
              static_cast<unsigned long long>(report.deletes),
              static_cast<unsigned long long>(report.retains),
              static_cast<unsigned long long>(report.compactions));
  if (options.inject_crashes) {
    std::printf("  %llu crashes injected and recovered\n",
                static_cast<unsigned long long>(report.crashes_injected));
  }
  if (options.shards > 0) {
    std::printf("  %llu failovers, %llu shards added, %llu rebalances\n",
                static_cast<unsigned long long>(report.failovers),
                static_cast<unsigned long long>(report.shards_added),
                static_cast<unsigned long long>(report.rebalances));
  }
  std::printf("  %llu live sets at end of horizon\n",
              static_cast<unsigned long long>(report.live_sets_final));
  if (report.ok()) {
    std::printf("all oracles clean\n");
    return 0;
  }

  const FleetProblem& problem = report.problems.front();
  std::printf("ORACLE VIOLATION at step %zu (%s):\n  %s\n", problem.step,
              problem.op.c_str(), problem.detail.c_str());
  std::printf("minimizing failing trace...\n");
  auto minimized = MinimizeFailingTrace(&simulator, plan.ops);
  if (!minimized.ok()) return Fail(minimized.status());
  std::string artifact = RenderRepro(plan, options, minimized.ValueOrDie());
  Status wrote = Env::Default()->CreateDirs(out_dir);
  std::string repro_path = out_dir + "/fleet-repro.json";
  if (wrote.ok()) {
    wrote = Env::Default()->WriteFile(
        repro_path, {reinterpret_cast<const uint8_t*>(artifact.data()),
                     artifact.size()});
  }
  if (!wrote.ok()) return Fail(wrote);
  std::printf("minimized to %zu ops in %zu replays (%s); repro: %s\n",
              minimized.ValueOrDie().ops.size(), minimized.ValueOrDie().runs,
              minimized.ValueOrDie().minimal ? "1-minimal" : "budget hit",
              repro_path.c_str());
  return 2;
}

int ClusterMain(const std::string& root, int argc, char** argv) {
  // argv[0] is the cluster subcommand.
  std::string sub = argv[0];
  if (sub == "init") {
    size_t shards = 1;
    if (argc >= 2) {
      char* end = nullptr;
      shards = std::strtoull(argv[1], &end, 10);
      if (end == argv[1] || *end != '\0' || shards == 0) return Usage();
    }
    return CmdClusterInit(root, shards);
  }
  // Every other subcommand operates on an existing cluster; refuse to
  // conjure one out of a typo'd path.
  auto manifest = Env::Default()->FileExists(root + "/cluster.json");
  if (!manifest.ok()) return Fail(manifest.status());
  if (!manifest.ValueOrDie()) {
    return Fail(Status::NotFound("no cluster manifest under '", root,
                                 "' (run 'mmmctl ", root, " cluster init')"));
  }
  auto cluster = OpenCluster(root, 1);
  if (!cluster.ok()) return Fail(cluster.status());
  if (sub == "status") return CmdClusterStatus(cluster.ValueOrDie().get());
  if (sub == "rebalance") {
    return CmdClusterRebalance(cluster.ValueOrDie().get());
  }
  if (sub == "kill-shard" && argc >= 2) {
    return CmdClusterKillShard(cluster.ValueOrDie().get(), argv[1]);
  }
  if (sub == "add-shard" && argc >= 2) {
    return CmdClusterAddShard(cluster.ValueOrDie().get(), argv[1]);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string store_dir = argv[1];
  std::string command = argv[2];

  // 'cluster init' and 'fleet-sim' are the commands allowed to create their
  // directory ('fleet-sim' simulates in memory and only writes a repro
  // artifact there); everything else requires an existing store, so a
  // typo'd path is an error instead of a freshly created empty store.
  bool creates_store =
      (command == "cluster" && argc >= 4 &&
       std::strcmp(argv[3], "init") == 0) ||
      command == "fleet-sim";
  if (!creates_store) {
    auto exists = Env::Default()->FileExists(store_dir);
    if (!exists.ok()) return Fail(exists.status());
    if (!exists.ValueOrDie()) {
      return Fail(Status::NotFound("store directory '", store_dir,
                                   "' does not exist"));
    }
  }

  if (command == "cluster") {
    if (argc < 4) return Usage();
    return ClusterMain(store_dir, argc - 3, argv + 3);
  }

  if (command == "fleet-sim") {
    FleetPlanConfig config;
    FleetSimOptions options;
    int positional = 0;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--crashes") == 0) {
        options.inject_crashes = true;
        continue;
      }
      if (std::strcmp(argv[i], "--cas") == 0) {
        // Small chunk parameters relative to the defaults: the simulator's
        // sets are deliberately tiny (see FleetPlanConfig::models_per_set),
        // so production-sized chunks would leave every blob verbatim and
        // the chunk-refcount oracle vacuous.
        options.cas.enabled = true;
        options.cas.min_chunk_bytes = 256;
        options.cas.avg_chunk_bytes = 1024;
        options.cas.max_chunk_bytes = 4096;
        options.cas.min_blob_bytes = 512;
        continue;
      }
      char* end = nullptr;
      uint64_t value = std::strtoull(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0') return Usage();
      switch (positional++) {
        case 0: config.steps = value; break;
        case 1: config.seed = value; break;
        case 2: options.shards = value; break;
        case 3: options.workers = value; break;
        default: return Usage();
      }
    }
    config.cluster_events = options.shards > 0;
    return CmdFleetSim(store_dir, config, options);
  }

  // Reject unknown commands before touching the store: ModelSetManager::Open
  // would otherwise initialize an empty store at a typo'd invocation.
  static const char* kStoreCommands[] = {
      "list",   "validate", "fsck",   "lineage", "show",         "export",
      "delete", "retain",   "compact", "cas-stats", "serve-replay"};
  bool known = false;
  for (const char* c : kStoreCommands) known = known || command == c;
  if (!known) return Usage();

  ModelSetManager::Options options;
  options.root_dir = store_dir;
  // Single-store CLI commands inspect exactly one un-sharded store; the
  // cluster commands above go through the Coordinator.
  // MMMLINT(direct-manager-open): generic single-store inspection CLI.
  auto manager = ModelSetManager::Open(options);
  if (!manager.ok()) return Fail(manager.status());
  if (command == "list") return CmdList(manager.ValueOrDie().get());
  if (command == "validate") return CmdValidate(manager.ValueOrDie().get());
  if (command == "fsck") return CmdFsck(manager.ValueOrDie().get());
  if (command == "cas-stats") return CmdCasStats(manager.ValueOrDie().get());
  if (command == "lineage" && argc >= 4) {
    return CmdLineage(manager.ValueOrDie().get(), argv[3]);
  }
  if (command == "show" && argc >= 4) {
    return CmdShow(manager.ValueOrDie().get(), argv[3]);
  }
  if (command == "export" && argc >= 5) {
    return CmdExport(manager.ValueOrDie().get(), argv[3], argv[4]);
  }
  if (command == "delete" && argc >= 4) {
    bool cascade = argc >= 5 && std::strcmp(argv[4], "--cascade") == 0;
    return CmdDelete(manager.ValueOrDie().get(), argv[3], cascade);
  }
  if (command == "retain" && argc >= 4) {
    std::vector<std::string> keep(argv + 3, argv + argc);
    return CmdRetain(manager.ValueOrDie().get(), keep);
  }
  if (command == "compact") {
    CompactionPolicy policy;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--dry-run") == 0) {
        policy.dry_run = true;
      } else if (std::strcmp(argv[i], "--max-depth") == 0 && i + 1 < argc) {
        policy.max_chain_depth = std::strtoull(argv[++i], nullptr, 10);
      } else {
        return Usage();
      }
    }
    return CmdCompact(manager.ValueOrDie().get(), policy);
  }
  if (command == "serve-replay") {
    size_t requests = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 200;
    size_t workers = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 4;
    uint64_t cache_mb = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 256;
    double theta = argc >= 7 ? std::strtod(argv[6], nullptr) : 0.99;
    return CmdServeReplay(manager.ValueOrDie().get(), requests, workers,
                          cache_mb, theta);
  }
  return Usage();
}
