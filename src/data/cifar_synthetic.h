#ifndef MMM_DATA_CIFAR_SYNTHETIC_H_
#define MMM_DATA_CIFAR_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"

namespace mmm {

/// \brief Synthetic stand-in for CIFAR-10 (DESIGN.md §1 substitution).
///
/// Produces 32x32x3 images in [0, 1] with 10 classes. Each class is a
/// distinct procedural texture (class-specific color mean, sinusoidal
/// pattern frequency/orientation) plus per-image noise, so a small convnet
/// can genuinely learn to separate classes. Deterministic in
/// (seed, model_id, cycle): models updated in later cycles see shifted data,
/// which makes retraining change parameters, as the management layer expects.
class CifarSyntheticGenerator {
 public:
  explicit CifarSyntheticGenerator(uint64_t seed) : seed_(seed) {}

  /// Generates `num_samples` labeled images for model `model_id` at update
  /// cycle `cycle`. targets is a [n] tensor of class indices (0..9).
  TrainingData Generate(uint64_t model_id, uint64_t cycle,
                        size_t num_samples) const;

  static constexpr size_t kClasses = 10;
  static constexpr size_t kChannels = 3;
  static constexpr size_t kHeight = 32;
  static constexpr size_t kWidth = 32;

 private:
  uint64_t seed_;
};

}  // namespace mmm

#endif  // MMM_DATA_CIFAR_SYNTHETIC_H_
