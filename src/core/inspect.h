#ifndef MMM_CORE_INSPECT_H_
#define MMM_CORE_INSPECT_H_

#include <string>
#include <vector>

#include "core/approach.h"
#include "core/set_codec.h"

namespace mmm {

/// \brief One saved set, as listed by the inspection APIs.
struct SetSummary {
  std::string id;
  std::string approach;
  std::string kind;
  std::string base_set_id;
  std::string family;
  uint64_t num_models = 0;
  uint64_t chain_depth = 0;
  /// Total bytes of this set's file-store artifacts.
  uint64_t artifact_bytes = 0;
};

/// Lists every saved set in insertion order.
Result<std::vector<SetSummary>> ListSets(const StoreContext& context);

/// Walks the base chain of `set_id` (newest first, ending at a full
/// snapshot). Fails with Corruption on broken or cyclic chains.
Result<std::vector<SetSummary>> Lineage(const StoreContext& context,
                                        const std::string& set_id);

/// \brief True chain shape of one saved set, measured by walking the store.
struct ChainInspection {
  std::string set_id;
  /// The full snapshot the chain terminates in.
  std::string root_id;
  /// Hops actually walked from `set_id` to the nearest full snapshot.
  uint64_t depth = 0;
  /// The chain_depth field recorded in the set's document.
  uint64_t recorded_depth = 0;

  bool depth_matches() const { return depth == recorded_depth; }
};

/// Measures the true base-chain depth of `set_id` by walking documents down
/// to the nearest full snapshot (the ground truth the adaptive policy's
/// `expected_chain_length` estimate and the compactor's plan are checked
/// against). Budgeted by the whole collection, not the recorded depth — this
/// is an inspection API that must terminate on stores whose recorded depths
/// are themselves wrong.
Result<ChainInspection> InspectChain(const StoreContext& context,
                                     const std::string& set_id);

/// \brief Outcome of a full store integrity check.
struct StoreValidationReport {
  size_t sets_checked = 0;
  size_t blobs_checked = 0;
  uint64_t bytes_checked = 0;
  /// Human-readable descriptions of every problem found (empty = healthy).
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
};

/// Verifies every set document's artifacts: blobs exist, decompress, pass
/// their CRC footers, and decode against the recorded architecture; chains
/// terminate in full snapshots. Never modifies the store.
Result<StoreValidationReport> ValidateStore(const StoreContext& context);

}  // namespace mmm

#endif  // MMM_CORE_INSPECT_H_
