// Fixture: suppressed discards lint clean.
struct Batch {
  int Commit();
};

struct Env {
  int DeleteFile(const char* path);
};

void Drop(Batch* batch, Env* env) {
  batch->Commit();  // MMMLINT(discarded-status): best-effort flush in fixture
  // MMMLINT(discarded-status): removal failure is benign here
  (void)env->DeleteFile("x");
}
