#include "nn/architecture.h"

#include "common/strings.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace mmm {

Result<std::unique_ptr<Sequential>> ArchitectureSpec::Build() const {
  auto network = std::make_unique<Sequential>();
  for (const LayerSpec& layer : layers) {
    std::unique_ptr<Module> module;
    if (layer.type == "linear") {
      if (layer.in == 0 || layer.out == 0) {
        return Status::InvalidArgument("linear layer '", layer.name,
                                       "' needs in/out features");
      }
      module = std::make_unique<Linear>(layer.in, layer.out);
    } else if (layer.type == "conv2d") {
      if (layer.in == 0 || layer.out == 0 || layer.kernel == 0) {
        return Status::InvalidArgument("conv2d layer '", layer.name,
                                       "' needs in/out channels and kernel");
      }
      module = std::make_unique<Conv2d>(layer.in, layer.out, layer.kernel);
    } else if (layer.type == "tanh") {
      module = std::make_unique<Tanh>();
    } else if (layer.type == "relu") {
      module = std::make_unique<ReLU>();
    } else if (layer.type == "sigmoid") {
      module = std::make_unique<Sigmoid>();
    } else if (layer.type == "maxpool2d") {
      module = std::make_unique<MaxPool2d>();
    } else if (layer.type == "flatten") {
      module = std::make_unique<Flatten>();
    } else {
      return Status::InvalidArgument("unknown layer type '", layer.type, "'");
    }
    network->Add(layer.name, std::move(module));
  }
  return network;
}

size_t ArchitectureSpec::ParameterCount() const {
  size_t count = 0;
  for (const LayerSpec& layer : layers) {
    if (layer.type == "linear") {
      count += layer.out * layer.in + layer.out;
    } else if (layer.type == "conv2d") {
      count += layer.out * layer.in * layer.kernel * layer.kernel + layer.out;
    }
  }
  return count;
}

std::vector<std::string> ArchitectureSpec::ParameterLayerNames() const {
  std::vector<std::string> names;
  for (const LayerSpec& layer : layers) {
    if (layer.type == "linear" || layer.type == "conv2d") {
      names.push_back(layer.name);
    }
  }
  return names;
}

JsonValue ArchitectureSpec::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("family", family);
  JsonValue input = JsonValue::Array();
  for (size_t d : input_shape) input.Append(static_cast<int64_t>(d));
  json.Set("input_shape", std::move(input));
  JsonValue layer_array = JsonValue::Array();
  for (const LayerSpec& layer : layers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", layer.name);
    entry.Set("type", layer.type);
    if (layer.in != 0) entry.Set("in", static_cast<int64_t>(layer.in));
    if (layer.out != 0) entry.Set("out", static_cast<int64_t>(layer.out));
    if (layer.kernel != 0) entry.Set("kernel", static_cast<int64_t>(layer.kernel));
    layer_array.Append(std::move(entry));
  }
  json.Set("layers", std::move(layer_array));
  return json;
}

Result<ArchitectureSpec> ArchitectureSpec::FromJson(const JsonValue& json) {
  ArchitectureSpec spec;
  MMM_ASSIGN_OR_RETURN(spec.family, json.GetString("family"));
  MMM_ASSIGN_OR_RETURN(const JsonValue* input, json.Get("input_shape"));
  if (!input->is_array()) {
    return Status::Corruption("architecture: input_shape must be an array");
  }
  for (const JsonValue& d : input->array_items()) {
    MMM_ASSIGN_OR_RETURN(int64_t dim, d.AsInt64());
    spec.input_shape.push_back(static_cast<size_t>(dim));
  }
  MMM_ASSIGN_OR_RETURN(const JsonValue* layer_array, json.Get("layers"));
  if (!layer_array->is_array()) {
    return Status::Corruption("architecture: layers must be an array");
  }
  for (const JsonValue& entry : layer_array->array_items()) {
    LayerSpec layer;
    MMM_ASSIGN_OR_RETURN(layer.name, entry.GetString("name"));
    MMM_ASSIGN_OR_RETURN(layer.type, entry.GetString("type"));
    layer.in = static_cast<size_t>(entry.GetInt64Or("in", 0));
    layer.out = static_cast<size_t>(entry.GetInt64Or("out", 0));
    layer.kernel = static_cast<size_t>(entry.GetInt64Or("kernel", 0));
    spec.layers.push_back(std::move(layer));
  }
  return spec;
}

std::string ArchitectureSpec::SourceCode() const {
  std::string code = "class " + family + "(Module):\n";
  code += "    def __init__(self):\n";
  for (const LayerSpec& layer : layers) {
    if (layer.type == "linear") {
      code += StringFormat("        self.%s = Linear(%zu, %zu)\n",
                           layer.name.c_str(), layer.in, layer.out);
    } else if (layer.type == "conv2d") {
      code += StringFormat("        self.%s = Conv2d(%zu, %zu, kernel_size=%zu)\n",
                           layer.name.c_str(), layer.in, layer.out, layer.kernel);
    } else {
      code += StringFormat("        self.%s = %s()\n", layer.name.c_str(),
                           layer.type.c_str());
    }
  }
  code += "    def forward(self, x):\n";
  for (const LayerSpec& layer : layers) {
    code += StringFormat("        x = self.%s(x)\n", layer.name.c_str());
  }
  code += "        return x\n";
  return code;
}

ArchitectureSpec MakeBatteryFfnnSpec(size_t hidden, const std::string& family) {
  ArchitectureSpec spec;
  spec.family = family;
  spec.input_shape = {4};
  spec.layers = {
      {"fc1", "linear", 4, hidden, 0},     {"act1", "tanh", 0, 0, 0},
      {"fc2", "linear", hidden, hidden, 0}, {"act2", "tanh", 0, 0, 0},
      {"fc3", "linear", hidden, hidden, 0}, {"act3", "tanh", 0, 0, 0},
      {"fc4", "linear", hidden, 1, 0},
  };
  return spec;
}

ArchitectureSpec Ffnn48Spec() { return MakeBatteryFfnnSpec(48, "FFNN-48"); }

ArchitectureSpec Ffnn69Spec() { return MakeBatteryFfnnSpec(69, "FFNN-69"); }

ArchitectureSpec CifarNetSpec() {
  ArchitectureSpec spec;
  spec.family = "CIFAR";
  spec.input_shape = {3, 32, 32};
  spec.layers = {
      {"conv1", "conv2d", 3, 6, 5},  {"act1", "relu", 0, 0, 0},
      {"pool1", "maxpool2d", 0, 0, 0}, {"conv2", "conv2d", 6, 16, 5},
      {"act2", "relu", 0, 0, 0},     {"pool2", "maxpool2d", 0, 0, 0},
      {"flat", "flatten", 0, 0, 0},  {"fc1", "linear", 400, 10, 0},
  };
  return spec;
}

}  // namespace mmm
