file(REMOVE_RECURSE
  "CMakeFiles/test_selective_recovery.dir/test_selective_recovery.cc.o"
  "CMakeFiles/test_selective_recovery.dir/test_selective_recovery.cc.o.d"
  "test_selective_recovery"
  "test_selective_recovery.pdb"
  "test_selective_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selective_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
