#include "serialize/binary_io.h"

namespace mmm {

void BinaryWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void BinaryWriter::WriteString(std::string_view value) {
  WriteVarint(value.size());
  const auto* bytes = reinterpret_cast<const uint8_t*>(value.data());
  buffer_.insert(buffer_.end(), bytes, bytes + value.size());
}

void BinaryWriter::WriteBytes(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::WriteFloatSpan(std::span<const float> values) {
  static_assert(sizeof(float) == 4, "IEEE-754 binary32 floats required");
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  buffer_.insert(buffer_.end(), bytes, bytes + values.size() * sizeof(float));
}

void BinaryWriter::WriteFloatVector(std::span<const float> values) {
  WriteVarint(values.size());
  WriteFloatSpan(values);
}

Result<uint8_t> BinaryReader::ReadUint8() { return ReadLittleEndian<uint8_t>(); }
Result<uint16_t> BinaryReader::ReadUint16() { return ReadLittleEndian<uint16_t>(); }
Result<uint32_t> BinaryReader::ReadUint32() { return ReadLittleEndian<uint32_t>(); }
Result<uint64_t> BinaryReader::ReadUint64() { return ReadLittleEndian<uint64_t>(); }

Result<int32_t> BinaryReader::ReadInt32() {
  MMM_ASSIGN_OR_RETURN(uint32_t bits, ReadUint32());
  return static_cast<int32_t>(bits);
}

Result<int64_t> BinaryReader::ReadInt64() {
  MMM_ASSIGN_OR_RETURN(uint64_t bits, ReadUint64());
  return static_cast<int64_t>(bits);
}

Result<float> BinaryReader::ReadFloat() {
  MMM_ASSIGN_OR_RETURN(uint32_t bits, ReadUint32());
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  MMM_ASSIGN_OR_RETURN(uint64_t bits, ReadUint64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<uint64_t> BinaryReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (offset_ >= data_.size()) {
      return Status::Corruption("binary reader: truncated varint at offset ",
                                offset_);
    }
    uint8_t byte = data_[offset_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      return Status::Corruption("binary reader: varint overflow at offset ",
                                offset_);
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  MMM_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  if (remaining() < length) {
    return Status::Corruption("binary reader: truncated string of length ", length,
                              " at offset ", offset_);
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), length);
  offset_ += length;
  return out;
}

Status BinaryReader::ReadFloatSpan(size_t count, float* out) {
  size_t bytes = count * sizeof(float);
  if (remaining() < bytes) {
    return Status::Corruption("binary reader: truncated float span of ", count,
                              " floats at offset ", offset_);
  }
  std::memcpy(out, data_.data() + offset_, bytes);
  offset_ += bytes;
  return Status::OK();
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  MMM_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
  if (remaining() < count * sizeof(float)) {
    return Status::Corruption("binary reader: truncated float vector of ", count,
                              " floats at offset ", offset_);
  }
  std::vector<float> values(count);
  MMM_RETURN_NOT_OK(ReadFloatSpan(count, values.data()));
  return values;
}

Status BinaryReader::Skip(size_t count) {
  if (remaining() < count) {
    return Status::Corruption("binary reader: cannot skip ", count,
                              " bytes at offset ", offset_);
  }
  offset_ += count;
  return Status::OK();
}

}  // namespace mmm
