#ifndef MMM_NN_LINEAR_H_
#define MMM_NN_LINEAR_H_

#include "nn/module.h"

namespace mmm {

/// \brief Fully connected layer: y = x W^T + b.
///
/// weight has shape [out_features, in_features] (PyTorch convention, which
/// keeps our state dicts byte-compatible with the paper's layout); bias has
/// shape [out_features]. Input is [batch, in_features].
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features);

  std::string TypeName() const override { return "linear"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace mmm

#endif  // MMM_NN_LINEAR_H_
