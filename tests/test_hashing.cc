#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialize/crc32.h"
#include "serialize/sha256.h"

namespace mmm {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(Sha256::Hash("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::Hash(input).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  std::string input(64, 'x');
  // Incremental must equal one-shot at the block boundary.
  Sha256 hasher;
  hasher.Update(input);
  EXPECT_EQ(hasher.Finish().ToHex(), Sha256::Hash(input).ToHex());
}

TEST(Sha256Test, DigestEquality) {
  EXPECT_EQ(Sha256::Hash("x"), Sha256::Hash("x"));
  EXPECT_NE(Sha256::Hash("x"), Sha256::Hash("y"));
}

class Sha256ChunkSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256ChunkSweep, IncrementalMatchesOneShot) {
  Rng rng(321);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));

  Sha256 hasher;
  size_t chunk = GetParam();
  for (size_t offset = 0; offset < data.size(); offset += chunk) {
    size_t n = std::min(chunk, data.size() - offset);
    hasher.Update(std::span<const uint8_t>(data.data() + offset, n));
  }
  EXPECT_EQ(hasher.Finish(), Sha256::Hash(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256ChunkSweep,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 128, 1000, 4096));

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32::Compute("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32::Compute(""), 0u); }

TEST(Crc32Test, ExtendMatchesOneShot) {
  Rng rng(11);
  std::vector<uint8_t> data(1024);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));
  uint32_t crc = 0;
  crc = Crc32::Extend(crc, std::span<const uint8_t>(data.data(), 100));
  crc = Crc32::Extend(crc, std::span<const uint8_t>(data.data() + 100, 924));
  EXPECT_EQ(crc, Crc32::Compute(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(256, 0x5a);
  uint32_t before = Crc32::Compute(data);
  data[100] ^= 0x01;
  EXPECT_NE(before, Crc32::Compute(data));
}

}  // namespace
}  // namespace mmm
