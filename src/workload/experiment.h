#ifndef MMM_WORKLOAD_EXPERIMENT_H_
#define MMM_WORKLOAD_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "core/manager.h"
#include "workload/scenario.h"

namespace mmm {

/// \brief Per-(use case, approach) measurements, matching the paper's three
/// metrics.
struct ApproachMetrics {
  std::string set_id;           ///< canonical saved set of this use case
  uint64_t storage_bytes = 0;   ///< storage consumption (constant across runs)
  uint64_t file_store_writes = 0;
  uint64_t doc_store_writes = 0;
  double tts_seconds = 0.0;     ///< median time-to-save (wall + modeled)
  double tts_wall_seconds = 0.0;      ///< median measured wall clock only
  double tts_modeled_seconds = 0.0;   ///< median modeled store latency only
  double ttr_seconds = 0.0;     ///< median time-to-recover (wall + modeled)
  double ttr_wall_seconds = 0.0;
  double ttr_modeled_seconds = 0.0;
};

/// \brief One row of the evaluation: a use case (U1, U3-1, ...) with metrics
/// for every approach.
struct UseCaseResult {
  std::string use_case;
  std::map<ApproachType, ApproachMetrics> metrics;
};

/// \brief Configuration of a full Figure-2 experiment run.
struct ExperimentConfig {
  ScenarioConfig scenario = ScenarioConfig::Battery();
  /// U3 iterations after U1 (paper: 3).
  size_t u3_iterations = 3;
  /// Runs per measurement; the median is reported (paper: 5).
  int runs = 5;
  SetupProfile profile = SetupProfile::Server();
  /// Working directory; wiped and recreated by Run().
  std::string work_dir = "/tmp/mmm-experiment";
  /// Approaches to evaluate (default: all four).
  std::vector<ApproachType> approaches = {kAllApproaches,
                                          kAllApproaches + 4};
  bool measure_ttr = true;
  /// Run one untimed recovery before the timed ones so all measured runs see
  /// the same (warm) cache state — the paper's medians-of-5 serve the same
  /// purpose.
  bool ttr_warmup = true;
  /// Provenance recovery protocol. Defaults to the paper's measurement
  /// shortcut (§4.4): replay one model per set on a reduced dataset.
  ProvenanceRecoverOptions provenance_recover{/*max_replay_models=*/1,
                                              /*max_replay_samples=*/64};
  UpdateApproachOptions update_options;
  /// Codec applied to parameter/diff/hash blobs (§4.5 future work).
  Compression blob_compression = Compression::kNone;
};

/// \brief Runs the Figure-2 use-case sequence (U1, U3-1..U3-k) against every
/// configured approach on identical model states and collects storage, TTS,
/// and TTR.
///
/// Saving is repeated `runs` times per (use case, approach) for the median
/// TTS; the first save of each cycle is the canonical set that derived saves
/// and recoveries reference. TTR is measured by `runs` recoveries of the
/// canonical set.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  /// Runs the whole experiment. Idempotent: wipes work_dir first.
  Result<std::vector<UseCaseResult>> Run();

  /// The scenario driver (valid during/after Run, e.g. for inspection).
  MultiModelScenario* scenario() { return scenario_.get(); }

 private:
  Result<UseCaseResult> MeasureUseCase(const std::string& label, bool initial,
                                       const ModelSetUpdateInfo* update);

  ExperimentConfig config_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::map<ApproachType, std::unique_ptr<ModelSetManager>> managers_;
  /// Canonical chain head per approach (base for the next derived save).
  std::map<ApproachType, std::string> chain_head_;
};

/// Sorts a copy of `values` and returns the median (0 for empty input).
double Median(std::vector<double> values);

}  // namespace mmm

#endif  // MMM_WORKLOAD_EXPERIMENT_H_
