#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor_serialize.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::RandomTensor;

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.ndim(), 0u);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float x : t.data()) EXPECT_EQ(x, 0.0f);
}

TEST(TensorTest, FromDataAndAccessors) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(1, 2), 6.0f);
  t.at2(1, 0) = 9.0f;
  EXPECT_EQ(t.at(3), 9.0f);
}

TEST(TensorTest, FourDimIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.at(t.numel() - 1), 7.0f);
  t.at4(0, 0, 0, 0) = 3.0f;
  EXPECT_EQ(t.at(0), 3.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full(Shape{4}, 2.5f);
  for (float x : t.data()) EXPECT_EQ(x, 2.5f);
  t.Fill(-1.0f);
  for (float x : t.data()) EXPECT_EQ(x, -1.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(t.shape(), (Shape{3}));
}

TEST(TensorTest, ReshapeKeepsData) {
  Tensor t(Shape{2, 6}, std::vector<float>(12, 1.0f));
  Tensor r = t.Reshape(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_TRUE(std::equal(t.data().begin(), t.data().end(), r.data().begin()));
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {1, 2, 3});
  Tensor c(Shape{3}, {1, 2, 3.0001f});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
  EXPECT_FALSE(a.AllClose(c, 1e-6f));
  EXPECT_FALSE(a.AllClose(Tensor(Shape{4})));
}

TEST(TensorTest, ToStringShowsShape) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_NE(t.ToString().find("[2x2]"), std::string::npos);
}

TEST(TensorOpsTest, AddSubMul) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  EXPECT_TRUE(Add(a, b).Equals(Tensor(Shape{3}, {11, 22, 33})));
  EXPECT_TRUE(Sub(b, a).Equals(Tensor(Shape{3}, {9, 18, 27})));
  EXPECT_TRUE(Mul(a, b).Equals(Tensor(Shape{3}, {10, 40, 90})));
}

TEST(TensorOpsTest, InPlaceVariants) {
  Tensor a(Shape{2}, {1, 2});
  AddInPlace(&a, Tensor(Shape{2}, {5, 5}));
  EXPECT_TRUE(a.Equals(Tensor(Shape{2}, {6, 7})));
  SubInPlace(&a, Tensor(Shape{2}, {1, 1}));
  EXPECT_TRUE(a.Equals(Tensor(Shape{2}, {5, 6})));
  Axpy(&a, 2.0f, Tensor(Shape{2}, {1, 2}));
  EXPECT_TRUE(a.Equals(Tensor(Shape{2}, {7, 10})));
}

TEST(TensorOpsTest, ScaleAndAddScalar) {
  Tensor a(Shape{2}, {2, -4});
  EXPECT_TRUE(Scale(a, 0.5f).Equals(Tensor(Shape{2}, {1, -2})));
  EXPECT_TRUE(AddScalar(a, 1.0f).Equals(Tensor(Shape{2}, {3, -3})));
}

TEST(TensorOpsTest, MapApplies) {
  Tensor a(Shape{3}, {-1, 0, 2});
  Tensor abs = Map(a, [](float x) { return std::fabs(x); });
  EXPECT_TRUE(abs.Equals(Tensor(Shape{3}, {1, 0, 2})));
}

TEST(TensorOpsTest, MatMulKnownValues) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.Equals(Tensor(Shape{2, 2}, {58, 64, 139, 154})));
}

TEST(TensorOpsTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Tensor a = RandomTensor(Shape{4, 6}, 1);
  Tensor b = RandomTensor(Shape{5, 6}, 2);   // b^T is [6,5]
  Tensor expected = MatMul(a, Transpose2D(b));
  EXPECT_TRUE(MatMulTransposedB(a, b).AllClose(expected, 1e-5f));

  Tensor c = RandomTensor(Shape{4, 3}, 3);   // a^T c : [6,3]
  Tensor expected2 = MatMul(Transpose2D(a), c);
  EXPECT_TRUE(MatMulTransposedA(a, c).AllClose(expected2, 1e-5f));
}

TEST(TensorOpsTest, TransposeIsInvolution) {
  Tensor a = RandomTensor(Shape{3, 7}, 4);
  EXPECT_TRUE(Transpose2D(Transpose2D(a)).Equals(a));
}

TEST(TensorOpsTest, AddRowVectorBroadcasts) {
  Tensor m(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor row(Shape{3}, {10, 20, 30});
  EXPECT_TRUE(
      AddRowVector(m, row).Equals(Tensor(Shape{2, 3}, {10, 20, 30, 11, 21, 31})));
}

TEST(TensorOpsTest, SumRowsReduces) {
  Tensor m(Shape{2, 3}, {1, 2, 3, 10, 20, 30});
  EXPECT_TRUE(SumRows(m).Equals(Tensor(Shape{3}, {11, 22, 33})));
}

TEST(TensorOpsTest, Reductions) {
  Tensor a(Shape{4}, {1, -2, 3, -4});
  EXPECT_EQ(Sum(a), -2.0f);
  EXPECT_EQ(Mean(a), -0.5f);
  EXPECT_EQ(MaxAbs(a), 4.0f);
}

TEST(TensorOpsTest, ArgMaxRows) {
  Tensor m(Shape{2, 3}, {0.1f, 0.9f, 0.5f, 2.0f, 1.0f, 0.0f});
  EXPECT_EQ(ArgMaxRows(m), (std::vector<size_t>{1, 0}));
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Tensor logits = RandomTensor(Shape{5, 10}, 6);
  Tensor probs = SoftmaxRows(logits);
  for (size_t i = 0; i < 5; ++i) {
    float row_sum = 0.0f;
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_GT(probs.at2(i, j), 0.0f);
      row_sum += probs.at2(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST(TensorOpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 3}, {1000.0f, 1000.0f, 900.0f});
  Tensor probs = SoftmaxRows(logits);
  EXPECT_NEAR(probs.at2(0, 0), 0.5f, 1e-4f);
  EXPECT_NEAR(probs.at2(0, 2), 0.0f, 1e-4f);
}

// Property: matmul agrees with a naive triple loop across shapes.
class MatMulSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(MatMulSweep, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  Tensor a = RandomTensor(Shape{m, k}, m * 100 + k);
  Tensor b = RandomTensor(Shape{k, n}, k * 100 + n);
  Tensor fast = MatMul(a, b);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(p, j);
      ASSERT_NEAR(fast.at2(i, j), acc, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 1),
                      std::make_tuple(4, 4, 4), std::make_tuple(2, 7, 3),
                      std::make_tuple(8, 1, 8), std::make_tuple(16, 16, 16)));

class TensorSerializeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(TensorSerializeSweep, RoundTrips) {
  Tensor original = RandomTensor(GetParam(), 42);
  BinaryWriter writer;
  WriteTensor(&writer, original);
  BinaryReader reader(writer.buffer());
  ASSERT_OK_AND_ASSIGN(Tensor decoded, ReadTensor(&reader));
  EXPECT_TRUE(decoded.Equals(original));
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorSerializeSweep,
                         ::testing::Values(Shape{1}, Shape{48}, Shape{48, 4},
                                           Shape{1, 1, 1, 1}, Shape{6, 3, 5, 5},
                                           Shape{2, 3, 4}));

TEST(TensorSerializeTest, TruncatedDataFails) {
  Tensor t = RandomTensor(Shape{10}, 1);
  BinaryWriter writer;
  WriteTensor(&writer, t);
  BinaryReader reader(
      std::span<const uint8_t>(writer.buffer().data(), writer.size() - 4));
  EXPECT_TRUE(ReadTensor(&reader).status().IsCorruption());
}

TEST(TensorSerializeTest, AbsurdRankFails) {
  BinaryWriter writer;
  writer.WriteVarint(100);  // rank 100
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(ReadTensor(&reader).status().IsCorruption());
}

}  // namespace
}  // namespace mmm
