#ifndef MMM_SERVE_TRACE_H_
#define MMM_SERVE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mmm {

/// \brief Deterministic Zipfian item sampler: P(i) proportional to
/// 1 / (i + 1)^theta over items 0..n-1 (item 0 is the hottest).
///
/// The classic model of skewed serving workloads — a few hot model-set
/// versions take most recovery requests, the long tail is cold. theta = 0
/// degenerates to uniform.
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double theta);

  /// Draws one item index using `rng`.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cumulative probabilities, cdf_.back() == 1
};

/// Builds a request trace of `requests` set ids drawn Zipfian over `ids`
/// (ids[0] hottest), deterministically from `seed`.
std::vector<std::string> BuildZipfianTrace(const std::vector<std::string>& ids,
                                           size_t requests, double theta,
                                           uint64_t seed);

/// \brief Latency distribution summary of a batch of requests.
struct LatencySummary {
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Summarizes a vector of per-request costs (nanoseconds). Percentiles use
/// the nearest-rank method; an empty input yields all zeros.
LatencySummary Summarize(std::vector<uint64_t> nanos);

}  // namespace mmm

#endif  // MMM_SERVE_TRACE_H_
