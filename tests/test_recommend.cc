#include "core/recommend.h"

#include <gtest/gtest.h>

namespace mmm {
namespace {

TEST(RecommendTest, PaperScenarioPicksProvenance) {
  // §4.5: "Considering that our highest priority is storage consumption and
  // we assume model recoveries to happen rarely, Provenance is the best
  // approach."
  WorkloadProfile workload;  // defaults = the paper's deployment scenario
  Recommendation rec = RecommendApproach(workload);
  EXPECT_EQ(rec.approach, ApproachType::kProvenance);
  EXPECT_FALSE(rec.rationale.empty());
  EXPECT_EQ(rec.estimates.size(), 4u);
}

TEST(RecommendTest, TtrPriorityPicksBaseline) {
  // §4.5: "If the storage consumption is not important and TTR has the
  // highest priority, Baseline is the best approach."
  WorkloadProfile workload;
  workload.storage_weight = 0.0;
  workload.save_time_weight = 0.1;
  workload.recover_time_weight = 10.0;
  workload.recoveries_per_save = 1.0;
  Recommendation rec = RecommendApproach(workload);
  EXPECT_EQ(rec.approach, ApproachType::kBaseline);
}

TEST(RecommendTest, ModerateRecoveryCostPicksUpdate) {
  // §4.5: "If this [long retraining] is not acceptable, Update is the next
  // best approach" — storage still matters but recoveries are frequent
  // enough that retraining is too expensive.
  WorkloadProfile workload;
  workload.recoveries_per_save = 0.5;
  workload.recover_time_weight = 1.0;
  workload.retrain_seconds_per_model = 3600.0;  // expensive retraining
  Recommendation rec = RecommendApproach(workload);
  EXPECT_EQ(rec.approach, ApproachType::kUpdate);
}

TEST(RecommendTest, MMlibBaseIsNeverRecommended) {
  // MMlib-base is dominated by Baseline on every metric.
  for (double update_rate : {0.05, 0.1, 0.3, 1.0}) {
    for (double recoveries : {0.0, 0.1, 1.0, 10.0}) {
      WorkloadProfile workload;
      workload.update_rate = update_rate;
      workload.recoveries_per_save = recoveries;
      EXPECT_NE(RecommendApproach(workload).approach, ApproachType::kMMlibBase);
    }
  }
}

TEST(RecommendTest, EstimatesAreSortedBestFirst) {
  Recommendation rec = RecommendApproach(WorkloadProfile{});
  for (size_t i = 1; i < rec.estimates.size(); ++i) {
    EXPECT_LE(rec.estimates[i - 1].weighted_score,
              rec.estimates[i].weighted_score);
  }
  EXPECT_EQ(rec.estimates.front().approach, rec.approach);
}

TEST(RecommendTest, UpdateStorageScalesWithUpdateRate) {
  WorkloadProfile low, high;
  low.update_rate = 0.1;
  high.update_rate = 0.3;
  double bytes_low =
      EstimateApproachCost(ApproachType::kUpdate, low).storage_bytes_per_cycle;
  double bytes_high =
      EstimateApproachCost(ApproachType::kUpdate, high).storage_bytes_per_cycle;
  EXPECT_GT(bytes_high, bytes_low * 1.5);
  // Baseline's storage is rate-independent (§4.2 finding).
  EXPECT_EQ(
      EstimateApproachCost(ApproachType::kBaseline, low).storage_bytes_per_cycle,
      EstimateApproachCost(ApproachType::kBaseline, high).storage_bytes_per_cycle);
}

TEST(RecommendTest, ProvenanceStorageIsModelSizeIndependent) {
  WorkloadProfile small, large;
  small.params_per_model = 4993;
  large.params_per_model = 10075;
  double a = EstimateApproachCost(ApproachType::kProvenance, small)
                 .storage_bytes_per_cycle;
  double b = EstimateApproachCost(ApproachType::kProvenance, large)
                 .storage_bytes_per_cycle;
  EXPECT_EQ(a, b);  // §4.2: "storage consumption for Provenance is not
                    // affected by the larger model"
}

TEST(RecommendTest, EstimatedOrderingMatchesPaperFigure3) {
  // At U3 with 10% updates: Provenance < Update < Baseline < MMlib-base.
  WorkloadProfile workload;
  double prov = EstimateApproachCost(ApproachType::kProvenance, workload)
                    .storage_bytes_per_cycle;
  double update =
      EstimateApproachCost(ApproachType::kUpdate, workload).storage_bytes_per_cycle;
  double baseline = EstimateApproachCost(ApproachType::kBaseline, workload)
                        .storage_bytes_per_cycle;
  double mmlib = EstimateApproachCost(ApproachType::kMMlibBase, workload)
                     .storage_bytes_per_cycle;
  EXPECT_LT(prov, update);
  EXPECT_LT(update, baseline);
  EXPECT_LT(baseline, mmlib);
}

}  // namespace
}  // namespace mmm
