#ifndef MMM_BATTERY_PACK_H_
#define MMM_BATTERY_PACK_H_

#include <vector>

#include "battery/ecm.h"

namespace mmm {

/// \brief Configuration of a series-connected cell string.
struct PackConfig {
  size_t num_cells = 12;
  uint64_t seed = 7;
  double ambient_temperature_c = 25.0;
  /// Relative manufacturing spread of the electrical parameters.
  double parameter_spread = 0.03;
  /// Conductive heat exchange between adjacent cells, in W/K.
  double neighbor_coupling_w_per_k = 0.15;
};

/// \brief A series string of equivalent-circuit cells — the pack-level
/// substrate behind the paper's motivation.
///
/// Electric car batteries "can consist of thousands of individual cells"
/// (§1), and per-cell models pay off exactly because cells are *not*
/// identical: parameters spread at manufacture, cells age differently, and
/// heat couples neighbors (Neupert & Kowal 2018, the paper's data-generator
/// reference, studies these inhomogeneities). In a series string all cells
/// carry the same current; the pack voltage is the sum of cell voltages and
/// the weakest cell limits the pack.
class SeriesPack {
 public:
  explicit SeriesPack(PackConfig config);

  /// Advances every cell by `dt_seconds` under the shared string current
  /// (positive = discharge) including neighbor heat exchange; returns the
  /// pack terminal voltage.
  double Step(double current_a, double dt_seconds);

  size_t size() const { return cells_.size(); }
  const EcmCell& cell(size_t index) const { return cells_[index]; }

  /// Ages one cell (e.g. a manufacturing outlier degrading early).
  void AgeCell(size_t index, double soh) { cells_[index].SetSoh(soh); }

  /// Resets every cell to the given state of charge.
  void ResetState(double soc);

  /// \name Pack-level observables.
  /// @{
  double PackVoltage() const;
  double MinCellVoltage() const;
  double MaxCellVoltage() const;
  /// Mean state of charge across cells.
  double MeanSoc() const;
  /// Spread (max - min) of cell temperatures — the inhomogeneity signal.
  double TemperatureSpread() const;
  /// Index of the cell with the lowest terminal voltage (the pack's
  /// limiting cell under load).
  size_t WeakestCell() const;
  /// @}

 private:
  PackConfig config_;
  std::vector<EcmCell> cells_;
};

}  // namespace mmm

#endif  // MMM_BATTERY_PACK_H_
