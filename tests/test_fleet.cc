// Fleet-lifecycle simulator: the deterministic long-horizon workload engine
// and its invariant oracles (src/fleet/).
//
// Coverage, in order:
//  - Plan generation: byte-identical renders for equal configs, distinct
//    renders for distinct seeds, WithApproach rewrites saves only.
//  - FleetSymbolicState: approach-dependent lineage semantics (MMlib-base
//    derived saves record no base link; Baseline derived saves are full;
//    Update chains deepen) and the pin-protection closure.
//  - Simulator determinism: byte-identical run reports — including the
//    per-request modeled-nanos stream — across reruns and worker counts.
//  - Oracle-clean matrix: every approach × {un-sharded, 2-shard cluster} ×
//    pipeline lanes {1, 4} replays clean at a short horizon.
//  - Crash injection: deterministic, nonzero injected crashes, clean.
//  - Minimizer: a synthetic fault on a root save converges to exactly that
//    op; a fault on a derived save keeps exactly its save-dependency chain;
//    both minimizations are reproducible run-for-run; the repro artifact
//    renders the seed and trace.
//  - Differential replay: the same plan forced through each approach yields
//    clean oracles and bit-identical recovered contents for every ordinal
//    live under all approaches.
//  - Regressions for the product bugs the simulator surfaced: the serving
//    layer's pin guard vs pruned lineage, rebalance moves erasing base
//    links, RetainOnly's cross-shard lineage closure, and pinned rebalance
//    moves stranding duplicate placements.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "core/compactor.h"
#include "core/gc.h"
#include "core/manager.h"
#include "fleet/content.h"
#include "fleet/minimize.h"
#include "fleet/plan.h"
#include "fleet/simulator.h"
#include "serve/service.h"
#include "storage/env.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using ::mmm::testing::TempDir;

// ---------------------------------------------------------------------------
// Plan generation.

TEST(FleetPlanTest, GenerationIsByteIdenticalForEqualConfigs) {
  FleetPlanConfig config;
  config.seed = 21;
  config.steps = 80;
  config.cluster_events = true;
  FleetPlan a = FleetPlan::Generate(config);
  FleetPlan b = FleetPlan::Generate(config);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.Render(), b.Render());
  EXPECT_EQ(a.save_count, b.save_count);

  config.seed = 22;
  FleetPlan c = FleetPlan::Generate(config);
  EXPECT_NE(a.Render(), c.Render());
}

TEST(FleetPlanTest, WithApproachRewritesSaveOpsOnly) {
  FleetPlanConfig config;
  config.seed = 21;
  config.steps = 60;
  FleetPlan plan = FleetPlan::Generate(config);
  FleetPlan forced = plan.WithApproach(ApproachType::kUpdate);
  ASSERT_EQ(plan.ops.size(), forced.ops.size());
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    EXPECT_EQ(plan.ops[i].kind, forced.ops[i].kind);
    EXPECT_EQ(plan.ops[i].ordinal, forced.ops[i].ordinal);
    if (forced.ops[i].kind == FleetOpKind::kSaveInitial ||
        forced.ops[i].kind == FleetOpKind::kSaveDerived) {
      EXPECT_EQ(forced.ops[i].approach, ApproachType::kUpdate);
    }
  }
}

// ---------------------------------------------------------------------------
// FleetSymbolicState: lineage semantics per approach.

FleetOp SaveOp(FleetOpKind kind, uint64_t ordinal, ApproachType approach,
               uint64_t base = 0) {
  FleetOp op;
  op.kind = kind;
  op.ordinal = ordinal;
  op.approach = approach;
  op.base = base;
  return op;
}

TEST(FleetSymbolicStateTest, ApproachDependentLineage) {
  FleetSymbolicState state;
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveInitial, 0, ApproachType::kUpdate));
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveDerived, 1, ApproachType::kUpdate, 0));
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveDerived, 2, ApproachType::kMMlibBase, 0));
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveDerived, 3, ApproachType::kBaseline, 0));

  // Update: a real delta chain — non-full, one deeper than the base.
  EXPECT_EQ(state.at(1).parent, 0);
  EXPECT_FALSE(state.at(1).is_full);
  EXPECT_EQ(state.at(1).depth, 1u);
  // MMlib-base: single-model management has no set derivation; every save
  // is an independent full snapshot with no recorded base link.
  EXPECT_EQ(state.at(2).parent, -1);
  EXPECT_TRUE(state.at(2).is_full);
  EXPECT_EQ(state.at(2).depth, 0u);
  // Baseline: full snapshot that still records lineage as history.
  EXPECT_EQ(state.at(3).parent, 0);
  EXPECT_TRUE(state.at(3).is_full);
  EXPECT_EQ(state.at(3).depth, 0u);
}

TEST(FleetSymbolicStateTest, PinProtectionFollowsRecordedLineage) {
  FleetSymbolicState state;
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveInitial, 0, ApproachType::kUpdate));
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveDerived, 1, ApproachType::kUpdate, 0));
  state.ApplySave(
      SaveOp(FleetOpKind::kSaveInitial, 2, ApproachType::kUpdate));

  state.Pin(1);
  EXPECT_EQ(state.PinProtected(), (std::vector<uint64_t>{0, 1}));
  state.Unpin(1);
  state.Pin(2);
  EXPECT_EQ(state.PinProtected(), (std::vector<uint64_t>{2}));
}

// ---------------------------------------------------------------------------
// Simulator determinism and the oracle-clean matrix.

// `exact_nanos`: the recover_modeled_nanos stream depends on which request
// warms the shared layer cache first, so it is only byte-comparable between
// single-worker runs (see FleetSimOptions::workers); otherwise just its
// length — one entry per served recovery — is invariant.
void ExpectReportsEqual(const FleetRunReport& a, const FleetRunReport& b,
                        bool exact_nanos = true) {
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.ops_skipped, b.ops_skipped);
  EXPECT_EQ(a.saves, b.saves);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.retains, b.retains);
  EXPECT_EQ(a.compactions, b.compactions);
  EXPECT_EQ(a.crashes_injected, b.crashes_injected);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.shards_added, b.shards_added);
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.live_sets_final, b.live_sets_final);
  if (exact_nanos) {
    EXPECT_EQ(a.recover_modeled_nanos, b.recover_modeled_nanos);
  } else {
    EXPECT_EQ(a.recover_modeled_nanos.size(), b.recover_modeled_nanos.size());
  }
  ASSERT_EQ(a.storage.size(), b.storage.size());
  for (size_t i = 0; i < a.storage.size(); ++i) {
    EXPECT_EQ(a.storage[i].step, b.storage[i].step);
    EXPECT_EQ(a.storage[i].live_sets, b.storage[i].live_sets);
    EXPECT_EQ(a.storage[i].artifact_bytes, b.storage[i].artifact_bytes);
    EXPECT_EQ(a.storage[i].full_artifact_bytes,
              b.storage[i].full_artifact_bytes);
    EXPECT_EQ(a.storage[i].full_sets, b.storage[i].full_sets);
  }
}

std::string ProblemsOf(const FleetRunReport& report) {
  std::string out;
  for (const FleetProblem& problem : report.problems) {
    out += problem.op + ": " + problem.detail + "\n";
  }
  return out;
}

TEST(FleetSimulatorTest, ReportsAreIdenticalAcrossRerunsAndWorkerCounts) {
  FleetPlanConfig config;
  config.seed = 5;
  config.steps = 60;
  config.checkpoint_interval = 20;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions one_worker;
  one_worker.workers = 1;
  FleetSimulator first(plan, one_worker);
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_a, first.Run());
  ASSERT_TRUE(run_a.ok()) << ProblemsOf(run_a);
  EXPECT_GT(run_a.recoveries, 0u);

  // Same simulator, fresh world.
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_b, first.Run());
  ExpectReportsEqual(run_a, run_b);

  // Fresh simulator at a different worker count: oracle verdicts and every
  // counter are unchanged across runs; only the modeled-nanos stream may
  // reorder cache warm-up between concurrent requests.
  FleetSimOptions four_workers;
  four_workers.workers = 4;
  FleetSimulator second(plan, four_workers);
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_c, second.Run());
  ASSERT_TRUE(run_c.ok()) << ProblemsOf(run_c);
  ExpectReportsEqual(run_a, run_c, /*exact_nanos=*/false);
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_d, second.Run());
  ExpectReportsEqual(run_c, run_d, /*exact_nanos=*/false);
}

TEST(FleetSimulatorTest, OracleCleanAcrossApproachesShardsAndLanes) {
  for (ApproachType type :
       {ApproachType::kMMlibBase, ApproachType::kBaseline,
        ApproachType::kUpdate, ApproachType::kProvenance}) {
    for (size_t shards : {size_t{0}, size_t{2}}) {
      for (size_t lanes : {size_t{1}, size_t{4}}) {
        FleetPlanConfig config;
        config.seed = 9;
        config.steps = 30;
        config.checkpoint_interval = 10;
        config.cluster_events = shards > 0;
        FleetPlan plan = FleetPlan::Generate(config).WithApproach(type);

        FleetSimOptions options;
        options.shards = shards;
        options.workers = 2;
        options.lanes = lanes;
        FleetSimulator simulator(std::move(plan), options);
        ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator.Run());
        EXPECT_TRUE(report.ok())
            << ApproachTypeName(type) << " shards=" << shards
            << " lanes=" << lanes << ":\n" << ProblemsOf(report);
      }
    }
  }
}

TEST(FleetSimulatorTest, CrashInjectionIsDeterministicAndOracleClean) {
  FleetPlanConfig config;
  config.seed = 6;
  config.steps = 60;
  config.checkpoint_interval = 20;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions options;
  options.inject_crashes = true;
  FleetSimulator first(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_a, first.Run());
  ASSERT_TRUE(run_a.ok()) << ProblemsOf(run_a);
  // The armed crash points must actually fire for this test to mean
  // anything; the draw is deterministic, so this cannot flake.
  EXPECT_GT(run_a.crashes_injected, 0u);

  FleetSimulator second(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport run_b, second.Run());
  ASSERT_TRUE(run_b.ok()) << ProblemsOf(run_b);
  ExpectReportsEqual(run_a, run_b);
}

// ---------------------------------------------------------------------------
// Content-addressed chunk store (src/cas/) under the fleet oracles.

// Small chunk parameters so the fleet's modest blobs split into many chunks
// and the refcount oracle has real sharing to check.
CasOptions FleetCasOptions() {
  CasOptions cas;
  cas.enabled = true;
  cas.min_chunk_bytes = 256;
  cas.avg_chunk_bytes = 1024;
  cas.max_chunk_bytes = 4096;
  cas.min_blob_bytes = 512;
  return cas;
}

TEST(FleetSimulatorTest, CasChunkOracleCleanOnLifecycleMix) {
  FleetPlanConfig config;
  config.seed = 11;
  config.steps = 60;
  config.checkpoint_interval = 20;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions options;
  options.cas = FleetCasOptions();
  // Recoveries flow through the multi-worker service, so every set is
  // bit-verified against the content engine with CAS reassembly under
  // concurrent readers.
  options.workers = 4;
  FleetSimulator simulator(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator.Run());
  ASSERT_TRUE(report.ok()) << ProblemsOf(report);
  // The plan must actually exercise the GC paths the oracle guards.
  EXPECT_GT(report.saves, 0u);
  EXPECT_GT(report.deletes + report.retains, 0u);

  // Equal configs replay to equal reports with CAS on, too (modeled nanos
  // are only byte-stable at workers = 1; see FleetSimOptions::workers).
  FleetSimulator again(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport rerun, again.Run());
  ExpectReportsEqual(report, rerun, /*exact_nanos=*/false);
}

TEST(FleetSimulatorTest, CasChunkOracleSurvivesCrashInjection) {
  FleetPlanConfig config;
  config.seed = 12;
  config.steps = 60;
  config.checkpoint_interval = 20;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions options;
  options.cas = FleetCasOptions();
  options.inject_crashes = true;
  FleetSimulator simulator(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator.Run());
  ASSERT_TRUE(report.ok()) << ProblemsOf(report);
  EXPECT_GT(report.crashes_injected, 0u);
}

TEST(FleetSimulatorTest, CasShardedClusterStaysFsckClean) {
  FleetPlanConfig config;
  config.seed = 13;
  config.steps = 40;
  config.checkpoint_interval = 10;
  config.cluster_events = true;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions options;
  options.shards = 2;
  options.cas = FleetCasOptions();
  FleetSimulator simulator(std::move(plan), options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator.Run());
  ASSERT_TRUE(report.ok()) << ProblemsOf(report);
}

// ---------------------------------------------------------------------------
// Minimizer.

TEST(FleetMinimizeTest, SyntheticFaultOnRootSaveConvergesToOneOp) {
  FleetPlanConfig config;
  config.seed = 4;
  config.steps = 50;
  FleetPlan plan = FleetPlan::Generate(config);

  FleetSimOptions options;
  options.synthetic_fault = [](const FleetOp& op, size_t) -> std::string {
    return op.kind == FleetOpKind::kSaveInitial && op.ordinal == 0
               ? "synthetic fault"
               : "";
  };
  FleetSimulator simulator(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport full, simulator.Run());
  ASSERT_FALSE(full.ok());

  ASSERT_OK_AND_ASSIGN(FleetMinimizeResult minimized,
                       MinimizeFailingTrace(&simulator, plan.ops));
  EXPECT_TRUE(minimized.minimal);
  ASSERT_EQ(minimized.ops.size(), 1u);
  EXPECT_EQ(minimized.ops[0].kind, FleetOpKind::kSaveInitial);
  EXPECT_EQ(minimized.ops[0].ordinal, 0u);
  ASSERT_FALSE(minimized.report.ok());
  EXPECT_EQ(minimized.report.problems[0].detail, "synthetic: synthetic fault");

  // Reproducibility: minimizing the same trace again lands on the same
  // subsequence after the same number of replays.
  ASSERT_OK_AND_ASSIGN(FleetMinimizeResult again,
                       MinimizeFailingTrace(&simulator, plan.ops));
  EXPECT_EQ(minimized.steps, again.steps);
  EXPECT_EQ(minimized.runs, again.runs);

  // Repro artifact: self-contained JSON naming the seed and the trace.
  std::string repro = RenderRepro(plan, options, minimized);
  EXPECT_NE(repro.find("\"seed\": 4"), std::string::npos);
  EXPECT_NE(repro.find("save-initial o=0"), std::string::npos);
  EXPECT_NE(repro.find("\"minimal\": true"), std::string::npos);
}

TEST(FleetMinimizeTest, FaultOnDerivedSaveKeepsExactlyItsSaveChain) {
  FleetPlanConfig config;
  config.seed = 8;
  config.steps = 80;
  FleetPlan plan = FleetPlan::Generate(config);

  // Fault on the deepest derived save: its op only executes (and thus only
  // trips the fault) when its whole ancestry of saves ran first, so ddmin
  // must converge to exactly the save-dependency chain of that ordinal.
  std::map<uint64_t, uint64_t> parent;
  uint64_t target = 0;
  bool found = false;
  for (const FleetOp& op : plan.ops) {
    if (op.kind == FleetOpKind::kSaveDerived) {
      parent[op.ordinal] = op.base;
      target = op.ordinal;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "plan has no derived saves; enlarge steps";

  std::set<uint64_t> chain;
  for (uint64_t o = target;; o = parent[o]) {
    chain.insert(o);
    if (parent.find(o) == parent.end()) break;
  }

  FleetSimOptions options;
  const uint64_t fault_ordinal = target;
  options.synthetic_fault = [fault_ordinal](const FleetOp& op,
                                            size_t) -> std::string {
    return op.kind == FleetOpKind::kSaveDerived && op.ordinal == fault_ordinal
               ? "synthetic fault"
               : "";
  };
  FleetSimulator simulator(plan, options);
  ASSERT_OK_AND_ASSIGN(FleetRunReport full, simulator.Run());
  ASSERT_FALSE(full.ok());

  ASSERT_OK_AND_ASSIGN(FleetMinimizeResult minimized,
                       MinimizeFailingTrace(&simulator, plan.ops));
  EXPECT_TRUE(minimized.minimal);
  EXPECT_LE(minimized.ops.size(), 20u);
  std::set<uint64_t> kept;
  for (const FleetOp& op : minimized.ops) {
    ASSERT_TRUE(op.kind == FleetOpKind::kSaveInitial ||
                op.kind == FleetOpKind::kSaveDerived)
        << op.Render();
    kept.insert(op.ordinal);
  }
  EXPECT_EQ(kept, chain);
}

// ---------------------------------------------------------------------------
// Differential cross-approach replay.

void ExpectSetsEqual(const ModelSet& a, const ModelSet& b,
                     const std::string& context) {
  ASSERT_EQ(a.models.size(), b.models.size()) << context;
  for (size_t m = 0; m < a.models.size(); ++m) {
    ASSERT_EQ(a.models[m].size(), b.models[m].size()) << context;
    for (size_t p = 0; p < a.models[m].size(); ++p) {
      EXPECT_EQ(a.models[m][p].first, b.models[m][p].first) << context;
      EXPECT_TRUE(a.models[m][p].second.Equals(b.models[m][p].second))
          << context << ": model " << m << " param " << a.models[m][p].first;
    }
  }
}

TEST(FleetDifferentialTest, AllApproachesAgreeOnCommonLiveContents) {
  FleetPlanConfig config;
  config.seed = 12;
  config.steps = 40;
  config.checkpoint_interval = 20;
  FleetPlan base_plan = FleetPlan::Generate(config);

  const std::vector<ApproachType> approaches{
      ApproachType::kMMlibBase, ApproachType::kBaseline,
      ApproachType::kUpdate, ApproachType::kProvenance};
  std::vector<std::unique_ptr<FleetSimulator>> simulators;
  std::vector<std::vector<uint64_t>> live_per_approach;
  for (ApproachType type : approaches) {
    auto simulator = std::make_unique<FleetSimulator>(
        base_plan.WithApproach(type), FleetSimOptions{});
    ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator->Run());
    ASSERT_TRUE(report.ok())
        << ApproachTypeName(type) << ":\n" << ProblemsOf(report);
    live_per_approach.push_back(simulator->LiveOrdinals());
    simulators.push_back(std::move(simulator));
  }

  // Delete/retain closures legitimately differ per approach (full
  // snapshots are not cascade dependents; MMlib-base records no lineage),
  // so compare the ordinals every approach kept alive.
  std::set<uint64_t> common(live_per_approach[0].begin(),
                            live_per_approach[0].end());
  for (size_t i = 1; i < live_per_approach.size(); ++i) {
    std::set<uint64_t> live(live_per_approach[i].begin(),
                            live_per_approach[i].end());
    std::set<uint64_t> next;
    std::set_intersection(common.begin(), common.end(), live.begin(),
                          live.end(), std::inserter(next, next.begin()));
    common.swap(next);
  }
  ASSERT_FALSE(common.empty());

  size_t compared = 0;
  for (uint64_t ordinal : common) {
    if (++compared > 4) break;  // bit-exact compares are expensive
    ASSERT_OK_AND_ASSIGN(ModelSet reference,
                         simulators[0]->RecoverOrdinal(ordinal));
    for (size_t i = 1; i < simulators.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(ModelSet other,
                           simulators[i]->RecoverOrdinal(ordinal));
      ExpectSetsEqual(reference, other,
                      "ordinal " + std::to_string(ordinal) + " via " +
                          ApproachTypeName(approaches[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Regressions for the product bugs the simulator surfaced.

// The serving layer's pin guard walks each pinned set's recorded lineage.
// It must stop at a pruned link (a full snapshot whose recorded base was
// legally deleted) instead of failing the whole delete with NotFound.
TEST(FleetRegressionTest, PinGuardSurvivesPrunedLineage) {
  FleetContentEngine::Config engine_config;
  engine_config.seed = 31;
  FleetContentEngine engine(engine_config);
  TempDir temp("fleet-pin");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &engine;
  options.profile = SetupProfile::Server();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ModelSetManager> manager,
                       ModelSetManager::Open(options));

  ASSERT_OK_AND_ASSIGN(const ModelSet* root_set, engine.InitialSet(0));
  ASSERT_OK_AND_ASSIGN(
      SaveResult root, manager->SaveInitial(ApproachType::kUpdate, *root_set));
  ASSERT_OK_AND_ASSIGN(const ModelSet* derived_set, engine.DerivedSet(1, 0));
  ModelSetUpdateInfo update = engine.UpdateFor(1, 0);
  update.base_set_id = root.set_id;
  ASSERT_OK_AND_ASSIGN(
      SaveResult derived,
      manager->SaveDerived(ApproachType::kUpdate, *derived_set, update));
  ASSERT_OK_AND_ASSIGN(const ModelSet* other_set, engine.InitialSet(2));
  ASSERT_OK_AND_ASSIGN(
      SaveResult other,
      manager->SaveInitial(ApproachType::kUpdate, *other_set));

  ModelSetService service(manager.get(), {});
  // Flatten the chain: the derived set becomes a full snapshot whose
  // document keeps base_set_id as history only.
  CompactionPolicy flatten;
  flatten.max_chain_depth = 0;
  ASSERT_OK_AND_ASSIGN(CompactionReport compacted,
                       service.CompactChains(flatten));
  ASSERT_EQ(compacted.rebased_set_ids,
            std::vector<std::string>{derived.set_id});
  // Deleting the root is legal (full snapshots are not dependents) and
  // leaves the derived set's base link dangling.
  ASSERT_OK(service.DeleteSet(root.set_id).status());

  ASSERT_OK(service.PinSet(derived.set_id));
  ASSERT_OK_AND_ASSIGN(bool protects_pinned,
                       service.PinProtects(derived.set_id));
  EXPECT_TRUE(protects_pinned);
  ASSERT_OK_AND_ASSIGN(bool protects_other, service.PinProtects(other.set_id));
  EXPECT_FALSE(protects_other);

  // Regression: this delete used to fail with NotFound because the guard
  // resolved the pinned set's full lineage instead of walking until the
  // first pruned link.
  ASSERT_OK_AND_ASSIGN(DeleteReport deleted, service.DeleteSet(other.set_id));
  EXPECT_EQ(deleted.deleted_set_ids, std::vector<std::string>{other.set_id});
  // The pinned set itself stays protected.
  Result<DeleteReport> refused = service.DeleteSet(derived.set_id);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument())
      << refused.status().ToString();
}

struct ClusterInventory {
  // set id -> (shard name, recorded base link)
  std::map<std::string, std::pair<std::string, std::string>> sets;
  // set id -> number of shards holding a copy (must always be 1)
  std::map<std::string, size_t> copies;
};

ClusterInventory InventoryOf(Coordinator* cluster) {
  ClusterInventory inventory;
  for (const std::string& name : cluster->ShardNames()) {
    Shard* shard = cluster->shard(name);
    auto sets = shard->manager()->ListSets();
    sets.status().Check();
    for (const SetSummary& set : sets.ValueOrDie()) {
      inventory.sets[set.id] = {name, set.base_set_id};
      ++inventory.copies[set.id];
    }
  }
  return inventory;
}

class FleetClusterRegressionTest : public ::testing::Test {
 protected:
  void Open(size_t shard_count, uint64_t seed) {
    engine_config_.seed = seed;
    engine_ = std::make_unique<FleetContentEngine>(engine_config_);
    ClusterOptions options;
    options.root_dir = "/cluster";
    options.env = &env_;
    options.shard_count = shard_count;
    options.resolver = engine_.get();
    options.profile = SetupProfile::Server();
    ASSERT_OK_AND_ASSIGN(cluster_, Coordinator::Open(std::move(options)));
  }

  // One update-approach family: an initial save plus `depth` chained
  // derived saves. Returns the ids root-first.
  std::vector<std::string> SaveFamily(size_t depth) {
    std::vector<std::string> ids;
    uint64_t root = next_ordinal_++;
    auto root_set = engine_->InitialSet(root);
    root_set.status().Check();
    auto saved =
        cluster_->SaveInitial(ApproachType::kUpdate, *root_set.ValueOrDie());
    saved.status().Check();
    ids.push_back(saved.ValueOrDie().set_id);
    uint64_t parent = root;
    for (size_t d = 0; d < depth; ++d) {
      uint64_t child = next_ordinal_++;
      auto child_set = engine_->DerivedSet(child, parent);
      child_set.status().Check();
      ModelSetUpdateInfo update = engine_->UpdateFor(child, parent);
      update.base_set_id = ids.back();
      auto derived = cluster_->SaveDerived(ApproachType::kUpdate,
                                           *child_set.ValueOrDie(), update);
      derived.status().Check();
      ids.push_back(derived.ValueOrDie().set_id);
      parent = child;
    }
    return ids;
  }

  FleetContentEngine::Config engine_config_;
  std::unique_ptr<FleetContentEngine> engine_;
  InMemoryEnv env_;
  std::unique_ptr<Coordinator> cluster_;
  uint64_t next_ordinal_ = 0;
};

// Rebalance moves a full snapshot by re-saving it on the target shard; the
// fresh save must not erase the recorded base link (regression: moved sets
// lost their history), and RetainOnly must follow those links across shard
// boundaries (regression: the keep closure was computed per shard, so an
// ancestor on another shard was swept away).
TEST_F(FleetClusterRegressionTest, RebalanceKeepsLineageAndRetainFollowsIt) {
  Open(/*shard_count=*/2, /*seed=*/32);
  std::map<std::string, std::string> base_of;
  std::vector<std::string> tips;
  for (int family = 0; family < 6; ++family) {
    std::vector<std::string> ids = SaveFamily(/*depth=*/1);
    base_of[ids[1]] = ids[0];
    tips.push_back(ids[1]);
  }

  ASSERT_OK(cluster_->AddShard("grown-0"));
  ASSERT_OK_AND_ASSIGN(RebalanceReport rebalanced, cluster_->Rebalance());
  ASSERT_GT(rebalanced.sets_moved, 0u);

  ClusterInventory inventory = InventoryOf(cluster_.get());
  std::string cross_tip, cross_base;
  for (const std::string& tip : tips) {
    ASSERT_TRUE(inventory.sets.count(tip));
    // Regression: every derived set still records its base after moving.
    EXPECT_EQ(inventory.sets[tip].second, base_of[tip]) << tip;
    if (inventory.sets[tip].first != inventory.sets[base_of[tip]].first) {
      cross_tip = tip;
      cross_base = base_of[tip];
    }
  }
  // The ring split at least one family across shards (deterministic for
  // this seed; the assertion guards the test's own premise).
  ASSERT_FALSE(cross_tip.empty());

  ASSERT_OK(cluster_->RetainOnly({cross_tip}).status());
  ClusterInventory after = InventoryOf(cluster_.get());
  EXPECT_TRUE(after.sets.count(cross_tip));
  // Regression: the base lives on a different shard than every kept id and
  // must survive via the cluster-wide lineage closure.
  EXPECT_TRUE(after.sets.count(cross_base))
      << cross_base << " swept despite being " << cross_tip << "'s base";
}

// A move whose delete leg would be refused by the source's pin guard must
// be skipped before the copy: completing the copy first stranded a
// permanent duplicate placement that every later Fsck flagged.
TEST_F(FleetClusterRegressionTest, PinnedRebalanceLeavesNoDuplicates) {
  Open(/*shard_count=*/2, /*seed=*/33);
  std::vector<std::string> tips;
  for (int family = 0; family < 4; ++family) {
    tips.push_back(SaveFamily(/*depth=*/2).back());
  }
  for (const std::string& tip : tips) {
    ASSERT_OK(cluster_->PinSet(tip));
  }

  ASSERT_OK(cluster_->AddShard("grown-0"));
  ASSERT_OK_AND_ASSIGN(RebalanceReport rebalanced, cluster_->Rebalance());
  // With every tip pinned, some move must have been refused up front.
  ASSERT_FALSE(rebalanced.skipped.empty());
  for (const std::string& skipped : rebalanced.skipped) {
    EXPECT_NE(skipped.find("pin-protected"), std::string::npos) << skipped;
  }

  ClusterInventory inventory = InventoryOf(cluster_.get());
  for (const auto& [id, copies] : inventory.copies) {
    EXPECT_EQ(copies, 1u) << id << " placed on " << copies << " shards";
  }
  ASSERT_OK_AND_ASSIGN(ClusterFsckReport fsck, cluster_->Fsck());
  std::string problems;
  for (const std::string& problem : fsck.problems) problems += problem + "\n";
  EXPECT_TRUE(fsck.clean()) << problems;
}

}  // namespace
}  // namespace mmm
