
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cifar_synthetic.cc" "src/data/CMakeFiles/mmm_data.dir/cifar_synthetic.cc.o" "gcc" "src/data/CMakeFiles/mmm_data.dir/cifar_synthetic.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/mmm_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/mmm_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_ref.cc" "src/data/CMakeFiles/mmm_data.dir/dataset_ref.cc.o" "gcc" "src/data/CMakeFiles/mmm_data.dir/dataset_ref.cc.o.d"
  "/root/repo/src/data/normalizer.cc" "src/data/CMakeFiles/mmm_data.dir/normalizer.cc.o" "gcc" "src/data/CMakeFiles/mmm_data.dir/normalizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
