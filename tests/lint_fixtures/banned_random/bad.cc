// Fixture: nondeterminism outside the rng/clock shims must be flagged.
#include <random>

int Roll() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

long Now() { return time(nullptr); }
