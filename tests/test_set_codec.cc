#include "core/set_codec.h"

#include <gtest/gtest.h>

#include "core/blob_formats.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

// In-memory store context for codec-level tests.
class SetCodecTest : public ::testing::Test {
 protected:
  SetCodecTest()
      : file_store_(&env_, "/blobs"),
        doc_store_(&env_, "/wal"),
        ids_(7),
        context_{&file_store_, &doc_store_, &ids_, nullptr,
                 Compression::kNone, nullptr, {}} {
    file_store_.Open().Check();
    doc_store_.Open().Check();
  }

  InMemoryEnv env_;
  FileStore file_store_;
  DocumentStore doc_store_;
  IdGenerator ids_;
  StoreContext context_;
};

TEST_F(SetCodecTest, SetDocumentJsonRoundTrip) {
  SetDocument doc;
  doc.id = "set-000001-abc";
  doc.approach = "update";
  doc.kind = "delta";
  doc.base_set_id = "set-000000-def";
  doc.family = "FFNN-48";
  doc.num_models = 5000;
  doc.chain_depth = 3;
  doc.diff_blob = "set-000001-abc.diff.bin";
  doc.hash_blob = "set-000001-abc.hashes.bin";
  ASSERT_OK_AND_ASSIGN(SetDocument decoded, SetDocument::FromJson(doc.ToJson()));
  EXPECT_EQ(decoded.id, doc.id);
  EXPECT_EQ(decoded.kind, "delta");
  EXPECT_EQ(decoded.chain_depth, 3u);
  EXPECT_EQ(decoded.diff_blob, doc.diff_blob);
  EXPECT_EQ(decoded.arch_blob, "");
}

TEST_F(SetCodecTest, ArchBlobRoundTrip) {
  for (const ArchitectureSpec& spec :
       {Ffnn48Spec(), Ffnn69Spec(), CifarNetSpec()}) {
    ASSERT_OK_AND_ASSIGN(ArchitectureSpec decoded,
                         DecodeArchBlob(EncodeArchBlob(spec)));
    EXPECT_EQ(decoded, spec);
  }
}

TEST_F(SetCodecTest, ArchBlobRejectsGarbage) {
  EXPECT_TRUE(DecodeArchBlob("not json").status().IsCorruption());
  EXPECT_TRUE(DecodeArchBlob("{}").status().IsNotFound());
}

TEST_F(SetCodecTest, FullSnapshotRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 6, 1));
  SetDocument doc;
  doc.id = "set-x";
  doc.approach = "baseline";
  ASSERT_OK(WriteFullSnapshot(context_, "set-x", set, &doc));
  EXPECT_EQ(doc.kind, "full");
  EXPECT_EQ(doc.num_models, 6u);
  EXPECT_EQ(doc.family, "FFNN-48");
  ASSERT_OK_AND_ASSIGN(ModelSet read, ReadFullSnapshot(context_, doc));
  EXPECT_EQ(read.models.size(), 6u);
  EXPECT_TRUE(read.models[3][5].second.Equals(set.models[3][5].second));
}

TEST_F(SetCodecTest, ReadFullSnapshotChecksModelCount) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 2, 2));
  SetDocument doc;
  doc.id = "set-y";
  ASSERT_OK(WriteFullSnapshot(context_, "set-y", set, &doc));
  doc.num_models = 3;  // lie
  EXPECT_TRUE(ReadFullSnapshot(context_, doc).status().IsCorruption());
}

TEST_F(SetCodecTest, ReadFullSnapshotOnNonSnapshotFails) {
  SetDocument doc;
  doc.id = "set-z";
  doc.kind = "delta";
  EXPECT_TRUE(ReadFullSnapshot(context_, doc).status().IsCorruption());
}

TEST_F(SetCodecTest, InsertAndFetchSetDocument) {
  SetDocument doc;
  doc.id = "set-q";
  doc.approach = "baseline";
  ASSERT_OK(InsertSetDocument(context_, doc));
  ASSERT_OK_AND_ASSIGN(SetDocument fetched, FetchSetDocument(context_, "set-q"));
  EXPECT_EQ(fetched.approach, "baseline");
  EXPECT_TRUE(FetchSetDocument(context_, "ghost").status().IsNotFound());
  EXPECT_TRUE(InsertSetDocument(context_, doc).IsAlreadyExists());
}

TEST_F(SetCodecTest, CheckIndicesBounds) {
  EXPECT_OK(CheckIndices({}, 0));
  EXPECT_OK(CheckIndices({0, 4, 4}, 5));
  EXPECT_TRUE(CheckIndices({5}, 5).IsInvalidArgument());
}

TEST_F(SetCodecTest, ReadModelsFromSnapshotUsesRangedReads) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 20, 3));
  SetDocument doc;
  doc.id = "set-r";
  ASSERT_OK(WriteFullSnapshot(context_, "set-r", set, &doc));
  file_store_.ResetStats();
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> models,
                       ReadModelsFromSnapshot(context_, doc, {7, 13}));
  ASSERT_EQ(models.size(), 2u);
  EXPECT_TRUE(models[0][0].second.Equals(set.models[7][0].second));
  EXPECT_TRUE(models[1][0].second.Equals(set.models[13][0].second));
  // Bytes read: arch blob + header peek + two model slices, far below the
  // whole 20-model blob.
  EXPECT_LT(file_store_.stats().bytes_read, 20u * 4993 * 4 / 2);
}

TEST_F(SetCodecTest, ReadModelsFromCompressedSnapshotFallsBack) {
  StoreContext compressed = context_;
  compressed.blob_compression = Compression::kShuffleLz;
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 5, 4));
  SetDocument doc;
  doc.id = "set-c";
  ASSERT_OK(WriteFullSnapshot(compressed, "set-c", set, &doc));
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> models,
                       ReadModelsFromSnapshot(compressed, doc, {2}));
  EXPECT_TRUE(models[0][1].second.Equals(set.models[2][1].second));
}

TEST_F(SetCodecTest, ParamBlobHeaderRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 3, 5));
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  ASSERT_OK_AND_ASSIGN(ParamBlobLayout layout,
                       ReadParamBlobHeader(std::span<const uint8_t>(
                           blob.data(), kParamBlobMaxHeaderBytes)));
  EXPECT_EQ(layout.num_models, 3u);
  EXPECT_EQ(layout.params_per_model, 4993u);
  EXPECT_EQ(layout.ModelBytes(), 4993u * 4);
  // Slicing at the computed offset yields model 1 exactly.
  std::span<const uint8_t> slice(blob.data() + layout.ModelOffset(1),
                                 layout.ModelBytes());
  ASSERT_OK_AND_ASSIGN(StateDict state, DecodeModelSlice(set.spec, slice));
  EXPECT_TRUE(state[0].second.Equals(set.models[1][0].second));
  EXPECT_TRUE(state[7].second.Equals(set.models[1][7].second));
}

TEST_F(SetCodecTest, ParamBlobHeaderRejectsWrongMagic) {
  std::vector<uint8_t> junk(30, 0x42);
  EXPECT_TRUE(ReadParamBlobHeader(junk).status().IsCorruption());
}

TEST_F(SetCodecTest, DecodeModelSliceChecksSize) {
  std::vector<uint8_t> slice(10);
  EXPECT_TRUE(DecodeModelSlice(Ffnn48Spec(), slice).status().IsCorruption());
}

TEST_F(SetCodecTest, StatsCaptureMeasuresDeltas) {
  StatsCapture capture(context_);
  file_store_.PutString("blob", "0123456789").Check();
  JsonValue doc = JsonValue::Object();
  doc.Set("_id", "d");
  doc_store_.Insert("c", doc).Check();
  SaveResult result;
  capture.FillSave(&result);
  EXPECT_EQ(result.file_store_writes, 1u);
  EXPECT_EQ(result.doc_store_writes, 1u);
  EXPECT_GT(result.bytes_written, 10u);
}

}  // namespace
}  // namespace mmm
