file(REMOVE_RECURSE
  "CMakeFiles/tab_overhead_breakdown.dir/tab_overhead_breakdown.cpp.o"
  "CMakeFiles/tab_overhead_breakdown.dir/tab_overhead_breakdown.cpp.o.d"
  "tab_overhead_breakdown"
  "tab_overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
