#ifndef MMM_CORE_UPDATE_H_
#define MMM_CORE_UPDATE_H_

#include <limits>

#include "core/approach.h"
#include "core/blob_formats.h"
#include "core/recovery_cache.h"

namespace mmm {

struct SetDocument;

/// \brief Options of the Update approach.
struct UpdateApproachOptions {
  /// Write a full snapshot (instead of a delta) whenever the chain since the
  /// last snapshot reaches this many deltas. The paper saves only the very
  /// first set fully — the default — and notes intermediate snapshots as the
  /// remedy for recursively increasing recovery times (§2.2); the
  /// snapshot-interval ablation bench sweeps this knob.
  uint64_t snapshot_interval = std::numeric_limits<uint64_t>::max();
  /// Payload encoding of the diff blobs. kXorBase (the §4.5 delta-encoding
  /// direction) requires ModelSetUpdateInfo::base_set at save time and pays
  /// off combined with shuffle-LZ compression.
  DiffEncoding diff_encoding = DiffEncoding::kAbsolute;
};

/// \brief The paper's Update approach (§3.3).
///
/// Saves the initial set with Baseline's logic plus a per-(model, layer)
/// SHA-256 hash table. Derived sets are saved as: (1) a metadata document
/// referencing the base set, (2) the new hash table, (3) a diff list of all
/// (model, layer) pairs whose hash changed, and (4) one binary blob
/// concatenating exactly the changed parameters. Change detection needs only
/// the base set's *hash* blob, never its parameters.
///
/// Recovery is recursive: recover the base set, then apply the diffs —
/// hence the staircase time-to-recover in Figure 5.
class UpdateApproach : public ModelSetApproach {
 public:
  UpdateApproach(StoreContext context, UpdateApproachOptions options = {});

  std::string Name() const override { return "update"; }
  Result<SaveResult> SaveInitial(const ModelSet& set) override;
  Result<SaveResult> SaveDerived(const ModelSet& set,
                                 const ModelSetUpdateInfo& update) override;
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats) override;
  /// Selective recovery walks the delta chain once, keeping only the newest
  /// version of each requested (model, layer) pair, and reads the remaining
  /// parameters from the root snapshot with ranged store reads — no full set
  /// is ever materialized.
  Result<std::vector<StateDict>> RecoverModels(const std::string& set_id,
                                               const std::vector<size_t>& indices,
                                               RecoverStats* stats) override;
  using ModelSetApproach::Recover;
  using ModelSetApproach::RecoverModels;

  /// Recovery through a layer-granular cache (the serving read path).
  ///
  /// Decomposes Recover into cacheable per-layer steps: the set's stored
  /// per-layer content hashes are resolved first (memoized via
  /// RecoveryCache::GetSetMeta), then every layer is probed in the cache by
  /// its hash. A set whose layers all hit is assembled without reading a
  /// single parameter or diff blob; otherwise the base set is recovered
  /// recursively *through the same cache* — so a hot base set is fetched and
  /// decoded once, and each derived set costs only its own diff blob — and
  /// every materialized layer is offered back to the cache.
  ///
  /// Bit-exactness: cached tensors are keyed by their SHA-256 content hash,
  /// so assembly reproduces exactly the bytes Recover would return. With
  /// `cache == nullptr` this is plain Recover.
  Result<ModelSet> RecoverCached(const std::string& set_id,
                                 RecoveryCache* cache,
                                 RecoverStats* stats = nullptr,
                                 CacheRequestStats* cache_stats = nullptr);

 private:
  Result<SaveResult> SaveSnapshotWithHashes(const ModelSet& set,
                                            const std::string& base_set_id);
  Result<ModelSet> RecoverInternal(const std::string& set_id,
                                   RecoverStats* stats, uint64_t depth_budget);
  /// Continues recovery from an already-fetched document. Split from
  /// RecoverInternal so the top-level entry point can fetch the target
  /// document once, size the recursion budget from its recorded chain_depth,
  /// and proceed without a second fetch.
  Result<ModelSet> RecoverFromDoc(const SetDocument& doc, RecoverStats* stats,
                                  uint64_t depth_budget);
  Result<ModelSet> RecoverCachedInternal(const std::string& set_id,
                                         RecoveryCache* cache,
                                         RecoverStats* stats,
                                         CacheRequestStats* cache_stats,
                                         uint64_t depth_budget);
  Result<ModelSet> RecoverCachedFromDoc(const SetDocument& doc,
                                        RecoveryCache* cache,
                                        RecoverStats* stats,
                                        CacheRequestStats* cache_stats,
                                        uint64_t depth_budget);
  /// Reads, decodes, and applies `doc`'s diff blob onto `set` in place.
  Status ApplyDelta(const SetDocument& doc, ModelSet* set);

  StoreContext context_;
  UpdateApproachOptions options_;
};

}  // namespace mmm

#endif  // MMM_CORE_UPDATE_H_
