#ifndef MMM_CORE_RECOVERY_CACHE_H_
#define MMM_CORE_RECOVERY_CACHE_H_

#include <cstdint>
#include <string>

#include "core/blob_formats.h"
#include "core/model_set.h"
#include "nn/architecture.h"
#include "serialize/sha256.h"
#include "tensor/tensor.h"

namespace mmm {

/// \brief Per-request cache effectiveness counters, filled by the cached
/// recovery path (see UpdateApproach::RecoverCached).
struct CacheRequestStats {
  /// Layers served from the cache (content-hash lookups that hit).
  uint64_t layer_hits = 0;
  /// Layers that had to be fetched and decoded from the store.
  uint64_t layer_misses = 0;
  /// Set-metadata memo hits (hash table + architecture found cached).
  uint64_t meta_hits = 0;
  /// Set-metadata memo misses (hash blob re-read from the store).
  uint64_t meta_misses = 0;
  /// Sets assembled purely from cached layers (no blob read at all).
  uint64_t sets_from_cache = 0;

  CacheRequestStats& operator+=(const CacheRequestStats& other) {
    layer_hits += other.layer_hits;
    layer_misses += other.layer_misses;
    meta_hits += other.meta_hits;
    meta_misses += other.meta_misses;
    sets_from_cache += other.sets_from_cache;
    return *this;
  }
};

/// \brief Interface of a layer-granular recovery cache, consulted by the
/// Update approach's read path (implemented by serve/ModelSetService).
///
/// The cache key for parameter tensors is the per-layer SHA-256 content hash
/// the Update approach already persists for change detection (§3.3 step 2):
/// layers shared between a base set and its derived sets have identical
/// hashes, so one cached decode serves every set that contains the layer.
/// Entries are therefore immutable by construction — a content hash can
/// never map to stale bytes — and the *document store* remains the single
/// root of trust: every recovery starts with a live set-document fetch, so
/// a cache can never resurrect a deleted set.
///
/// Implementations must be safe for concurrent calls; lookups and inserts
/// are advisory (a cache may decline to admit or may have evicted anything).
class RecoveryCache {
 public:
  virtual ~RecoveryCache() = default;

  /// Fetches the tensor cached under a content hash into `out`.
  virtual bool GetLayer(const Sha256Digest& hash, Tensor* out) = 0;

  /// Offers a decoded layer for admission (may be declined).
  virtual void PutLayer(const Sha256Digest& hash, const Tensor& value) = 0;

  /// Fetches the memoized per-set metadata: the set's stored hash table and
  /// the architecture it decodes against.
  virtual bool GetSetMeta(const std::string& set_id, HashTable* hashes,
                          ArchitectureSpec* spec) = 0;

  /// Memoizes a set's hash table + architecture after a recovery resolved
  /// them from the store.
  virtual void PutSetMeta(const std::string& set_id, const HashTable& hashes,
                          const ArchitectureSpec& spec) = 0;
};

}  // namespace mmm

#endif  // MMM_CORE_RECOVERY_CACHE_H_
