#ifndef MMM_PROV_ENVIRONMENT_H_
#define MMM_PROV_ENVIRONMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "serialize/json.h"

namespace mmm {

/// \brief Snapshot of the software/hardware environment a model was trained
/// in.
///
/// MMlib's provenance approach records "seeds, detailed soft and hardware
/// information, and the source code of the training pipeline" (paper §2.2).
/// MMlib-base persists one EnvironmentInfo *per model* (part of its ~8 KB
/// per-model overhead); our approaches persist it once per set (O1/O2).
struct EnvironmentInfo {
  std::string os_name;
  std::string os_version;
  std::string hostname;
  std::string cpu_model;
  int cpu_cores = 0;
  uint64_t total_memory_bytes = 0;
  std::string library_version;  ///< this library's version
  std::string python_version;   ///< interpreter of the recorded DL stack
  std::string cuda_version;     ///< accelerator stack ("" when CPU-only)
  std::string gpu_name;
  /// CPU feature flags, as /proc/cpuinfo reports them.
  std::string cpu_flags;
  /// Installed package list ("name==version"), as `pip freeze` would emit.
  std::vector<std::string> packages;
  /// System package list ("name/version"), as `dpkg -l` / `rpm -qa` would
  /// emit for the relevant runtime libraries.
  std::vector<std::string> os_packages;

  /// Captures the current machine's environment (reads /proc and uname) and
  /// a representative DL-stack package list.
  static EnvironmentInfo Capture();

  JsonValue ToJson() const;
  static Result<EnvironmentInfo> FromJson(const JsonValue& json);

  bool operator==(const EnvironmentInfo& other) const = default;
};

}  // namespace mmm

#endif  // MMM_PROV_ENVIRONMENT_H_
