#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::RandomTensor;

// Generic numerical gradient check for any module: loss = sum(Forward(x)).
void CheckModuleGradients(Module* module, const Tensor& input, float eps = 1e-2f,
                          float tol = 2e-2f) {
  Tensor out = module->Forward(input);
  Tensor grad_out = Tensor::Full(out.shape(), 1.0f);
  for (Parameter* p : module->Parameters()) p->ZeroGrad();
  Tensor grad_in = module->Backward(grad_out);

  auto loss_for = [&](const Tensor& x) {
    Tensor y = module->Forward(x);
    float acc = 0.0f;
    for (float v : y.data()) acc += v;
    return acc;
  };

  // Input gradient (spot-check up to 8 coordinates).
  for (size_t i = 0; i < input.numel(); i += std::max<size_t>(1, input.numel() / 8)) {
    Tensor plus = input, minus = input;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    float numeric = (loss_for(plus) - loss_for(minus)) / (2 * eps);
    ASSERT_NEAR(grad_in.at(i), numeric, tol) << "input grad @" << i;
  }
  // Parameter gradients.
  for (Parameter* p : module->Parameters()) {
    for (size_t i = 0; i < p->value.numel();
         i += std::max<size_t>(1, p->value.numel() / 8)) {
      float original = p->value.at(i);
      p->value.at(i) = original + eps;
      float plus = loss_for(input);
      p->value.at(i) = original - eps;
      float minus = loss_for(input);
      p->value.at(i) = original;
      float numeric = (plus - minus) / (2 * eps);
      ASSERT_NEAR(p->grad.at(i), numeric, tol)
          << p->name << " grad @" << i;
    }
  }
  // Restore caches for any subsequent Backward.
  module->Forward(input);
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Linear layer(2, 3);
  layer.weight().value = Tensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  layer.bias().value = Tensor(Shape{3}, {0.1f, 0.2f, 0.3f});
  Tensor input(Shape{1, 2}, {10, 20});
  Tensor out = layer.Forward(input);
  EXPECT_NEAR(out.at2(0, 0), 10 * 1 + 20 * 2 + 0.1f, 1e-5f);
  EXPECT_NEAR(out.at2(0, 1), 10 * 3 + 20 * 4 + 0.2f, 1e-5f);
  EXPECT_NEAR(out.at2(0, 2), 10 * 5 + 20 * 6 + 0.3f, 1e-5f);
}

TEST(LinearTest, GradientsMatchNumerical) {
  Linear layer(4, 3);
  Rng rng(7);
  for (float& x : layer.weight().value.mutable_data()) {
    x = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  }
  for (float& x : layer.bias().value.mutable_data()) {
    x = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  }
  CheckModuleGradients(&layer, RandomTensor(Shape{3, 4}, 5));
}

TEST(ActivationTest, TanhForwardAndGradient) {
  Tanh layer;
  Tensor input(Shape{1, 3}, {-1.0f, 0.0f, 2.0f});
  Tensor out = layer.Forward(input);
  EXPECT_NEAR(out.at(0), std::tanh(-1.0f), 1e-6f);
  EXPECT_EQ(out.at(1), 0.0f);
  CheckModuleGradients(&layer, RandomTensor(Shape{2, 5}, 6), 1e-3f, 1e-3f);
}

TEST(ActivationTest, ReLUForwardAndGradient) {
  ReLU layer;
  Tensor input(Shape{1, 4}, {-2, -0.5f, 0.5f, 3});
  Tensor out = layer.Forward(input);
  EXPECT_TRUE(out.Equals(Tensor(Shape{1, 4}, {0, 0, 0.5f, 3})));
  Tensor grad = layer.Backward(Tensor::Full(Shape{1, 4}, 1.0f));
  EXPECT_TRUE(grad.Equals(Tensor(Shape{1, 4}, {0, 0, 1, 1})));
}

TEST(ActivationTest, SigmoidForwardAndGradient) {
  Sigmoid layer;
  Tensor input(Shape{1, 1}, {0.0f});
  EXPECT_NEAR(layer.Forward(input).at(0), 0.5f, 1e-6f);
  CheckModuleGradients(&layer, RandomTensor(Shape{2, 3}, 8), 1e-3f, 1e-3f);
}

TEST(Conv2dModuleTest, GradientsMatchNumerical) {
  Conv2d layer(2, 3, 3);
  Rng rng(9);
  for (Parameter* p : layer.Parameters()) {
    for (float& x : p->value.mutable_data()) {
      x = static_cast<float>(rng.NextUniform(-0.3, 0.3));
    }
  }
  CheckModuleGradients(&layer, RandomTensor(Shape{1, 2, 6, 6}, 10));
}

TEST(FlattenTest, RoundTripsShapes) {
  Flatten layer;
  Tensor input = RandomTensor(Shape{2, 3, 4, 4}, 11);
  Tensor out = layer.Forward(input);
  EXPECT_EQ(out.shape(), (Shape{2, 48}));
  Tensor back = layer.Backward(out);
  EXPECT_EQ(back.shape(), input.shape());
  EXPECT_TRUE(back.Equals(input));
}

TEST(SequentialTest, NamedParametersAreQualifiedAndOrdered) {
  Sequential net;
  net.Add("fc1", std::make_unique<Linear>(4, 8));
  net.Add("act1", std::make_unique<Tanh>());
  net.Add("fc2", std::make_unique<Linear>(8, 1));
  auto named = net.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].qualified_name, "fc1.weight");
  EXPECT_EQ(named[1].qualified_name, "fc1.bias");
  EXPECT_EQ(named[2].qualified_name, "fc2.weight");
  EXPECT_EQ(named[3].qualified_name, "fc2.bias");
  EXPECT_EQ(net.ParameterCount(), 4u * 8 + 8 + 8 + 1);
}

TEST(SequentialTest, ChildLookup) {
  Sequential net;
  net.Add("fc1", std::make_unique<Linear>(2, 2));
  EXPECT_OK(net.Child("fc1").status());
  EXPECT_TRUE(net.Child("nope").status().IsNotFound());
}

TEST(SequentialTest, ForwardComposes) {
  Sequential net;
  auto* fc = static_cast<Linear*>(net.Add("fc", std::make_unique<Linear>(2, 2)));
  fc->weight().value = Tensor(Shape{2, 2}, {1, 0, 0, 1});  // identity
  net.Add("act", std::make_unique<ReLU>());
  Tensor out = net.Forward(Tensor(Shape{1, 2}, {-3, 4}));
  EXPECT_TRUE(out.Equals(Tensor(Shape{1, 2}, {0, 4})));
}

TEST(SequentialTest, SetTrainableLayersFreezesOthers) {
  Sequential net;
  net.Add("fc1", std::make_unique<Linear>(2, 2));
  net.Add("fc2", std::make_unique<Linear>(2, 2));
  ASSERT_OK(net.SetTrainableLayers({"fc2"}));
  auto named = net.NamedParameters();
  EXPECT_FALSE(named[0].parameter->trainable);  // fc1.weight
  EXPECT_TRUE(named[2].parameter->trainable);   // fc2.weight
  ASSERT_OK(net.SetTrainableLayers({}));
  EXPECT_TRUE(named[0].parameter->trainable);
}

TEST(SequentialTest, SetTrainableLayersRejectsUnknown) {
  Sequential net;
  net.Add("fc1", std::make_unique<Linear>(2, 2));
  EXPECT_TRUE(net.SetTrainableLayers({"bogus"}).IsInvalidArgument());
}

TEST(SequentialTest, BackwardGradCheckThroughStack) {
  Sequential net;
  net.Add("fc1", std::make_unique<Linear>(3, 5));
  net.Add("act1", std::make_unique<Tanh>());
  net.Add("fc2", std::make_unique<Linear>(5, 2));
  Rng rng(13);
  InitNetwork(&net, &rng);
  CheckModuleGradients(&net, RandomTensor(Shape{2, 3}, 14));
}

TEST(InitTest, DeterministicForSameSeed) {
  Sequential a, b;
  a.Add("fc", std::make_unique<Linear>(4, 4));
  b.Add("fc", std::make_unique<Linear>(4, 4));
  Rng rng_a(5), rng_b(5);
  InitNetwork(&a, &rng_a);
  InitNetwork(&b, &rng_b);
  EXPECT_TRUE(a.NamedParameters()[0].parameter->value.Equals(
      b.NamedParameters()[0].parameter->value));
}

TEST(InitTest, XavierBoundsRespected) {
  Tensor w(Shape{48, 4});
  Rng rng(3);
  InitXavierUniform(&w, &rng, 4, 48);
  float bound = std::sqrt(6.0f / 52.0f);
  for (float x : w.data()) {
    EXPECT_LE(std::fabs(x), bound);
  }
  EXPECT_GT(MaxAbs(w), bound * 0.5f);  // actually spread out
}

TEST(LossTest, MSEKnownValue) {
  MSELoss loss;
  Tensor pred(Shape{2, 1}, {1.0f, 3.0f});
  Tensor target(Shape{2, 1}, {0.0f, 1.0f});
  EXPECT_NEAR(loss.Forward(pred, target), (1.0f + 4.0f) / 2.0f, 1e-6f);
  Tensor grad = loss.Backward();
  EXPECT_NEAR(grad.at(0), 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(1), 2.0f * 2.0f / 2.0f, 1e-6f);
}

TEST(LossTest, MSEZeroWhenEqual) {
  MSELoss loss;
  Tensor x(Shape{3, 1}, {1, 2, 3});
  EXPECT_EQ(loss.Forward(x, x), 0.0f);
}

TEST(LossTest, CrossEntropyKnownValue) {
  CrossEntropyLoss loss;
  // Uniform logits => loss = log(num_classes).
  Tensor pred = Tensor::Zeros(Shape{1, 10});
  Tensor target(Shape{1}, {3.0f});
  EXPECT_NEAR(loss.Forward(pred, target), std::log(10.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyGradientSumsToZero) {
  CrossEntropyLoss loss;
  Tensor pred = RandomTensor(Shape{4, 10}, 17);
  Tensor target(Shape{4}, {0.0f, 3.0f, 9.0f, 5.0f});
  loss.Forward(pred, target);
  Tensor grad = loss.Backward();
  for (size_t i = 0; i < 4; ++i) {
    float row_sum = 0.0f;
    for (size_t j = 0; j < 10; ++j) row_sum += grad.at2(i, j);
    EXPECT_NEAR(row_sum, 0.0f, 1e-5f);
  }
}

TEST(LossTest, CrossEntropyGradCheck) {
  CrossEntropyLoss loss;
  Tensor pred = RandomTensor(Shape{3, 5}, 19);
  Tensor target(Shape{3}, {1.0f, 4.0f, 0.0f});
  loss.Forward(pred, target);
  Tensor grad = loss.Backward();
  const float eps = 1e-2f;
  for (size_t i = 0; i < pred.numel(); i += 3) {
    Tensor plus = pred, minus = pred;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    CrossEntropyLoss fresh;
    float numeric =
        (fresh.Forward(plus, target) - fresh.Forward(minus, target)) / (2 * eps);
    EXPECT_NEAR(grad.at(i), numeric, 1e-3f);
  }
}

TEST(OptimizerTest, SGDStepMath) {
  Parameter p("w", Tensor(Shape{2}, {1.0f, 2.0f}));
  p.grad = Tensor(Shape{2}, {0.5f, -1.0f});
  SGD sgd({&p}, /*learning_rate=*/0.1f);
  sgd.Step();
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.1f * 0.5f, 1e-6f);
  EXPECT_NEAR(p.value.at(1), 2.0f + 0.1f * 1.0f, 1e-6f);
}

TEST(OptimizerTest, SGDSkipsFrozenParameters) {
  Parameter p("w", Tensor(Shape{1}, {1.0f}));
  p.grad = Tensor(Shape{1}, {1.0f});
  p.trainable = false;
  SGD sgd({&p}, 0.1f);
  sgd.Step();
  EXPECT_EQ(p.value.at(0), 1.0f);
}

TEST(OptimizerTest, SGDMomentumAccumulates) {
  Parameter p("w", Tensor(Shape{1}, {0.0f}));
  SGD sgd({&p}, 0.1f, /*momentum=*/0.9f);
  p.grad = Tensor(Shape{1}, {1.0f});
  sgd.Step();  // v=1,   w=-0.1
  sgd.Step();  // v=1.9, w=-0.29
  EXPECT_NEAR(p.value.at(0), -0.29f, 1e-6f);
}

TEST(OptimizerTest, SGDWeightDecayShrinks) {
  Parameter p("w", Tensor(Shape{1}, {10.0f}));
  p.grad = Tensor(Shape{1}, {0.0f});
  SGD sgd({&p}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  sgd.Step();
  EXPECT_NEAR(p.value.at(0), 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w-3).
  Parameter p("w", Tensor(Shape{1}, {0.0f}));
  Adam adam({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad = Tensor(Shape{1}, {2.0f * (p.value.at(0) - 3.0f)});
    adam.Step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 0.05f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Parameter p("w", Tensor(Shape{2}, {1, 1}));
  p.grad = Tensor(Shape{2}, {5, 5});
  SGD sgd({&p}, 0.1f);
  sgd.ZeroGrad();
  EXPECT_TRUE(p.grad.Equals(Tensor(Shape{2})));
}

}  // namespace
}  // namespace mmm
