#include <gtest/gtest.h>

#include <cmath>

#include "battery/data_gen.h"
#include "battery/drive_cycle.h"
#include "battery/ecm.h"
#include "battery/ocv.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TEST(OcvTest, MonotonicallyIncreasing) {
  double previous = OcvCurve::Voltage(0.0);
  for (double soc = 0.01; soc <= 1.0; soc += 0.01) {
    double v = OcvCurve::Voltage(soc);
    EXPECT_GT(v, previous) << "at soc " << soc;
    previous = v;
  }
}

TEST(OcvTest, EndpointsAreLiIonTypical) {
  EXPECT_NEAR(OcvCurve::Voltage(0.0), 2.8, 0.01);
  EXPECT_NEAR(OcvCurve::Voltage(1.0), 4.2, 0.01);
  EXPECT_GT(OcvCurve::Voltage(0.5), 3.5);
  EXPECT_LT(OcvCurve::Voltage(0.5), 3.8);
}

TEST(OcvTest, ClampsOutOfRange) {
  EXPECT_EQ(OcvCurve::Voltage(-0.5), OcvCurve::Voltage(0.0));
  EXPECT_EQ(OcvCurve::Voltage(1.5), OcvCurve::Voltage(1.0));
}

TEST(OcvTest, SlopeIsPositive) {
  for (double soc = 0.0; soc <= 1.0; soc += 0.05) {
    EXPECT_GT(OcvCurve::Slope(soc), 0.0);
  }
}

TEST(OcvTest, InterpolationIsExactAtKnots) {
  // Knot spacing is 1/(KnotCount-1); interpolation midway should lie between
  // the neighbors.
  double step = 1.0 / (OcvCurve::KnotCount() - 1);
  double mid = OcvCurve::Voltage(step / 2);
  EXPECT_GT(mid, OcvCurve::Voltage(0.0));
  EXPECT_LT(mid, OcvCurve::Voltage(step));
}

TEST(EcmTest, DischargeDropsSocAndSagsVoltage) {
  EcmCell cell(EcmParameters{});
  cell.ResetState(0.9);
  double ocv = OcvCurve::Voltage(0.9);
  double v = cell.Step(/*current_a=*/5.0, /*dt_seconds=*/1.0);
  EXPECT_LT(v, ocv);              // voltage sag under load
  EXPECT_LT(cell.state().soc, 0.9);
}

TEST(EcmTest, ChargeRaisesVoltageAboveOcv) {
  EcmCell cell(EcmParameters{});
  cell.ResetState(0.5);
  double ocv = OcvCurve::Voltage(0.5);
  double v = cell.Step(/*current_a=*/-3.0, 1.0);
  EXPECT_GT(v, ocv);
  EXPECT_GT(cell.state().soc, 0.5);
}

TEST(EcmTest, RestRelaxesPolarization) {
  EcmCell cell(EcmParameters{});
  cell.ResetState(0.8);
  for (int i = 0; i < 60; ++i) cell.Step(8.0, 1.0);
  double polarization_after_load =
      cell.state().v_rc1_volt + cell.state().v_rc2_volt;
  EXPECT_GT(polarization_after_load, 0.01);
  for (int i = 0; i < 600; ++i) cell.Step(0.0, 1.0);
  double polarization_after_rest =
      cell.state().v_rc1_volt + cell.state().v_rc2_volt;
  EXPECT_LT(polarization_after_rest, polarization_after_load * 0.2);
}

TEST(EcmTest, CoulombCountingMatchesCapacity) {
  EcmParameters params;
  params.capacity_ah = 2.0;
  EcmCell cell(params);
  cell.ResetState(1.0);
  // Discharge 1 A for 1 hour = 1 Ah = half the capacity.
  for (int i = 0; i < 3600; ++i) cell.Step(1.0, 1.0);
  EXPECT_NEAR(cell.state().soc, 0.5, 0.01);
}

TEST(EcmTest, TemperatureRisesUnderLoadAndRelaxes) {
  EcmCell cell(EcmParameters{}, /*ambient=*/25.0);
  cell.ResetState(0.9);
  for (int i = 0; i < 300; ++i) cell.Step(10.0, 1.0);
  double hot = cell.state().temperature_c;
  EXPECT_GT(hot, 25.5);
  for (int i = 0; i < 3600; ++i) cell.Step(0.0, 1.0);
  EXPECT_LT(cell.state().temperature_c, hot);
  EXPECT_NEAR(cell.state().temperature_c, 25.0, 1.0);
}

TEST(EcmTest, AgingIncreasesSagAndDropsCapacity) {
  EcmCell fresh(EcmParameters{});
  EcmCell aged(EcmParameters{});
  aged.SetSoh(0.8);
  fresh.ResetState(0.8);
  aged.ResetState(0.8);
  double v_fresh = fresh.Step(8.0, 1.0);
  double v_aged = aged.Step(8.0, 1.0);
  EXPECT_LT(v_aged, v_fresh);  // more resistance when aged
  EXPECT_LT(aged.EffectiveCapacityAh(), fresh.EffectiveCapacityAh());
}

TEST(EcmTest, SohIsClamped) {
  EcmCell cell(EcmParameters{});
  cell.SetSoh(0.1);
  EXPECT_EQ(cell.state().soh, 0.5);
  cell.SetSoh(1.5);
  EXPECT_EQ(cell.state().soh, 1.0);
}

TEST(EcmTest, SocIsClamped) {
  EcmCell cell(EcmParameters{});
  cell.ResetState(0.01);
  for (int i = 0; i < 600; ++i) cell.Step(20.0, 10.0);
  EXPECT_EQ(cell.state().soc, 0.0);
}

TEST(EcmTest, PerturbedParametersDifferPerCell) {
  Rng rng_a = Rng(7).Fork("cell-params", 1);
  Rng rng_b = Rng(7).Fork("cell-params", 2);
  EcmParameters a = EcmParameters::Perturbed(EcmParameters{}, &rng_a);
  EcmParameters b = EcmParameters::Perturbed(EcmParameters{}, &rng_b);
  EXPECT_NE(a.r0_ohm, b.r0_ohm);
  // ... but are reproducible for the same stream.
  Rng rng_a2 = Rng(7).Fork("cell-params", 1);
  EcmParameters a2 = EcmParameters::Perturbed(EcmParameters{}, &rng_a2);
  EXPECT_EQ(a.r0_ohm, a2.r0_ohm);
}

TEST(DriveCycleTest, DeterministicPerCycleIndex) {
  DriveCycleGenerator gen(42);
  EXPECT_EQ(gen.Generate(3, 500), gen.Generate(3, 500));
  EXPECT_NE(gen.Generate(3, 500), gen.Generate(4, 500));
}

TEST(DriveCycleTest, RespectsCurrentBounds) {
  DriveCycleGenerator gen(1);
  for (uint64_t cycle = 0; cycle < 5; ++cycle) {
    for (double current : gen.Generate(cycle, 2000)) {
      EXPECT_LE(current, DriveCycleGenerator::kMaxDischargeA);
      EXPECT_GE(current, -DriveCycleGenerator::kMaxRegenA);
    }
  }
}

TEST(DriveCycleTest, ProducesRequestedLength) {
  DriveCycleGenerator gen(1);
  EXPECT_EQ(gen.Generate(0, 1).size(), 1u);
  EXPECT_EQ(gen.Generate(0, 1234).size(), 1234u);
}

TEST(DriveCycleTest, ContainsBothDischargeAndRegen) {
  DriveCycleGenerator gen(5);
  std::vector<double> trace = gen.Generate(0, 5000);
  double max_current = *std::max_element(trace.begin(), trace.end());
  double min_current = *std::min_element(trace.begin(), trace.end());
  EXPECT_GT(max_current, 3.0);   // real acceleration happens
  EXPECT_LT(min_current, -0.5);  // regenerative braking happens
}

TEST(DriveCycleTest, NetDischargeOverLongHorizon) {
  DriveCycleGenerator gen(6);
  std::vector<double> trace = gen.Generate(1, 10000);
  double total = 0.0;
  for (double c : trace) total += c;
  EXPECT_GT(total, 0.0);  // driving consumes energy overall
}

TEST(BatteryDataGenTest, ShapesAndDeterminism) {
  BatteryDataConfig config;
  config.samples_per_cycle = 100;
  BatteryDataGenerator gen(config);
  TrainingData a = gen.GenerateCellDataset(3, 1, 0.95);
  EXPECT_EQ(a.inputs.shape(), (Shape{100, 4}));
  EXPECT_EQ(a.targets.shape(), (Shape{100, 1}));
  TrainingData b = gen.GenerateCellDataset(3, 1, 0.95);
  EXPECT_TRUE(a.inputs.Equals(b.inputs));
  EXPECT_TRUE(a.targets.Equals(b.targets));
}

TEST(BatteryDataGenTest, DifferentCellsAndCyclesDiffer) {
  BatteryDataConfig config;
  config.samples_per_cycle = 50;
  BatteryDataGenerator gen(config);
  TrainingData base = gen.GenerateCellDataset(1, 1, 0.95);
  EXPECT_FALSE(base.targets.Equals(gen.GenerateCellDataset(2, 1, 0.95).targets));
  EXPECT_FALSE(base.targets.Equals(gen.GenerateCellDataset(1, 2, 0.95).targets));
}

TEST(BatteryDataGenTest, SohChangesTargets) {
  BatteryDataConfig config;
  config.samples_per_cycle = 50;
  BatteryDataGenerator gen(config);
  TrainingData fresh = gen.GenerateCellDataset(1, 1, 1.0);
  TrainingData aged = gen.GenerateCellDataset(1, 1, 0.8);
  EXPECT_TRUE(fresh.inputs.AllClose(aged.inputs, 1e-2f));  // same drive trace
  EXPECT_FALSE(fresh.targets.AllClose(aged.targets, 1e-4f));
}

TEST(BatteryDataGenTest, NormalizedFeaturesAreBounded) {
  BatteryDataConfig config;
  config.samples_per_cycle = 500;
  BatteryDataGenerator gen(config);
  TrainingData data = gen.GenerateCellDataset(7, 2, 0.9);
  for (float x : data.inputs.data()) {
    EXPECT_LT(std::fabs(x), 3.0f);
  }
  for (float y : data.targets.data()) {
    EXPECT_LT(std::fabs(y), 3.0f);
  }
}

TEST(BatteryDataGenTest, PackDatasetsShapesAndDeterminism) {
  BatteryDataConfig config;
  config.samples_per_cycle = 60;
  BatteryDataGenerator gen(config);
  std::vector<double> sohs{1.0, 0.95, 0.9, 1.0};
  std::vector<TrainingData> a = gen.GeneratePackDatasets(3, 1, sohs);
  ASSERT_EQ(a.size(), 4u);
  for (const TrainingData& data : a) {
    EXPECT_EQ(data.inputs.shape(), (Shape{60, 4}));
    EXPECT_EQ(data.targets.shape(), (Shape{60, 1}));
  }
  std::vector<TrainingData> b = gen.GeneratePackDatasets(3, 1, sohs);
  EXPECT_TRUE(a[2].targets.Equals(b[2].targets));
  std::vector<TrainingData> other_pack = gen.GeneratePackDatasets(4, 1, sohs);
  EXPECT_FALSE(a[2].targets.Equals(other_pack[2].targets));
}

TEST(BatteryDataGenTest, PackCellsShareCurrentButDifferInVoltage) {
  BatteryDataConfig config;
  config.samples_per_cycle = 100;
  BatteryDataGenerator gen(config);
  std::vector<TrainingData> datasets =
      gen.GeneratePackDatasets(1, 1, {1.0, 1.0, 0.8});
  // Column 0 (current) identical across cells; targets differ (cell 2 is
  // aged, plus manufacturing spread).
  for (size_t t = 0; t < 100; ++t) {
    EXPECT_EQ(datasets[0].inputs.at2(t, 0), datasets[1].inputs.at2(t, 0));
  }
  EXPECT_FALSE(datasets[0].targets.AllClose(datasets[2].targets, 1e-4f));
}

TEST(BatteryDataGenTest, NoiseMakesTargetsNonSmooth) {
  // With zero noise the same config yields smoother targets; the noisy
  // version must differ from the clean one.
  BatteryDataConfig noisy;
  noisy.samples_per_cycle = 50;
  BatteryDataConfig clean = noisy;
  clean.voltage_noise_stddev = 0.0;
  TrainingData a = BatteryDataGenerator(noisy).GenerateCellDataset(1, 1, 1.0);
  TrainingData b = BatteryDataGenerator(clean).GenerateCellDataset(1, 1, 1.0);
  EXPECT_TRUE(a.inputs.Equals(b.inputs));
  EXPECT_FALSE(a.targets.Equals(b.targets));
}

}  // namespace
}  // namespace mmm
