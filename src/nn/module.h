#ifndef MMM_NN_MODULE_H_
#define MMM_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace mmm {

/// \brief Base class of all neural-network layers.
///
/// Training uses explicit reverse-mode differentiation: Forward caches
/// whatever the layer needs, Backward consumes the output gradient and
/// returns the input gradient while accumulating parameter gradients.
/// Modules are single-threaded and evaluate in a fixed order, keeping
/// training bit-deterministic (required by the Provenance approach).
class Module {
 public:
  virtual ~Module() = default;

  /// Layer type identifier used in ArchitectureSpec ("linear", "conv2d", ...).
  virtual std::string TypeName() const = 0;

  /// Computes the layer output; caches activations needed by Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Propagates `grad_output` backward; accumulates parameter gradients and
  /// returns the gradient with respect to the forward input. Must be called
  /// after Forward on the same input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Pointers to this module's own parameters (empty for activations).
  virtual std::vector<Parameter*> Parameters() { return {}; }
};

}  // namespace mmm

#endif  // MMM_NN_MODULE_H_
