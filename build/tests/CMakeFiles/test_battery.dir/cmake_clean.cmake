file(REMOVE_RECURSE
  "CMakeFiles/test_battery.dir/test_battery.cc.o"
  "CMakeFiles/test_battery.dir/test_battery.cc.o.d"
  "test_battery"
  "test_battery.pdb"
  "test_battery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
