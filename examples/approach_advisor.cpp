// Approach selection heuristic (the future work announced in §4.5,
// implemented): given a workload profile, estimate each approach's per-cycle
// storage, save time, and recovery time, and recommend the best fit.
//
// Run: ./build/examples/approach_advisor

#include <cstdio>

#include "core/recommend.h"

using namespace mmm;  // NOLINT — example code

namespace {

void Advise(const char* title, const WorkloadProfile& workload) {
  Recommendation rec = RecommendApproach(workload);
  std::printf("\n--- %s ---\n", title);
  std::printf("%-12s | %12s | %10s | %12s | %8s\n", "approach",
              "storage/cycle", "save (s)", "recover (s)", "score");
  for (const ApproachCostEstimate& e : rec.estimates) {
    std::printf("%-12s | %9.2f MB | %10.3f | %12.1f | %8.3f%s\n",
                ApproachTypeName(e.approach).c_str(),
                e.storage_bytes_per_cycle / 1e6, e.save_seconds,
                e.recover_seconds, e.weighted_score,
                e.approach == rec.approach ? "  <= recommended" : "");
  }
  std::printf("%s\n", rec.rationale.c_str());
}

}  // namespace

int main() {
  std::printf("=== Multi-model management approach advisor ===\n");

  // 1. The paper's deployment scenario: archive everything, recover rarely.
  WorkloadProfile archive;
  Advise("Archival fleet (paper default: storage first, recoveries rare)",
         archive);

  // 2. A debugging-heavy deployment: every saved set is recovered often.
  WorkloadProfile debugging;
  debugging.recoveries_per_save = 2.0;
  debugging.recover_time_weight = 5.0;
  debugging.storage_weight = 0.2;
  Advise("Interactive debugging (recoveries frequent, TTR critical)",
         debugging);

  // 3. Retraining is expensive (big models / big data) but storage matters.
  WorkloadProfile expensive_retrain;
  expensive_retrain.retrain_seconds_per_model = 3600.0;
  expensive_retrain.recoveries_per_save = 0.5;
  expensive_retrain.recover_time_weight = 1.0;
  Advise("Storage-conscious with costly retraining", expensive_retrain);

  // 4. Small fleet of large models (single-model-management territory).
  WorkloadProfile large_models;
  large_models.num_models = 20;
  large_models.params_per_model = 25'000'000;  // ResNet-scale
  large_models.update_rate = 0.5;
  Advise("Few large models, high update rate", large_models);

  return 0;
}
