// The bad variant with an MMMSA suppression on the inverting acquisition.
#ifndef SA_FIXTURE_RANK_INVERSION_SUPPRESSED_H_
#define SA_FIXTURE_RANK_INVERSION_SUPPRESSED_H_

class Inverted {
 public:
  void Publish() {
    MutexLock inner_first(high_);
    // MMMSA(lock-order): seeded fixture, inversion is the point
    MutexLock outer_second(low_);
    ++epoch_;
  }

 private:
  Mutex low_ MMM_LOCK_RANK(10);
  Mutex high_ MMM_LOCK_RANK(20);
  int epoch_ = 0;
};

#endif  // SA_FIXTURE_RANK_INVERSION_SUPPRESSED_H_
