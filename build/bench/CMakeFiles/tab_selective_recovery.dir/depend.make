# Empty dependencies file for tab_selective_recovery.
# This may be replaced when dependencies are built.
