#include "core/gc.h"

#include <map>
#include <set>

#include "cas/manifest.h"
#include "common/strings.h"
#include "core/mmlib_base.h"
#include "core/set_codec.h"

namespace mmm {
namespace {

/// Deletes one artifact blob, CAS-aware: a chunked blob's manifest is
/// unregistered first so its chunks' refcounts drop (the zero-refcount
/// chunks are reclaimed by the sweep the caller runs afterwards — the
/// decrement-then-sweep protocol of DESIGN.md §10).
Status DeleteArtifactBlob(const StoreContext& context, const std::string& blob,
                          DeleteReport* report) {
  auto size = context.file_store->Size(blob);
  if (size.ok()) {
    report->bytes_reclaimed += size.ValueOrDie();
    ++report->blobs_deleted;
  }
  if (context.cas != nullptr) context.cas->OnManifestDeleted(blob);
  return context.file_store->Delete(blob);
}

/// Reclaims every chunk no surviving manifest references; folds the freed
/// blobs into the report. No-op without CAS.
Status SweepCasChunks(const StoreContext& context, DeleteReport* report) {
  if (context.cas == nullptr) return Status::OK();
  MMM_ASSIGN_OR_RETURN(CasStore::SweepReport swept,
                       context.cas->SweepZeroRefChunks());
  report->blobs_deleted += swept.chunks_swept;
  report->bytes_reclaimed += swept.bytes_swept;
  report->chunks_swept += swept.chunks_swept;
  return Status::OK();
}

Result<std::map<std::string, SetDocument>> LoadAllSetDocs(
    const StoreContext& context) {
  std::map<std::string, SetDocument> by_id;
  if (context.doc_store->Count(kSetCollection) == 0) return by_id;
  MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> docs,
                       context.doc_store->All(kSetCollection));
  for (const JsonValue& json : docs) {
    MMM_ASSIGN_OR_RETURN(SetDocument doc, SetDocument::FromJson(json));
    by_id[doc.id] = std::move(doc);
  }
  return by_id;
}

/// Deletes one set's artifacts and documents (no dependency checks).
Status DeleteOne(const StoreContext& context, const SetDocument& doc,
                 DeleteReport* report) {
  for (const std::string& blob :
       {doc.arch_blob, doc.param_blob, doc.hash_blob, doc.diff_blob,
        doc.prov_blob}) {
    if (blob.empty()) continue;
    MMM_RETURN_NOT_OK(DeleteArtifactBlob(context, blob, report));
  }
  if (doc.approach == "mmlib-base") {
    for (uint64_t index = 0; index < doc.num_models; ++index) {
      std::string model_id = StringFormat(
          "%s-m%05llu", doc.id.c_str(), static_cast<unsigned long long>(index));
      auto model_doc = context.doc_store->Get(kMmlibModelCollection, model_id);
      if (model_doc.ok()) {
        for (const char* field : {"weights_blob", "code_blob"}) {
          auto blob = model_doc.ValueOrDie().GetString(field);
          if (!blob.ok()) continue;
          MMM_RETURN_NOT_OK(
              DeleteArtifactBlob(context, blob.ValueOrDie(), report));
        }
        MMM_RETURN_NOT_OK(
            context.doc_store->Remove(kMmlibModelCollection, model_id));
      }
    }
  }
  MMM_RETURN_NOT_OK(context.doc_store->Remove(kSetCollection, doc.id));
  ++report->sets_deleted;
  report->deleted_set_ids.push_back(doc.id);
  return Status::OK();
}

/// Collects `set_id` and (transitively) every dependent set, dependents
/// first so deletion never leaves a dangling base link.
void CollectCascade(const std::map<std::string, SetDocument>& by_id,
                    const std::string& set_id,
                    std::vector<std::string>* ordered,
                    std::set<std::string>* visited) {
  if (visited->contains(set_id)) return;
  visited->insert(set_id);
  for (const auto& [id, doc] : by_id) {
    if (doc.base_set_id == set_id && doc.kind != "full") {
      CollectCascade(by_id, id, ordered, visited);
    }
  }
  ordered->push_back(set_id);
}

}  // namespace

Result<DeleteReport> DeleteSet(const StoreContext& context,
                               const std::string& set_id,
                               const DeleteOptions& options) {
  MMM_RETURN_NOT_OK(context.Validate());
  MMM_ASSIGN_OR_RETURN(auto by_id, LoadAllSetDocs(context));
  if (!by_id.contains(set_id)) {
    return Status::NotFound("no set '", set_id, "'");
  }
  // Dependents are sets that cannot be recovered without this one: deltas
  // and provenance records. Full snapshots that merely record lineage are
  // unaffected.
  std::vector<std::string> dependents;
  for (const auto& [id, doc] : by_id) {
    if (doc.base_set_id == set_id && doc.kind != "full") {
      dependents.push_back(id);
    }
  }
  if (!dependents.empty() && !options.cascade) {
    return Status::InvalidArgument("set ", set_id, " has ", dependents.size(),
                                   " dependent set(s), e.g. ", dependents[0],
                                   "; pass cascade to delete them too");
  }

  DeleteReport report;
  std::vector<std::string> ordered;
  std::set<std::string> visited;
  CollectCascade(by_id, set_id, &ordered, &visited);
  for (const std::string& id : ordered) {
    MMM_RETURN_NOT_OK(DeleteOne(context, by_id.at(id), &report));
  }
  MMM_RETURN_NOT_OK(SweepCasChunks(context, &report));
  return report;
}

Result<DeleteReport> RetainOnly(const StoreContext& context,
                                const std::vector<std::string>& keep_set_ids) {
  MMM_RETURN_NOT_OK(context.Validate());
  MMM_ASSIGN_OR_RETURN(auto by_id, LoadAllSetDocs(context));

  // Lineage closure of the keep list.
  std::set<std::string> keep;
  for (const std::string& id : keep_set_ids) {
    if (!by_id.contains(id)) {
      return Status::NotFound("cannot retain unknown set '", id, "'");
    }
    std::string current = id;
    uint64_t budget = by_id.size() + 1;
    while (!current.empty() && by_id.contains(current)) {
      if (budget-- == 0) {
        return Status::Corruption("lineage of ", id, " does not terminate");
      }
      if (!keep.insert(current).second) break;  // already covered
      current = by_id.at(current).base_set_id;
    }
  }

  DeleteReport report;
  for (const auto& [id, doc] : by_id) {
    if (keep.contains(id)) continue;
    MMM_RETURN_NOT_OK(DeleteOne(context, doc, &report));
  }
  MMM_RETURN_NOT_OK(SweepCasChunks(context, &report));
  return report;
}

Result<OrphanReport> FindOrphanBlobs(const StoreContext& context) {
  MMM_RETURN_NOT_OK(context.Validate());
  std::set<std::string> live;
  MMM_ASSIGN_OR_RETURN(auto by_id, LoadAllSetDocs(context));
  for (const auto& [id, doc] : by_id) {
    for (const std::string& blob :
         {doc.arch_blob, doc.param_blob, doc.hash_blob, doc.diff_blob,
          doc.prov_blob}) {
      if (!blob.empty()) live.insert(blob);
    }
  }
  if (context.doc_store->Count(kMmlibModelCollection) > 0) {
    MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> model_docs,
                         context.doc_store->All(kMmlibModelCollection));
    for (const JsonValue& doc : model_docs) {
      for (const char* field : {"weights_blob", "code_blob"}) {
        auto blob = doc.GetString(field);
        if (blob.ok()) live.insert(blob.ValueOrDie());
      }
    }
  }
  if (context.journal != nullptr) {
    for (const std::string& blob : context.journal->PendingBlobs()) {
      live.insert(blob);
    }
  }

  OrphanReport report;
  MMM_ASSIGN_OR_RETURN(std::vector<std::string> blobs,
                       context.file_store->List());
  for (const std::string& blob : blobs) {
    if (live.contains(blob)) continue;
    // Content-addressed chunks are reference-counted, not document-
    // referenced: a chunk is live while any manifest in the store points at
    // it (including a manifest that is itself orphaned — deleting that
    // manifest drops the refs, and the CAS sweep then reclaims the chunk).
    // Only genuinely zero-ref chunks are orphans.
    if (context.cas != nullptr && IsChunkBlobName(blob) &&
        context.cas->RefCount(ChunkHexOfBlobName(blob)) > 0) {
      continue;
    }
    report.orphan_blobs.push_back(blob);
    auto size = context.file_store->Size(blob);
    if (size.ok()) report.orphan_bytes += size.ValueOrDie();
  }
  return report;
}

Result<DeleteReport> SweepOrphanBlobs(const StoreContext& context) {
  MMM_ASSIGN_OR_RETURN(OrphanReport orphans, FindOrphanBlobs(context));
  DeleteReport report;
  for (const std::string& blob : orphans.orphan_blobs) {
    if (context.cas != nullptr) {
      // Chunk blobs belong to the CAS sweeper (the refcount index must stay
      // in step with the store); an orphaned manifest must drop its chunk
      // refs before it goes. The sweep below reclaims both kinds and does
      // its own byte accounting, so chunk sizes are not pre-counted here.
      if (IsChunkBlobName(blob)) continue;
      context.cas->OnManifestDeleted(blob);
    }
    auto size = context.file_store->Size(blob);
    if (size.ok()) report.bytes_reclaimed += size.ValueOrDie();
    MMM_RETURN_NOT_OK(context.file_store->Delete(blob));
    ++report.blobs_deleted;
  }
  MMM_RETURN_NOT_OK(SweepCasChunks(context, &report));
  if (context.cas != nullptr) {
    // Chunks never tracked by any manifest (an aborted commit's leftovers)
    // are invisible to the refcount sweep; reclaim them here.
    MMM_ASSIGN_OR_RETURN(CasStore::SweepReport untracked,
                         context.cas->SweepUntrackedChunks());
    report.blobs_deleted += untracked.chunks_swept;
    report.bytes_reclaimed += untracked.bytes_swept;
    report.chunks_swept += untracked.chunks_swept;
  }
  return report;
}

}  // namespace mmm
