// Fixture: the same violations carry justified suppressions, so the file
// must lint clean.
#include <random>

int Roll() {
  // MMMLINT(banned-random): fixture exercising the suppression syntax
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

long Now() { return time(nullptr); }  // MMMLINT(banned-random): fixture
