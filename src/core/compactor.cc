#include "core/compactor.h"

#include <map>
#include <utility>

#include "core/set_codec.h"

namespace mmm {

namespace {

/// One planned rebase: the set to re-save as a full snapshot plus the
/// descendants whose recorded chain_depth shrinks to their distance from it.
struct PlannedRebase {
  std::string set_id;
  std::vector<std::pair<std::string, uint64_t>> segment;
};

/// The blob a rebase supersedes: the delta's diff or the provenance record.
const std::string& SupersededBlob(const SetDocument& doc) {
  return doc.kind == "delta" ? doc.diff_blob : doc.prov_blob;
}

}  // namespace

ChainCompactor::ChainCompactor(StoreContext context, CompactorRecoverFn recover)
    : context_(context), recover_(std::move(recover)) {}

Result<CompactionReport> ChainCompactor::Compact(const CompactionPolicy& policy) {
  MMM_RETURN_NOT_OK(context_.Validate());
  CompactionReport report;
  if (context_.doc_store->Count(kSetCollection) == 0) return report;

  MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> raw,
                       context_.doc_store->All(kSetCollection));
  std::map<std::string, SetDocument> by_id;
  std::vector<std::string> order;  // insertion order, for deterministic plans
  for (const JsonValue& json : raw) {
    MMM_ASSIGN_OR_RETURN(SetDocument doc, SetDocument::FromJson(json));
    order.push_back(doc.id);
    by_id[doc.id] = std::move(doc);
  }
  // Chain edges: a derived (non-full) set hangs off its base. Full snapshots
  // with a base_set_id keep it as lineage only — they root their own chain.
  std::map<std::string, std::vector<std::string>> children;
  std::vector<std::string> roots;
  for (const std::string& id : order) {
    const SetDocument& doc = by_id.at(id);
    if (doc.kind == "full") {
      roots.push_back(id);
    } else if (by_id.contains(doc.base_set_id)) {
      children[doc.base_set_id].push_back(id);
    }
  }

  // Plan pass: walk each chain from its root computing the depth every set
  // would have after the rebases planned so far; any set past the bound
  // becomes the next rebase point (depth resets to zero there). `owner` is
  // the index of the nearest planned rebase above the walk, -1 under the
  // root: only sets owned by a planned rebase change depth and need their
  // document rewritten.
  std::vector<PlannedRebase> plan;
  struct Frame {
    std::string id;
    uint64_t depth;
    int owner;
    uint64_t dist;
  };
  for (const std::string& root : roots) {
    ++report.chains_scanned;
    std::vector<Frame> stack{{root, 0, -1, 0}};
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      auto it = children.find(frame.id);
      if (it == children.end()) continue;
      for (const std::string& child : it->second) {
        uint64_t depth = frame.depth + 1;
        if (depth > policy.max_chain_depth) {
          plan.push_back({child, {}});
          stack.push_back(
              {child, 0, static_cast<int>(plan.size()) - 1, 0});
          continue;
        }
        if (frame.owner >= 0) {
          uint64_t dist = frame.dist + 1;
          plan[frame.owner].segment.emplace_back(child, dist);
          stack.push_back({child, depth, frame.owner, dist});
        } else {
          stack.push_back({child, depth, -1, 0});
        }
      }
    }
  }

  // Execute pass, one journaled commit per rebase. Skips (byte gate,
  // unrecoverable sets) are local: the store stays consistent — the skipped
  // segment simply keeps its old, longer chain.
  for (const PlannedRebase& planned : plan) {
    const SetDocument& old_doc = by_id.at(planned.set_id);
    const std::string& superseded = SupersededBlob(old_doc);
    uint64_t reclaim = 0;
    if (!superseded.empty()) {
      auto size = context_.file_store->Size(superseded);
      if (size.ok()) reclaim = size.ValueOrDie();
    }
    if (reclaim < policy.min_bytes_reclaimed) {
      report.skipped.push_back(planned.set_id + ": reclaims " +
                               std::to_string(reclaim) +
                               " bytes, policy floor is " +
                               std::to_string(policy.min_bytes_reclaimed));
      continue;
    }
    if (policy.dry_run) {
      ++report.sets_rebased;
      report.docs_rewritten += 1 + planned.segment.size();
      report.bytes_reclaimed += reclaim;
      report.rebased_set_ids.push_back(planned.set_id);
      report.rewritten_set_ids.push_back(planned.set_id);
      for (const auto& [id, depth] : planned.segment) {
        report.rewritten_set_ids.push_back(id);
      }
      continue;
    }

    // Materialize the rebase point bit-exactly through the normal recovery
    // path (dispatched on the set's approach).
    Result<ModelSet> recovered = recover_(planned.set_id);
    if (!recovered.ok()) {
      report.skipped.push_back(planned.set_id + ": cannot recover: " +
                               recovered.status().ToString());
      continue;
    }
    ModelSet set = std::move(recovered).ValueOrDie();

    StatsCapture capture(context_);
    StoreBatch batch = MakeBatch(context_);
    batch.AnnotateCommit(planned.set_id, "compact");
    // Same-id rebase: the snapshot blobs take names only full-kind sets own
    // (`<id>.arch.json` / `<id>.params.bin`), so nothing live is touched
    // until the commit mark; base_set_id stays as lineage and the update
    // approach's hash blob is kept — its content (the set's own per-layer
    // hashes) does not change under a rebase.
    SetDocument new_doc = old_doc;
    new_doc.diff_blob.clear();
    new_doc.prov_blob.clear();
    MMM_RETURN_NOT_OK(
        StageFullSnapshot(context_, &batch, planned.set_id, set, &new_doc));
    batch.ReplaceDocument(kSetCollection, new_doc.ToJson());
    std::vector<SetDocument> rewritten_docs;
    rewritten_docs.reserve(planned.segment.size());
    for (const auto& [id, depth] : planned.segment) {
      SetDocument desc = by_id.at(id);
      desc.chain_depth = depth;
      batch.ReplaceDocument(kSetCollection, desc.ToJson());
      rewritten_docs.push_back(std::move(desc));
    }
    if (!superseded.empty()) batch.DeleteBlob(superseded);
    MMM_RETURN_NOT_OK(batch.Commit());

    SaveResult written;
    capture.FillSave(&written);
    report.bytes_written += written.bytes_written;
    report.bytes_reclaimed += reclaim;
    ++report.sets_rebased;
    report.docs_rewritten += 1 + planned.segment.size();
    report.rebased_set_ids.push_back(planned.set_id);
    report.rewritten_set_ids.push_back(planned.set_id);
    for (const auto& [id, depth] : planned.segment) {
      report.rewritten_set_ids.push_back(id);
    }
    by_id[planned.set_id] = std::move(new_doc);
    for (SetDocument& desc : rewritten_docs) {
      by_id[desc.id] = std::move(desc);
    }
  }
  return report;
}

}  // namespace mmm
