// Ablation (design choice from §2.2/§3.3): periodic full snapshots in the
// Update approach.
//
// The paper saves only the very first set fully, which makes recovery
// recursively more expensive; it notes that "recursively increasing recovery
// times ... can be prevented by saving intermediate model snapshots using
// the baseline approach". This bench sweeps the snapshot interval and
// reports the storage/TTR trade-off over a 6-cycle chain.
//
// Knobs: MMM_MODELS (default 1000), MMM_SAMPLES (128).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/1000,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 128));
  knobs.Describe("tab_ablation_snapshot_interval");

  constexpr size_t kCycles = 6;
  struct Row {
    std::string label;
    uint64_t snapshot_interval;
  };
  const Row rows[] = {
      {"never", std::numeric_limits<uint64_t>::max()},  // the paper's setting
      {"every 4", 4},
      {"every 2", 2},
      {"every 1", 1},  // degenerates to Baseline + hashes
  };

  std::printf(
      "\nUpdate approach, %zu models, %zu U3 cycles: total storage vs "
      "TTR of the newest set\n",
      knobs.models, kCycles);
  std::printf("%-10s | %14s | %12s | %10s\n", "snapshot", "total MB written",
              "TTR (s)", "sets walked");

  for (const Row& row : rows) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.u3_iterations = kCycles;
    config.runs = 1;
    config.measure_ttr = false;  // we measure the final TTR ourselves below
    config.approaches = {ApproachType::kUpdate};
    config.update_options.snapshot_interval = row.snapshot_interval;
    config.work_dir = "/tmp/mmm-bench-snapshot-interval";

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();

    uint64_t total_bytes = 0;
    for (const UseCaseResult& use_case : results) {
      total_bytes += use_case.metrics.at(ApproachType::kUpdate).storage_bytes;
    }
    // Recover the newest set once, with timing.
    ModelSetManager::Options options;
    options.root_dir = config.work_dir + "/update";
    options.profile = config.profile;
    auto manager = ModelSetManager::Open(options).ValueOrDie();
    RecoverStats stats;
    StopWatch watch;
    manager
        ->Recover(results.back().metrics.at(ApproachType::kUpdate).set_id,
                  &stats)
        .status()
        .Check();
    double ttr = watch.ElapsedSeconds() +
                 static_cast<double>(stats.simulated_store_nanos) * 1e-9;

    std::printf("%-10s | %14.2f | %12.3f | %10llu\n", row.label.c_str(),
                static_cast<double>(total_bytes) / 1e6, ttr,
                static_cast<unsigned long long>(stats.sets_recovered));
    CleanupWorkDir(knobs, config.work_dir);
  }
  std::printf(
      "\n(Expected: storage grows and TTR shrinks as snapshots become more "
      "frequent;\n 'never' is the paper's configuration, 'every 1' matches "
      "Baseline's flat TTR.)\n");
  return 0;
}
