#include "tensor/tensor_serialize.h"

namespace mmm {

void WriteTensor(BinaryWriter* writer, const Tensor& tensor) {
  writer->WriteVarint(tensor.ndim());
  for (size_t d : tensor.shape()) writer->WriteVarint(d);
  writer->WriteFloatSpan(tensor.data());
}

Result<Tensor> ReadTensor(BinaryReader* reader) {
  MMM_ASSIGN_OR_RETURN(uint64_t ndim, reader->ReadVarint());
  if (ndim > 8) {
    return Status::Corruption("tensor with implausible rank ", ndim);
  }
  Shape shape(ndim);
  size_t numel = ndim == 0 ? 0 : 1;
  for (size_t i = 0; i < ndim; ++i) {
    MMM_ASSIGN_OR_RETURN(uint64_t d, reader->ReadVarint());
    shape[i] = d;
    numel *= d;
  }
  if (reader->remaining() < numel * sizeof(float)) {
    return Status::Corruption("tensor data truncated: need ", numel, " floats");
  }
  std::vector<float> data(numel);
  MMM_RETURN_NOT_OK(reader->ReadFloatSpan(numel, data.data()));
  return Tensor(std::move(shape), std::move(data));
}

}  // namespace mmm
