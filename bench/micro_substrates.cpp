// Micro-benchmarks of the substrates the management approaches are built on
// (google-benchmark). These quantify the constants behind the end-to-end
// numbers: hashing cost per MB (Update's save overhead), blob codec
// throughput (Baseline's save path), store op costs, ECM stepping and
// training throughput (Provenance's recovery path).

#include <benchmark/benchmark.h>

#include "battery/data_gen.h"
#include "battery/drive_cycle.h"
#include "battery/ecm.h"
#include "core/blob_formats.h"
#include "nn/trainer.h"
#include "serialize/crc32.h"
#include "serialize/json.h"
#include "serialize/sha256.h"
#include "storage/document_store.h"
#include "storage/executor.h"
#include "storage/file_store.h"
#include "storage/store_batch.h"
#include "tensor/ops.h"

namespace mmm {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(20 << 10)->Arg(1 << 20);

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32::Compute(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 20);

void BM_EncodeParamBlob(benchmark::State& state) {
  ModelSet set =
      MakeInitializedSet(Ffnn48Spec(), static_cast<size_t>(state.range(0)), 1)
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeParamBlob(set));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4993 * 4);
}
BENCHMARK(BM_EncodeParamBlob)->Arg(100)->Arg(1000);

void BM_DecodeParamBlob(benchmark::State& state) {
  ModelSet set =
      MakeInitializedSet(Ffnn48Spec(), static_cast<size_t>(state.range(0)), 1)
          .ValueOrDie();
  std::vector<uint8_t> blob = EncodeParamBlob(set);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeParamBlob(set.spec, blob).ValueOrDie());
  }
  state.SetBytesProcessed(state.iterations() * blob.size());
}
BENCHMARK(BM_DecodeParamBlob)->Arg(100)->Arg(1000);

void BM_EncodeStateDict(benchmark::State& state) {
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 1, 1).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeStateDict(set.models[0]));
  }
}
BENCHMARK(BM_EncodeStateDict);

void BM_ComputeHashTable(benchmark::State& state) {
  ModelSet set =
      MakeInitializedSet(Ffnn48Spec(), static_cast<size_t>(state.range(0)), 1)
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeHashTable(set));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeHashTable)->Arg(100)->Arg(1000);

void BM_ComputeHashTableParallel(benchmark::State& state) {
  // Update's per-save hashing cost, fanned across pipeline lanes. Speedup
  // over the lanes=1 row shows up on multi-core hosts only.
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 1000, 1).ValueOrDie();
  Executor executor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeHashTable(set, &executor));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ComputeHashTableParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_StoreBatchCommit(benchmark::State& state) {
  // One save's worth of blob writes committed through the pipeline,
  // parameterized by lane count (lanes=1 is the serial reference).
  InMemoryEnv env;
  FileStore file_store(&env, "/blobs");
  file_store.Open().Check();
  DocumentStore doc_store(&env, "/wal");
  doc_store.Open().Check();
  Executor executor(static_cast<size_t>(state.range(0)));
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 32, 1).ValueOrDie();
  for (auto _ : state) {
    StoreBatch batch(&file_store, &doc_store, &executor);
    for (size_t m = 0; m < set.models.size(); ++m) {
      const StateDict* model = &set.models[m];
      batch.PutBlobDeferred("m" + std::to_string(m) + ".bin",
                            [model]() -> Result<std::vector<uint8_t>> {
                              return EncodeStateDict(*model);
                            });
    }
    batch.Commit().Check();
  }
  state.SetItemsProcessed(state.iterations() * set.models.size());
}
BENCHMARK(BM_StoreBatchCommit)->Arg(1)->Arg(2)->Arg(4);

void BM_DiffHashTables(benchmark::State& state) {
  ModelSet base =
      MakeInitializedSet(Ffnn48Spec(), static_cast<size_t>(state.range(0)), 1)
          .ValueOrDie();
  ModelSet current = base;
  current.models[0][0].second.at(0) += 1.0f;
  HashTable a = ComputeHashTable(base);
  HashTable b = ComputeHashTable(current);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffHashTables(a, b).ValueOrDie());
  }
}
BENCHMARK(BM_DiffHashTables)->Arg(1000);

void BM_DocumentStoreInsert(benchmark::State& state) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  store.Open().Check();
  JsonValue doc = JsonValue::Object();
  doc.Set("set_id", "set-000001");
  doc.Set("model_index", 7);
  doc.Set("weights_blob", "set-000001-m00007.weights.bin");
  int64_t counter = 0;
  for (auto _ : state) {
    doc.Set("_id", "doc-" + std::to_string(counter++));
    store.Insert("bench", doc).Check();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DocumentStoreInsert);

void BM_FileStorePut(benchmark::State& state) {
  InMemoryEnv env;
  FileStore store(&env, "/blobs");
  store.Open().Check();
  std::vector<uint8_t> blob(static_cast<size_t>(state.range(0)), 0x77);
  int64_t counter = 0;
  for (auto _ : state) {
    store.Put("b" + std::to_string(counter++ % 64), blob).Check();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FileStorePut)->Arg(20 << 10);

void BM_EcmStep(benchmark::State& state) {
  EcmCell cell(EcmParameters{});
  cell.ResetState(0.9);
  double current = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Step(current, 1.0));
    current = -current * 0.99;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcmStep);

void BM_DriveCycleGenerate(benchmark::State& state) {
  DriveCycleGenerator gen(7);
  uint64_t cycle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(cycle++, 512));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DriveCycleGenerate);

void BM_BatteryDatasetGeneration(benchmark::State& state) {
  BatteryDataConfig config;
  config.samples_per_cycle = 256;
  BatteryDataGenerator gen(config);
  uint64_t cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateCellDataset(cell++, 1, 0.95));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BatteryDatasetGeneration);

void BM_MatMul(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  ModelSet set = MakeInitializedSet(Ffnn48Spec(), 1, 1).ValueOrDie();
  Tensor a(Shape{n, n}, std::vector<float>(n * n, 0.5f));
  Tensor b(Shape{n, n}, std::vector<float>(n * n, 0.25f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

void BM_Ffnn48TrainStep(benchmark::State& state) {
  // One model update at the workload's default scale — the unit cost behind
  // Provenance's recovery staircase.
  BatteryDataConfig data_config;
  data_config.samples_per_cycle = 256;
  BatteryDataGenerator gen(data_config);
  TrainingData data = gen.GenerateCellDataset(1, 1, 0.95);
  Model model = Model::CreateInitialized(Ffnn48Spec(), 3).ValueOrDie();
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  config.learning_rate = 0.05f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TrainModel(&model, data.inputs, data.targets, config).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Ffnn48TrainStep);

void BM_JsonParseSetDocument(benchmark::State& state) {
  std::string text =
      R"({"_id":"set-000123-abcd1234","approach":"update","kind":"delta",)"
      R"("base_set_id":"set-000122-ffee0011","family":"FFNN-48",)"
      R"("num_models":5000,"chain_depth":3,"arch_blob":"","param_blob":"",)"
      R"("hash_blob":"set-000123.hashes.bin","diff_blob":"set-000123.diff.bin",)"
      R"("prov_blob":""})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(JsonValue::Parse(text).ValueOrDie());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_JsonParseSetDocument);

}  // namespace
}  // namespace mmm

BENCHMARK_MAIN();
