# Empty compiler generated dependencies file for mmm_battery.
# This may be replaced when dependencies are built.
