# Empty dependencies file for fig3_storage.
# This may be replaced when dependencies are built.
