#ifndef MMM_BATTERY_ECM_H_
#define MMM_BATTERY_ECM_H_

#include "common/rng.h"

namespace mmm {

/// \brief Physical parameters of one 18650 cell's second-order equivalent
/// circuit model (Neupert & Kowal 2018 topology: OCV source, series
/// resistance R0, and two RC pairs capturing fast and slow polarization).
struct EcmParameters {
  double capacity_ah = 2.5;    ///< nominal capacity
  double r0_ohm = 0.030;       ///< ohmic resistance
  double r1_ohm = 0.015;       ///< fast polarization resistance
  double c1_farad = 2'000.0;   ///< fast polarization capacitance (tau ~ 30 s)
  double r2_ohm = 0.010;       ///< slow polarization resistance
  double c2_farad = 60'000.0;  ///< slow polarization capacitance (tau ~ 10 min)
  double thermal_mass_j_per_k = 45.0;   ///< heat capacity of the cell
  double thermal_resistance_k_per_w = 8.0;  ///< cell-to-ambient

  /// Perturbs every electrical parameter by a few percent (cell-to-cell
  /// manufacturing spread, "slightly altered model parameters" §4.1).
  static EcmParameters Perturbed(const EcmParameters& base, Rng* rng,
                                 double relative_spread = 0.03);
};

/// \brief Second-order equivalent-circuit model of an 18650 battery cell.
///
/// Maps an input current to the voltage response, cell temperature, and cell
/// charge (paper §4.1). Discharge current is positive. State of health (SoH)
/// scales the usable capacity down and the resistances up, reproducing the
/// aging trend the paper injects by decrementing SoH every update cycle.
class EcmCell {
 public:
  /// Instantaneous observable state.
  struct State {
    double soc = 1.0;           ///< state of charge in [0, 1]
    double soh = 1.0;           ///< state of health in (0, 1]
    double v_rc1_volt = 0.0;    ///< fast polarization voltage
    double v_rc2_volt = 0.0;    ///< slow polarization voltage
    double temperature_c = 25.0;
    double terminal_voltage = 0.0;  ///< last computed terminal voltage
  };

  EcmCell(EcmParameters parameters, double ambient_temperature_c = 25.0);

  /// Advances the model by `dt_seconds` under `current_a` (positive =
  /// discharge) and returns the terminal voltage.
  double Step(double current_a, double dt_seconds);

  /// Resets charge/polarization/temperature, keeping parameters and SoH.
  void ResetState(double soc = 1.0);

  /// Sets the state of health (clamped to [0.5, 1]); aging scales capacity
  /// by soh and resistances by (2 - soh).
  void SetSoh(double soh);

  /// Adds `delta_c` to the cell temperature (heat exchanged with neighbors
  /// in a pack; see battery/pack.h).
  void AdjustTemperature(double delta_c) { state_.temperature_c += delta_c; }

  const State& state() const { return state_; }
  const EcmParameters& parameters() const { return parameters_; }
  double ambient_temperature_c() const { return ambient_temperature_c_; }

  /// Effective (aged) capacity in ampere-hours.
  double EffectiveCapacityAh() const;

  /// Effective (aged) series resistance in ohms at the current temperature.
  double EffectiveR0() const;

 private:
  EcmParameters parameters_;
  double ambient_temperature_c_;
  State state_;
};

}  // namespace mmm

#endif  // MMM_BATTERY_ECM_H_
