#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mmmlint [--json] [--rule=<name>]... [--list-rules]\n"
      "               [--list-suppressions] <path>...\n"
      "\n"
      "Lints C++ sources (files or directories, recursed) against the mmm\n"
      "repo's invariants. Exits 0 when clean, 1 on findings, 2 on usage or\n"
      "I/O errors. Suppress one finding with a justified comment on the\n"
      "same or preceding line:  // MMMLINT(<rule>): <reason>\n"
      "--list-suppressions prints every such comment (file/rule/reason) so\n"
      "the CI log shows the standing debt.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_suppressions = false;
  mmmlint::LintOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.only_rules.push_back(arg.substr(7));
    } else if (arg == "--list-rules") {
      for (const std::string& rule : mmmlint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mmmlint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) return Usage();

  if (list_suppressions) {
    std::vector<mmmlint::SuppressionNote> notes =
        mmmlint::ListSuppressions(paths);
    for (const mmmlint::SuppressionNote& note : notes) {
      std::printf("%s:%d: [%s] %s\n", note.file.c_str(), note.line,
                  note.rule.c_str(),
                  note.reason.empty() ? "(no reason given)"
                                      : note.reason.c_str());
    }
    std::printf("mmmlint: %zu suppression%s\n", notes.size(),
                notes.size() == 1 ? "" : "s");
    return 0;
  }

  std::vector<mmmlint::Finding> findings = mmmlint::LintPaths(paths, options);
  for (const mmmlint::Finding& f : findings) {
    if (f.rule == "io") {
      std::fprintf(stderr, "mmmlint: %s: %s\n", f.file.c_str(),
                   f.message.c_str());
      return 2;
    }
  }
  std::string rendered =
      json ? mmmlint::FormatJson(findings) : mmmlint::FormatText(findings);
  std::fputs(rendered.c_str(), stdout);
  return findings.empty() ? 0 : 1;
}
