// Fixture: suppressed delete lints clean.
struct Widget {
  int value = 0;
};

void Destroy(Widget* w) {
  delete w;  // MMMLINT(naked-delete): fixture owns the raw pointer
}
