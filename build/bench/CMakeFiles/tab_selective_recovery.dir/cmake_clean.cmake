file(REMOVE_RECURSE
  "CMakeFiles/tab_selective_recovery.dir/tab_selective_recovery.cpp.o"
  "CMakeFiles/tab_selective_recovery.dir/tab_selective_recovery.cpp.o.d"
  "tab_selective_recovery"
  "tab_selective_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_selective_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
