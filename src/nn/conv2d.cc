#include "nn/conv2d.h"

#include "tensor/conv_ops.h"

namespace mmm {

Conv2d::Conv2d(size_t in_channels, size_t out_channels, size_t kernel_size)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      weight_("weight",
              Tensor(Shape{out_channels, in_channels, kernel_size, kernel_size})),
      bias_("bias", Tensor(Shape{out_channels})) {}

Tensor Conv2d::Forward(const Tensor& input) {
  cached_input_ = input;
  return Conv2dForward(input, weight_.value, bias_.value);
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  return Conv2dBackward(cached_input_, weight_.value, grad_output, &weight_.grad,
                        &bias_.grad);
}

Tensor MaxPool2d::Forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return MaxPool2dForward(input, &argmax_);
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  return MaxPool2dBackward(cached_input_shape_, grad_output, argmax_);
}

Tensor Flatten::Forward(const Tensor& input) {
  MMM_DCHECK(input.ndim() >= 2);
  cached_input_shape_ = input.shape();
  size_t batch = input.dim(0);
  return input.Reshape(Shape{batch, input.numel() / batch});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(cached_input_shape_);
}

}  // namespace mmm
