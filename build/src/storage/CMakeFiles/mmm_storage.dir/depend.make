# Empty dependencies file for mmm_storage.
# This may be replaced when dependencies are built.
