#include <gtest/gtest.h>

#include "core/manager.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// Provenance replay must be bit-exact for every optimizer/loss the trainer
// supports, not just the battery scenario's SGD+MSE default.

struct ReplayVariant {
  const char* name;
  const char* optimizer;
  const char* loss;
  bool cifar;
};

class ReplayVariantSweep : public ::testing::TestWithParam<ReplayVariant> {};

TEST_P(ReplayVariantSweep, ProvenanceReplayIsBitExact) {
  const ReplayVariant& variant = GetParam();
  TempDir temp("replay-variant");

  ScenarioConfig config = variant.cifar ? ScenarioConfig::Cifar(8)
                                        : ScenarioConfig::Battery(8);
  config.full_update_fraction = 0.25;  // 2 models
  config.partial_update_fraction = 0.25;
  config.samples_per_dataset = variant.cifar ? 8 : 32;
  config.batch_size = 4;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());

  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  ASSERT_OK_AND_ASSIGN(
      SaveResult initial,
      manager->SaveInitial(ApproachType::kProvenance, scenario.current_set()));
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  // Swap the pipeline's optimizer/loss: the scenario trained with its
  // default, so retrain the updated models under the variant's pipeline and
  // record that as the provenance.
  update.pipeline.train_config.optimizer = variant.optimizer;
  if (!variant.cifar) {
    update.pipeline.train_config.loss = variant.loss;
  }
  update.pipeline = TrainPipelineSpec::Create(
      update.pipeline.train_config,
      CanonicalPipelineCode(update.pipeline.train_config));
  ModelSet retrained = scenario.current_set();
  for (size_t m = 0; m < update.kinds.size(); ++m) {
    if (update.kinds[m] == UpdateKind::kNone) continue;
    ASSERT_OK_AND_ASSIGN(TrainingData data,
                         scenario.Resolve(update.data_refs[m]));
    ASSERT_OK_AND_ASSIGN(Model model, Model::Create(retrained.spec));
    // Start from the *initial* parameters, exactly as recovery will.
    ASSERT_OK_AND_ASSIGN(ModelSet base, manager->Recover(initial.set_id));
    ASSERT_OK(model.LoadStateDict(base.models[m]));
    TrainConfig train = update.pipeline.train_config;
    if (update.kinds[m] == UpdateKind::kPartial) {
      train.trainable_layers = update.partial_layers;
    }
    ASSERT_OK(TrainModel(&model, data.inputs, data.targets, train).status());
    retrained.models[m] = model.GetStateDict();
  }

  update.base_set_id = initial.set_id;
  ASSERT_OK_AND_ASSIGN(
      SaveResult derived,
      manager->SaveDerived(ApproachType::kProvenance, retrained, update));

  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                       manager->Recover(derived.set_id, &stats));
  EXPECT_EQ(stats.models_retrained, 4u);
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      ASSERT_TRUE(recovered.models[m][p].second.Equals(
          retrained.models[m][p].second))
          << variant.name << " model " << m << " param " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ReplayVariantSweep,
    ::testing::Values(ReplayVariant{"sgd_mse", "sgd", "mse", false},
                      ReplayVariant{"adam_mse", "adam", "mse", false},
                      ReplayVariant{"sgd_xent_cifar", "sgd", "cross_entropy",
                                    true},
                      ReplayVariant{"adam_xent_cifar", "adam", "cross_entropy",
                                    true}),
    [](const auto& info) { return std::string(info.param.name); });

// Selective recovery across a mid-chain snapshot: the walk must stop at the
// nearest full snapshot, not at U1.
TEST(SelectiveSnapshotTest, StopsAtNearestSnapshot) {
  TempDir temp("selective-snapshot");
  ScenarioConfig config = ScenarioConfig::Battery(20);
  config.samples_per_dataset = 32;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());

  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  options.update_options.snapshot_interval = 2;  // snapshot every 2 deltas
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  std::string head =
      manager->SaveInitial(ApproachType::kUpdate, scenario.current_set())
          .ValueOrDie()
          .set_id;
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
    update.base_set_id = head;
    head = manager
               ->SaveDerived(ApproachType::kUpdate, scenario.current_set(),
                             update)
               .ValueOrDie()
               .set_id;
  }

  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager->RecoverModels(head, {3, 14}, &stats));
  // With snapshots every 2 deltas the chain above the head is at most
  // (1 delta + 1 snapshot) or (snapshot directly).
  EXPECT_LE(stats.sets_recovered, 2u);
  for (size_t i : {size_t{0}, size_t{1}}) {
    size_t model = i == 0 ? 3 : 14;
    for (size_t p = 0; p < recovered[i].size(); ++p) {
      ASSERT_TRUE(recovered[i][p].second.Equals(
          scenario.current_set().models[model][p].second))
          << "model " << model << " param " << p;
    }
  }
}

}  // namespace
}  // namespace mmm
