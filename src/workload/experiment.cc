#include "workload/experiment.h"

#include <algorithm>

#include "common/clock.h"
#include "common/strings.h"

namespace mmm {

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {}

Result<std::vector<UseCaseResult>> ExperimentRunner::Run() {
  Env* env = Env::Default();
  MMM_RETURN_NOT_OK(env->RemoveDirs(config_.work_dir));
  MMM_RETURN_NOT_OK(env->CreateDirs(config_.work_dir));

  scenario_ = std::make_unique<MultiModelScenario>(config_.scenario);
  MMM_RETURN_NOT_OK(scenario_->Init());

  // Environment captured once and shared so every approach persists
  // identical metadata.
  EnvironmentInfo environment = EnvironmentInfo::Capture();
  managers_.clear();
  chain_head_.clear();
  for (ApproachType type : config_.approaches) {
    ModelSetManager::Options options;
    options.root_dir = config_.work_dir + "/" + ApproachTypeName(type);
    options.profile = config_.profile;
    options.resolver = scenario_.get();
    options.environment = environment;
    options.update_options = config_.update_options;
    options.provenance_recover_options = config_.provenance_recover;
    options.blob_compression = config_.blob_compression;
    // The paper harness owns one isolated store per approach; the sharded
    // tier is out of scope for it.
    // MMMLINT(direct-manager-open): per-approach store of the paper harness.
    MMM_ASSIGN_OR_RETURN(managers_[type], ModelSetManager::Open(options));
  }

  std::vector<UseCaseResult> results;
  {
    MMM_ASSIGN_OR_RETURN(UseCaseResult u1,
                         MeasureUseCase("U1", /*initial=*/true, nullptr));
    results.push_back(std::move(u1));
  }
  for (size_t iteration = 1; iteration <= config_.u3_iterations; ++iteration) {
    MMM_ASSIGN_OR_RETURN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    std::string label = StringFormat("U3-%zu", iteration);
    MMM_ASSIGN_OR_RETURN(UseCaseResult row,
                         MeasureUseCase(label, /*initial=*/false, &update));
    results.push_back(std::move(row));
  }
  return results;
}

Result<UseCaseResult> ExperimentRunner::MeasureUseCase(
    const std::string& label, bool initial, const ModelSetUpdateInfo* update) {
  UseCaseResult row;
  row.use_case = label;
  const ModelSet& set = scenario_->current_set();

  for (ApproachType type : config_.approaches) {
    ModelSetManager* manager = managers_.at(type).get();
    ApproachMetrics metrics;

    // --- Time-to-save: `runs` saves; the first one is canonical. ---
    std::vector<double> tts_total, tts_wall, tts_modeled;
    for (int run = 0; run < config_.runs; ++run) {
      ModelSetUpdateInfo derived;
      if (!initial) {
        derived = *update;
        derived.base_set_id = chain_head_.at(type);
      }
      StopWatch watch;
      Result<SaveResult> saved =
          initial ? manager->SaveInitial(type, set)
                  : manager->SaveDerived(type, set, derived);
      double wall = watch.ElapsedSeconds();
      if (!saved.ok()) {
        return saved.status().WithContext("saving ", label, " with ",
                                          ApproachTypeName(type));
      }
      double modeled =
          static_cast<double>(saved.ValueOrDie().simulated_store_nanos) * 1e-9;
      tts_wall.push_back(wall);
      tts_modeled.push_back(modeled);
      tts_total.push_back(wall + modeled);
      if (run == 0) {
        metrics.set_id = saved.ValueOrDie().set_id;
        metrics.storage_bytes = saved.ValueOrDie().bytes_written;
        metrics.file_store_writes = saved.ValueOrDie().file_store_writes;
        metrics.doc_store_writes = saved.ValueOrDie().doc_store_writes;
      }
    }
    metrics.tts_seconds = Median(tts_total);
    metrics.tts_wall_seconds = Median(tts_wall);
    metrics.tts_modeled_seconds = Median(tts_modeled);
    chain_head_[type] = metrics.set_id;

    // --- Time-to-recover: `runs` recoveries of the canonical set. ---
    if (config_.measure_ttr) {
      if (config_.ttr_warmup) {
        Result<ModelSet> warmup = manager->Recover(metrics.set_id, nullptr);
        if (!warmup.ok()) {
          return warmup.status().WithContext("warm-up recovery of ", label,
                                             " with ", ApproachTypeName(type));
        }
      }
      std::vector<double> ttr_total, ttr_wall, ttr_modeled;
      for (int run = 0; run < config_.runs; ++run) {
        RecoverStats stats;
        StopWatch watch;
        Result<ModelSet> recovered = manager->Recover(metrics.set_id, &stats);
        double wall = watch.ElapsedSeconds();
        if (!recovered.ok()) {
          return recovered.status().WithContext("recovering ", label, " with ",
                                                ApproachTypeName(type));
        }
        double modeled = static_cast<double>(stats.simulated_store_nanos) * 1e-9;
        ttr_wall.push_back(wall);
        ttr_modeled.push_back(modeled);
        ttr_total.push_back(wall + modeled);
      }
      metrics.ttr_seconds = Median(ttr_total);
      metrics.ttr_wall_seconds = Median(ttr_wall);
      metrics.ttr_modeled_seconds = Median(ttr_modeled);
    }
    row.metrics[type] = std::move(metrics);
  }
  return row;
}

}  // namespace mmm
