#ifndef MMM_STORAGE_ENV_H_
#define MMM_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mmm {

/// \brief Filesystem abstraction (RocksDB-style Env).
///
/// The stores talk to the filesystem exclusively through an Env so tests can
/// substitute an in-memory implementation and failure-injection wrappers.
class Env {
 public:
  virtual ~Env() = default;

  /// Writes `data` to `path`, replacing any existing file.
  virtual Status WriteFile(const std::string& path,
                           std::span<const uint8_t> data) = 0;

  /// Appends `data` to `path`, creating the file if needed.
  virtual Status AppendToFile(const std::string& path,
                              std::span<const uint8_t> data) = 0;

  /// Reads the whole file.
  virtual Result<std::vector<uint8_t>> ReadFile(const std::string& path) = 0;

  /// Reads `length` bytes starting at `offset`. The contract is identical
  /// for every Env (including FaultInjectionEnv's passthrough, which only
  /// adds its path checks on top):
  ///  - `offset + length <= size` succeeds, evaluated overflow-safely — a
  ///    huge `offset`/`length` pair whose uint64 sum wraps is OutOfRange,
  ///    never a wrapped read;
  ///  - a zero-length read succeeds (empty result) at any `offset <= size`,
  ///    including exactly at EOF;
  ///  - `offset > size` is OutOfRange even when `length == 0`.
  /// Modeled latency is charged by FileStore, not here, so every Env is
  /// charged identically by construction (storage/file_store.h).
  virtual Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                                     uint64_t offset,
                                                     uint64_t length) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates a directory and all missing parents.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Recursively removes a directory tree (no-op if absent).
  virtual Status RemoveDirs(const std::string& path) = 0;

  /// Lists regular files directly under `path` (names, not full paths),
  /// sorted lexicographically.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// The process-wide POSIX-filesystem Env.
  static Env* Default();
};

/// \brief Heap-backed Env for unit tests (no disk access). Thread-safe, so
/// it can stand in for the filesystem under the parallel write pipeline.
class InMemoryEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::span<const uint8_t> data) override;
  Status AppendToFile(const std::string& path,
                      std::span<const uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  mutable Mutex mu_ MMM_LOCK_RANK(150);
  std::vector<std::pair<std::string, std::vector<uint8_t>>> files_
      MMM_GUARDED_BY(mu_);
};

/// \brief Declares how many writes a concurrent batch is about to issue so
/// FaultInjectionEnv can number them by *staging* order, not arrival order.
///
/// A batch that fans writes out over worker lanes creates one group sized to
/// its write count and wraps every write in a ScopedWriteOrderTag carrying
/// the write's staging index. The first tagged write to reach the env claims
/// a contiguous block of `size` write indices; each tagged write then gets
/// index `block_base + staging_index` regardless of which lane delivered it
/// first. A group is single-use: one batch commit against one env.
class WriteOrderGroup {
 public:
  explicit WriteOrderGroup(size_t size) : size_(size) {}

  size_t size() const { return size_; }

 private:
  friend class FaultInjectionEnv;
  size_t size_;
  /// First write index of the claimed block; -1 until a member write arrives.
  mutable std::atomic<int64_t> base_{-1};
};

/// \brief RAII tag marking every env write on this thread as write number
/// `index` of `group` (see WriteOrderGroup). Nesting is not supported.
class ScopedWriteOrderTag {
 public:
  ScopedWriteOrderTag(const WriteOrderGroup* group, size_t index);
  ~ScopedWriteOrderTag();

  ScopedWriteOrderTag(const ScopedWriteOrderTag&) = delete;
  ScopedWriteOrderTag& operator=(const ScopedWriteOrderTag&) = delete;
};

/// \brief Env decorator that fails the N-th write, for recovery tests.
///
/// Fault semantics: every WriteFile/AppendToFile gets a write index; after
/// FailWritesAfter(n), writes with index >= n fail with IOError (and do not
/// reach the base env), writes with a smaller index still succeed. Reads,
/// deletes, and directory ops always pass through — unless a path-prefix
/// fault (FailPathsUnder, the shard-kill model) covers them.
///
/// Indices are assigned in *staging* order: an untagged write takes the next
/// free index on arrival, while writes tagged via WriteOrderGroup /
/// ScopedWriteOrderTag receive `group base + staging index`, where the group
/// claims a contiguous index block on its first member's arrival. Since a
/// batch's writes fan out between two untagged writes, the block's position
/// is the same no matter how many lanes race — so a fault plan hits the same
/// logical write at any lane count, which is what makes crash-point sweeps
/// reproducible under the parallel pipeline.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// After this call, every write whose index is >= `fail_after` fails with
  /// IOError. Indices already assigned are unaffected.
  void FailWritesAfter(int64_t fail_after) {
    MutexLock lock(mu_);
    fail_after_ = fail_after;
  }
  /// Clears the failure plan.
  void Heal() {
    MutexLock lock(mu_);
    fail_after_ = -1;
  }

  /// \name Shard-kill faults.
  ///
  /// FailPathsUnder makes every read *and* write whose path starts with
  /// `prefix` fail with IOError — the cluster tests' model of a shard whose
  /// store subtree became unreachable (node down). Unlike write faults, the
  /// durable bytes are untouched: HealPaths models mounting the surviving
  /// store on a replacement node, after which the coordinator's failover
  /// (reopen + journal replay) takes over. Path faults consume no write
  /// indices, so an armed write-sweep plan is unaffected.
  /// @{
  void FailPathsUnder(const std::string& prefix) {
    MutexLock lock(mu_);
    dead_prefixes_.push_back(prefix);
  }
  void HealPaths() {
    MutexLock lock(mu_);
    dead_prefixes_.clear();
  }
  /// @}

  /// Number of write indices assigned so far (failed writes included).
  int64_t write_count() const {
    MutexLock lock(mu_);
    return next_index_;
  }

  Status WriteFile(const std::string& path, std::span<const uint8_t> data) override;
  Status AppendToFile(const std::string& path,
                      std::span<const uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  Status MaybeFail();
  Status CheckPath(const std::string& path) const;

  Env* base_;
  mutable Mutex mu_ MMM_LOCK_RANK(140);
  /// Path prefixes whose reads and writes fail (see FailPathsUnder).
  std::vector<std::string> dead_prefixes_ MMM_GUARDED_BY(mu_);
  int64_t fail_after_ MMM_GUARDED_BY(mu_) = -1;
  /// Next unassigned write index (== total writes seen, since tagged groups
  /// reserve their whole block up front).
  int64_t next_index_ MMM_GUARDED_BY(mu_) = 0;
};

}  // namespace mmm

#endif  // MMM_STORAGE_ENV_H_
