# Empty dependencies file for mmmctl.
# This may be replaced when dependencies are built.
