#include "tensor/conv_ops.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::RandomTensor;

TEST(ConvOpsTest, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1, bias 0 is the identity.
  Tensor input = RandomTensor(Shape{1, 1, 4, 4}, 1);
  Tensor weight = Tensor::Full(Shape{1, 1, 1, 1}, 1.0f);
  Tensor bias(Shape{1});
  Tensor out = Conv2dForward(input, weight, bias);
  EXPECT_TRUE(out.Equals(input));
}

TEST(ConvOpsTest, KnownSmallConvolution) {
  // 1x1x3x3 input, 2x2 averaging-like kernel.
  Tensor input(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor weight = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor bias(Shape{1}, {0.5f});
  Tensor out = Conv2dForward(input, weight, bias);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at4(0, 0, 0, 0), 1 + 2 + 4 + 5 + 0.5f);
  EXPECT_EQ(out.at4(0, 0, 1, 1), 5 + 6 + 8 + 9 + 0.5f);
}

TEST(ConvOpsTest, BiasAppliedPerOutputChannel) {
  Tensor input = Tensor::Zeros(Shape{1, 1, 2, 2});
  Tensor weight = Tensor::Zeros(Shape{3, 1, 1, 1});
  Tensor bias(Shape{3}, {1.0f, 2.0f, 3.0f});
  Tensor out = Conv2dForward(input, weight, bias);
  EXPECT_EQ(out.at4(0, 0, 1, 1), 1.0f);
  EXPECT_EQ(out.at4(0, 1, 0, 0), 2.0f);
  EXPECT_EQ(out.at4(0, 2, 1, 0), 3.0f);
}

TEST(ConvOpsTest, OutputShape) {
  Tensor input(Shape{2, 3, 32, 32});
  Tensor weight(Shape{6, 3, 5, 5});
  Tensor bias(Shape{6});
  Tensor out = Conv2dForward(input, weight, bias);
  EXPECT_EQ(out.shape(), (Shape{2, 6, 28, 28}));
}

// Numerical gradient check of the conv backward pass.
TEST(ConvOpsTest, BackwardMatchesNumericalGradient) {
  const Shape in_shape{1, 2, 5, 5};
  const Shape w_shape{3, 2, 3, 3};
  Tensor input = RandomTensor(in_shape, 10);
  Tensor weight = RandomTensor(w_shape, 11);
  Tensor bias = RandomTensor(Shape{3}, 12);

  // Loss = sum of outputs => grad_output = ones.
  auto loss = [&](const Tensor& in, const Tensor& w, const Tensor& b) {
    Tensor out = Conv2dForward(in, w, b);
    float acc = 0.0f;
    for (float x : out.data()) acc += x;
    return acc;
  };

  Tensor out = Conv2dForward(input, weight, bias);
  Tensor grad_output = Tensor::Full(out.shape(), 1.0f);
  Tensor grad_weight(w_shape);
  Tensor grad_bias(Shape{3});
  Tensor grad_input =
      Conv2dBackward(input, weight, grad_output, &grad_weight, &grad_bias);

  const float eps = 1e-2f;
  // Spot-check a handful of coordinates in each gradient.
  for (size_t i : {0u, 7u, 24u, 49u}) {
    Tensor plus = input, minus = input;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    float numeric = (loss(plus, weight, bias) - loss(minus, weight, bias)) /
                    (2 * eps);
    EXPECT_NEAR(grad_input.at(i), numeric, 2e-2f) << "input grad @" << i;
  }
  for (size_t i : {0u, 5u, 17u, 53u}) {
    Tensor plus = weight, minus = weight;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    float numeric = (loss(input, plus, bias) - loss(input, minus, bias)) /
                    (2 * eps);
    EXPECT_NEAR(grad_weight.at(i), numeric, 2e-2f) << "weight grad @" << i;
  }
  for (size_t i : {0u, 1u, 2u}) {
    Tensor plus = bias, minus = bias;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    float numeric = (loss(input, weight, plus) - loss(input, weight, minus)) /
                    (2 * eps);
    EXPECT_NEAR(grad_bias.at(i), numeric, 2e-2f) << "bias grad @" << i;
  }
}

TEST(MaxPoolTest, SelectsMaxima) {
  Tensor input(Shape{1, 1, 4, 4},
               {1, 2, 5, 6,
                3, 4, 7, 8,
                9, 10, 13, 14,
                11, 12, 15, 16});
  std::vector<size_t> argmax;
  Tensor out = MaxPool2dForward(input, &argmax);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at4(0, 0, 0, 0), 4.0f);
  EXPECT_EQ(out.at4(0, 0, 0, 1), 8.0f);
  EXPECT_EQ(out.at4(0, 0, 1, 0), 12.0f);
  EXPECT_EQ(out.at4(0, 0, 1, 1), 16.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  Tensor input(Shape{1, 1, 2, 2}, {1, 4, 2, 3});
  std::vector<size_t> argmax;
  Tensor out = MaxPool2dForward(input, &argmax);
  ASSERT_EQ(out.numel(), 1u);
  Tensor grad_out(Shape{1, 1, 1, 1}, {5.0f});
  Tensor grad_in = MaxPool2dBackward(input.shape(), grad_out, argmax);
  EXPECT_TRUE(grad_in.Equals(Tensor(Shape{1, 1, 2, 2}, {0, 5, 0, 0})));
}

TEST(MaxPoolTest, MultiChannelShapes) {
  Tensor input = RandomTensor(Shape{2, 6, 28, 28}, 3);
  std::vector<size_t> argmax;
  Tensor out = MaxPool2dForward(input, &argmax);
  EXPECT_EQ(out.shape(), (Shape{2, 6, 14, 14}));
  EXPECT_EQ(argmax.size(), out.numel());
  // Every pooled value must be >= all four source values.
  Tensor grad = MaxPool2dBackward(input.shape(), Tensor::Full(out.shape(), 1.0f),
                                  argmax);
  float total = 0.0f;
  for (float g : grad.data()) total += g;
  EXPECT_EQ(total, static_cast<float>(out.numel()));
}

}  // namespace
}  // namespace mmm
