#ifndef MMM_TENSOR_CONV_OPS_H_
#define MMM_TENSOR_CONV_OPS_H_

#include "tensor/tensor.h"

namespace mmm {

/// \file
/// Direct 2-D convolution and max-pooling kernels (NCHW layout, stride 1,
/// no padding — all the CIFAR model needs). Forward functions return the
/// output; backward functions return input gradients and fill parameter
/// gradients where applicable.

/// input [N, Cin, H, W], weight [Cout, Cin, K, K], bias [Cout]
/// -> [N, Cout, H-K+1, W-K+1].
Tensor Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias);

/// Gradients of Conv2dForward. `grad_output` has the forward output's shape.
/// Returns grad wrt input; accumulates into *grad_weight / *grad_bias (which
/// must be pre-shaped like weight / bias).
Tensor Conv2dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_output, Tensor* grad_weight,
                      Tensor* grad_bias);

/// 2x2 max pooling with stride 2. `argmax` (optional out) records the flat
/// input index of each selected element for the backward pass.
Tensor MaxPool2dForward(const Tensor& input, std::vector<size_t>* argmax);

/// Scatters `grad_output` back through the recorded argmax indices.
Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_output,
                         const std::vector<size_t>& argmax);

}  // namespace mmm

#endif  // MMM_TENSOR_CONV_OPS_H_
