#ifndef MMM_NN_CONV2D_H_
#define MMM_NN_CONV2D_H_

#include "nn/module.h"

namespace mmm {

/// \brief 2-D convolution layer (stride 1, no padding, square kernels).
///
/// weight has shape [out_channels, in_channels, k, k]; bias [out_channels].
/// Input is NCHW.
class Conv2d : public Module {
 public:
  Conv2d(size_t in_channels, size_t out_channels, size_t kernel_size);

  std::string TypeName() const override { return "conv2d"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }

  size_t in_channels() const { return in_channels_; }
  size_t out_channels() const { return out_channels_; }
  size_t kernel_size() const { return kernel_size_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_size_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

/// \brief 2x2 / stride-2 max pooling.
class MaxPool2d : public Module {
 public:
  std::string TypeName() const override { return "maxpool2d"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Shape cached_input_shape_;
  std::vector<size_t> argmax_;
};

/// \brief Collapses [N, C, H, W] to [N, C*H*W] between conv and FC stages.
class Flatten : public Module {
 public:
  std::string TypeName() const override { return "flatten"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Shape cached_input_shape_;
};

}  // namespace mmm

#endif  // MMM_NN_CONV2D_H_
