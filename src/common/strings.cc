#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace mmm {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() && input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string HexEncode(std::span<const uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

bool HexDecode(std::string_view hex, std::vector<uint8_t>* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StringFormat("%.2f %s", value, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return StringFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StringFormat("%.3f ms", seconds * 1e3);
  return StringFormat("%.3f us", seconds * 1e6);
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mmm
