#include "serialize/compress.h"

#include <cstring>

#include "common/simd.h"
#include "serialize/binary_io.h"

namespace mmm {
namespace {

constexpr uint8_t kMagic[4] = {'M', 'M', 'Z', '1'};
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 16;

uint32_t HashWindow(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void WriteLength(std::vector<uint8_t>* out, size_t value) {
  // LZ4-style length extension: 255-continuation bytes.
  while (value >= 255) {
    out->push_back(255);
    value -= 255;
  }
  out->push_back(static_cast<uint8_t>(value));
}

}  // namespace

std::string_view CompressionName(Compression method) {
  switch (method) {
    case Compression::kNone:
      return "none";
    case Compression::kLz:
      return "lz";
    case Compression::kShuffleLz:
      return "shuffle-lz";
  }
  return "?";
}

Result<Compression> CompressionFromName(std::string_view name) {
  if (name == "none") return Compression::kNone;
  if (name == "lz") return Compression::kLz;
  if (name == "shuffle-lz") return Compression::kShuffleLz;
  return Status::InvalidArgument("unknown compression '", name, "'");
}

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 32);
  const size_t n = input.size();
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0xffffffffu);

  size_t anchor = 0;  // start of pending literals
  size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    // Find a match candidate via the hash table.
    uint32_t hash = HashWindow(input.data() + pos);
    uint32_t candidate = table[hash];
    table[hash] = static_cast<uint32_t>(pos);
    bool has_match = candidate != 0xffffffffu && pos - candidate <= kMaxOffset &&
                     std::memcmp(input.data() + candidate, input.data() + pos,
                                 kMinMatch) == 0;
    if (!has_match) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    size_t match_len = kMinMatch;
    while (pos + match_len < n &&
           input[candidate + match_len] == input[pos + match_len]) {
      ++match_len;
    }
    // Emit [token][literal ext][literals][offset][match ext].
    size_t literal_len = pos - anchor;
    size_t offset = pos - candidate;
    size_t match_code = match_len - kMinMatch;
    uint8_t token = static_cast<uint8_t>(
        (std::min<size_t>(literal_len, 15) << 4) |
        std::min<size_t>(match_code, 15));
    out.push_back(token);
    if (literal_len >= 15) WriteLength(&out, literal_len - 15);
    out.insert(out.end(), input.begin() + anchor, input.begin() + pos);
    out.push_back(static_cast<uint8_t>(offset));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (match_code >= 15) WriteLength(&out, match_code - 15);

    pos += match_len;
    anchor = pos;
    if (pos + kMinMatch <= n) {
      // Insert one more table entry inside the match for better coverage.
      table[HashWindow(input.data() + pos - 2)] = static_cast<uint32_t>(pos - 2);
    }
  }
  // Trailing literals.
  size_t literal_len = n - anchor;
  if (literal_len > 0 || n == 0) {
    uint8_t token = static_cast<uint8_t>(std::min<size_t>(literal_len, 15) << 4);
    out.push_back(token);
    if (literal_len >= 15) WriteLength(&out, literal_len - 15);
    out.insert(out.end(), input.begin() + anchor, input.end());
  }
  return out;
}

Result<std::vector<uint8_t>> LzDecompress(std::span<const uint8_t> input,
                                          size_t raw_size) {
  // `raw_size` may come from a corrupted header and must not drive
  // allocation: every extension byte of this token format yields at most
  // 255 output bytes, so no valid stream expands more than ~256x.
  if (raw_size > input.size() * 256 + 64) {
    return Status::Corruption("lz: implausible raw size ", raw_size, " for ",
                              input.size(), " compressed bytes");
  }
  std::vector<uint8_t> out;
  out.reserve(raw_size);
  size_t pos = 0;
  auto read_length = [&](size_t base) -> Result<size_t> {
    size_t value = base;
    if (base == 15) {
      while (true) {
        if (pos >= input.size()) {
          return Status::Corruption("lz: truncated length at ", pos);
        }
        uint8_t byte = input[pos++];
        value += byte;
        if (byte != 255) break;
      }
    }
    return value;
  };

  while (out.size() < raw_size) {
    if (pos >= input.size()) {
      return Status::Corruption("lz: truncated stream at ", pos);
    }
    uint8_t token = input[pos++];
    MMM_ASSIGN_OR_RETURN(size_t literal_len, read_length(token >> 4));
    if (pos + literal_len > input.size()) {
      return Status::Corruption("lz: literals run past end at ", pos);
    }
    if (out.size() + literal_len > raw_size) {
      return Status::Corruption("lz: output overflow in literals");
    }
    out.insert(out.end(), input.begin() + pos, input.begin() + pos + literal_len);
    pos += literal_len;
    if (out.size() >= raw_size) break;

    if (pos + 2 > input.size()) {
      return Status::Corruption("lz: truncated match offset at ", pos);
    }
    size_t offset = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz: invalid match offset ", offset);
    }
    MMM_ASSIGN_OR_RETURN(size_t match_code, read_length(token & 0x0f));
    size_t match_len = match_code + kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::Corruption("lz: output overflow in match");
    }
    // Overlapping matches (offset < match_len) are the run-length case and
    // must replicate already-written output — exactly ReplicateRun's
    // contract, which wide-copies only when that is bit-equivalent.
    const size_t before = out.size();
    out.resize(before + match_len);
    simd::ReplicateRun(out.data() + before, offset, match_len);
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz: decompressed ", out.size(), " bytes, want ",
                              raw_size);
  }
  return out;
}

namespace {

/// The match window the incremental decoder must retain: the format's
/// 2-byte offsets can reach at most kMaxOffset bytes back.
constexpr size_t kLzRetention = kMaxOffset;
/// Flush granularity: produced bytes beyond retention + slack are moved to
/// the caller so peak buffering stays O(128 KiB) even for huge RLE tokens.
constexpr size_t kLzFlushSlack = 65536;

}  // namespace

LzDecompressor::LzDecompressor(size_t raw_size) : raw_size_(raw_size) {
  if (raw_size_ == 0) state_ = State::kDone;
}

Status LzDecompressor::Fail(Status status) {
  error_ = status;
  return error_;
}

void LzDecompressor::EmitAndTrim(size_t before_size,
                                 std::vector<uint8_t>* out) {
  peak_buffered_ = std::max(peak_buffered_, window_.size());
  out->insert(out->end(), window_.begin() + before_size, window_.end());
  if (window_.size() > kLzRetention + kLzFlushSlack) {
    window_.erase(window_.begin(), window_.end() - kLzRetention);
  }
}

Status LzDecompressor::ExecuteMatch(std::vector<uint8_t>* out) {
  const size_t match_len = match_code_ + kMinMatch;
  if (produced_ + match_len > raw_size_) {
    return Fail(Status::Corruption("lz: output overflow in match"));
  }
  // Execute in bounded steps so one giant RLE token cannot balloon the
  // window; splitting preserves the sequential replicate semantic because
  // the retained history always covers `offset_`.
  size_t remaining = match_len;
  while (remaining > 0) {
    const size_t step = std::min(remaining, kLzFlushSlack);
    const size_t before = window_.size();
    window_.resize(before + step);
    simd::ReplicateRun(window_.data() + before, offset_, step);
    produced_ += step;
    EmitAndTrim(before, out);
    remaining -= step;
  }
  state_ = produced_ == raw_size_ ? State::kDone : State::kToken;
  return Status::OK();
}

Status LzDecompressor::Feed(std::span<const uint8_t> data,
                            std::vector<uint8_t>* out) {
  if (!error_.ok()) return error_;
  size_t pos = 0;
  while (true) {
    switch (state_) {
      case State::kDone:
        // Trailing compressed bytes after raw_size output are ignored,
        // matching LzDecompress.
        return Status::OK();
      case State::kToken: {
        if (pos >= data.size()) return Status::OK();
        token_ = data[pos++];
        literal_remaining_ = token_ >> 4;
        if (literal_remaining_ == 15) {
          state_ = State::kLiteralLen;
        } else {
          if (produced_ + literal_remaining_ > raw_size_) {
            return Fail(Status::Corruption("lz: output overflow in literals"));
          }
          state_ = State::kLiterals;
        }
        break;
      }
      case State::kLiteralLen: {
        if (pos >= data.size()) return Status::OK();
        const uint8_t byte = data[pos++];
        literal_remaining_ += byte;
        if (byte != 255) {
          if (produced_ + literal_remaining_ > raw_size_) {
            return Fail(Status::Corruption("lz: output overflow in literals"));
          }
          state_ = State::kLiterals;
        }
        break;
      }
      case State::kLiterals: {
        if (literal_remaining_ > 0) {
          const size_t step =
              std::min(literal_remaining_, data.size() - pos);
          if (step == 0) return Status::OK();
          const size_t before = window_.size();
          window_.insert(window_.end(), data.begin() + pos,
                         data.begin() + pos + step);
          pos += step;
          produced_ += step;
          literal_remaining_ -= step;
          EmitAndTrim(before, out);
        }
        if (literal_remaining_ == 0) {
          // A final token carries only literals: once raw_size is reached
          // there is no match half to parse (same break LzDecompress takes).
          state_ = produced_ == raw_size_ ? State::kDone : State::kOffset;
          offset_ = 0;
          offset_bytes_ = 0;
        }
        break;
      }
      case State::kOffset: {
        if (pos >= data.size()) return Status::OK();
        offset_ |= static_cast<size_t>(data[pos++]) << (8 * offset_bytes_);
        if (++offset_bytes_ < 2) break;
        if (offset_ == 0) {
          return Fail(Status::Corruption("lz: invalid match offset 0"));
        }
        // The retained window spans min(produced, kMaxOffset) bytes, so
        // this is the materializing decoder's `offset > produced` check —
        // and the hard guarantee that no window read reaches evicted bytes.
        if (offset_ > window_.size()) {
          return Fail(Status::Corruption(
              "lz: match offset ", offset_,
              " reaches before the retained window (", window_.size(),
              " bytes)"));
        }
        match_code_ = token_ & 0x0f;
        if (match_code_ == 15) {
          state_ = State::kMatchLen;
        } else {
          MMM_RETURN_NOT_OK(ExecuteMatch(out));
        }
        break;
      }
      case State::kMatchLen: {
        if (pos >= data.size()) return Status::OK();
        const uint8_t byte = data[pos++];
        match_code_ += byte;
        if (byte != 255) MMM_RETURN_NOT_OK(ExecuteMatch(out));
        break;
      }
    }
  }
}

Status LzDecompressor::Finish() {
  if (!error_.ok()) return error_;
  if (state_ != State::kDone) {
    return Fail(Status::Corruption("lz: truncated stream after ", produced_,
                                   " of ", raw_size_, " bytes"));
  }
  return Status::OK();
}

Status BlobDecompressor::Fail(Status status) {
  error_ = status;
  return error_;
}

size_t BlobDecompressor::peak_buffered_bytes() const {
  size_t peak = peak_header_;
  if (lz_.has_value()) peak = std::max(peak, lz_->peak_buffered_bytes());
  peak = std::max(peak, shuffled_.size());
  return peak;
}

Status BlobDecompressor::Feed(std::span<const uint8_t> data,
                              std::vector<uint8_t>* out) {
  if (!error_.ok()) return error_;
  std::span<const uint8_t> payload = data;
  if (mode_ == Mode::kHeader) {
    header_.insert(header_.end(), data.begin(), data.end());
    peak_header_ = std::max(peak_header_, header_.size());
    if (header_.size() < 5) return Status::OK();
    if (std::memcmp(header_.data(), kMagic, 4) != 0) {
      // Raw legacy blob: everything seen so far is payload.
      mode_ = Mode::kPassthrough;
      payload = header_;
    } else {
      const uint8_t method_byte = header_[4];
      if (method_byte > static_cast<uint8_t>(Compression::kShuffleLz)) {
        return Fail(
            Status::Corruption("unknown compression method ", method_byte));
      }
      // Varint raw size, possibly still incomplete.
      uint64_t value = 0;
      int shift = 0;
      size_t idx = 5;
      while (true) {
        if (idx >= header_.size()) return Status::OK();  // need more bytes
        if (shift >= 64) {
          return Fail(Status::Corruption("blob header varint overflows"));
        }
        const uint8_t byte = header_[idx++];
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        shift += 7;
        if ((byte & 0x80) == 0) break;
      }
      raw_size_ = value;
      switch (static_cast<Compression>(method_byte)) {
        case Compression::kNone:
          mode_ = Mode::kStoredNone;
          break;
        case Compression::kLz:
          mode_ = Mode::kStoredLz;
          lz_.emplace(value);
          break;
        case Compression::kShuffleLz:
          mode_ = Mode::kStoredShuffleLz;
          lz_.emplace(value);
          break;
      }
      payload = std::span<const uint8_t>(header_).subspan(idx);
    }
  }
  Status status = Status::OK();
  switch (mode_) {
    case Mode::kHeader:
      return Status::Internal("unreachable");
    case Mode::kPassthrough:
      emitted_ += payload.size();
      out->insert(out->end(), payload.begin(), payload.end());
      break;
    case Mode::kStoredNone:
      emitted_ += payload.size();
      if (emitted_ > *raw_size_) {
        status = Status::Corruption("stored blob size mismatch");
        break;
      }
      out->insert(out->end(), payload.begin(), payload.end());
      break;
    case Mode::kStoredLz:
      status = lz_->Feed(payload, out);
      break;
    case Mode::kStoredShuffleLz:
      status = lz_->Feed(payload, &shuffled_);
      break;
  }
  if (!header_.empty()) {
    header_.clear();
    header_.shrink_to_fit();
  }
  if (!status.ok()) return Fail(status);
  return Status::OK();
}

Status BlobDecompressor::Finish(std::vector<uint8_t>* out) {
  if (!error_.ok()) return error_;
  switch (mode_) {
    case Mode::kHeader:
      // Fewer than 5 bytes total, or a framed header cut off mid-varint.
      if (header_.size() >= 5 &&
          std::memcmp(header_.data(), kMagic, 4) == 0) {
        return Fail(Status::Corruption("truncated blob header"));
      }
      out->insert(out->end(), header_.begin(), header_.end());
      return Status::OK();
    case Mode::kPassthrough:
      return Status::OK();
    case Mode::kStoredNone:
      if (emitted_ != *raw_size_) {
        return Fail(Status::Corruption("stored blob size mismatch"));
      }
      return Status::OK();
    case Mode::kStoredLz: {
      Status status = lz_->Finish();
      if (!status.ok()) return Fail(status);
      return Status::OK();
    }
    case Mode::kStoredShuffleLz: {
      Status status = lz_->Finish();
      if (!status.ok()) return Fail(status);
      std::vector<uint8_t> raw = UnshuffleBytes(shuffled_, 4);
      out->insert(out->end(), raw.begin(), raw.end());
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

std::vector<uint8_t> ShuffleBytes(std::span<const uint8_t> input, size_t stride) {
  if (stride <= 1) return {input.begin(), input.end()};
  const size_t groups = input.size() / stride;
  std::vector<uint8_t> out;
  out.reserve(input.size());
  for (size_t plane = 0; plane < stride; ++plane) {
    for (size_t g = 0; g < groups; ++g) {
      out.push_back(input[g * stride + plane]);
    }
  }
  out.insert(out.end(), input.begin() + groups * stride, input.end());
  return out;
}

std::vector<uint8_t> UnshuffleBytes(std::span<const uint8_t> input,
                                    size_t stride) {
  if (stride <= 1) return {input.begin(), input.end()};
  const size_t groups = input.size() / stride;
  std::vector<uint8_t> out(input.size());
  for (size_t plane = 0; plane < stride; ++plane) {
    for (size_t g = 0; g < groups; ++g) {
      out[g * stride + plane] = input[plane * groups + g];
    }
  }
  for (size_t i = groups * stride; i < input.size(); ++i) out[i] = input[i];
  return out;
}

std::vector<uint8_t> CompressBlob(Compression method,
                                  std::span<const uint8_t> input) {
  BinaryWriter header;
  header.WriteBytes(std::span<const uint8_t>(kMagic, 4));
  header.WriteUint8(static_cast<uint8_t>(method));
  header.WriteVarint(input.size());
  std::vector<uint8_t> out = header.TakeBuffer();

  switch (method) {
    case Compression::kNone:
      out.insert(out.end(), input.begin(), input.end());
      break;
    case Compression::kLz: {
      std::vector<uint8_t> payload = LzCompress(input);
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    }
    case Compression::kShuffleLz: {
      std::vector<uint8_t> shuffled = ShuffleBytes(input, 4);
      std::vector<uint8_t> payload = LzCompress(shuffled);
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    }
  }
  return out;
}

Result<std::vector<uint8_t>> DecompressBlob(std::span<const uint8_t> input) {
  if (input.size() < 5 || std::memcmp(input.data(), kMagic, 4) != 0) {
    // Raw legacy blob.
    return std::vector<uint8_t>(input.begin(), input.end());
  }
  BinaryReader reader(input);
  MMM_RETURN_NOT_OK(reader.Skip(4));
  MMM_ASSIGN_OR_RETURN(uint8_t method_byte, reader.ReadUint8());
  if (method_byte > static_cast<uint8_t>(Compression::kShuffleLz)) {
    return Status::Corruption("unknown compression method ", method_byte);
  }
  auto method = static_cast<Compression>(method_byte);
  MMM_ASSIGN_OR_RETURN(uint64_t raw_size, reader.ReadVarint());
  std::span<const uint8_t> payload = input.subspan(reader.offset());

  switch (method) {
    case Compression::kNone:
      if (payload.size() != raw_size) {
        return Status::Corruption("stored blob size mismatch");
      }
      return std::vector<uint8_t>(payload.begin(), payload.end());
    case Compression::kLz:
      return LzDecompress(payload, raw_size);
    case Compression::kShuffleLz: {
      MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> shuffled,
                           LzDecompress(payload, raw_size));
      return UnshuffleBytes(shuffled, 4);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace mmm
