#ifndef MMM_STORAGE_STORE_STATS_H_
#define MMM_STORAGE_STORE_STATS_H_

#include <atomic>
#include <cstdint>

namespace mmm {

/// \brief Operation and byte counters for one store.
///
/// The evaluation's storage-consumption metric is `bytes_written` scoped to
/// one save operation; the write-overhead analysis (opportunity O3 in §3.1)
/// uses `write_ops`.
struct StoreStats {
  uint64_t write_ops = 0;
  uint64_t read_ops = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;

  void Reset() { *this = StoreStats{}; }

  StoreStats operator-(const StoreStats& other) const {
    StoreStats d;
    d.write_ops = write_ops - other.write_ops;
    d.read_ops = read_ops - other.read_ops;
    d.bytes_written = bytes_written - other.bytes_written;
    d.bytes_read = bytes_read - other.bytes_read;
    return d;
  }

  StoreStats operator+(const StoreStats& other) const {
    StoreStats s;
    s.write_ops = write_ops + other.write_ops;
    s.read_ops = read_ops + other.read_ops;
    s.bytes_written = bytes_written + other.bytes_written;
    s.bytes_read = bytes_read + other.bytes_read;
    return s;
  }
};

/// \brief Race-free accumulator behind each store's StoreStats.
///
/// The serving layer issues concurrent reads against one FileStore /
/// DocumentStore instance, so the per-op bookkeeping must not race. Relaxed
/// atomics suffice: the counters are statistics, not synchronization — every
/// increment lands exactly once and Snapshot() is read for reporting between
/// (or after) bursts of operations.
class AtomicStoreStats {
 public:
  void AddWrite(uint64_t bytes) {
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void AddRead(uint64_t bytes) {
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Folds a detached batch's merged counters in (see FileStore::MergeBatch).
  void Add(const StoreStats& delta) {
    write_ops_.fetch_add(delta.write_ops, std::memory_order_relaxed);
    read_ops_.fetch_add(delta.read_ops, std::memory_order_relaxed);
    bytes_written_.fetch_add(delta.bytes_written, std::memory_order_relaxed);
    bytes_read_.fetch_add(delta.bytes_read, std::memory_order_relaxed);
  }

  void Reset() {
    write_ops_.store(0, std::memory_order_relaxed);
    read_ops_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  StoreStats Snapshot() const {
    StoreStats s;
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    s.read_ops = read_ops_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace mmm

#endif  // MMM_STORAGE_STORE_STATS_H_
