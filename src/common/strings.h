#ifndef MMM_COMMON_STRINGS_H_
#define MMM_COMMON_STRINGS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mmm {

/// \brief Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits `input` on every occurrence of `sep` (keeps empty fields).
std::vector<std::string> Split(std::string_view input, char sep);

/// \brief Returns true iff `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// \brief Returns true iff `input` ends with `suffix`.
bool EndsWith(std::string_view input, std::string_view suffix);

/// \brief Lowercase hex encoding of a byte span ("0a1b...").
std::string HexEncode(std::span<const uint8_t> bytes);

/// \brief Inverse of HexEncode; returns false on malformed input.
bool HexDecode(std::string_view hex, std::vector<uint8_t>* out);

/// \brief Formats a byte count with binary units ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

/// \brief Formats seconds with an adaptive unit ("1.23 s", "45.1 ms").
std::string HumanSeconds(double seconds);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mmm

#endif  // MMM_COMMON_STRINGS_H_
