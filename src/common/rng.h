#ifndef MMM_COMMON_RNG_H_
#define MMM_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace mmm {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of the library (parameter initialization, data
/// shuffling, measurement noise, drive-cycle synthesis) draw from Rng streams
/// derived from explicit seeds. This is what makes the Provenance approach's
/// training replay bit-exact: re-running a pipeline with the same seeds
/// reproduces the same parameters.
///
/// Streams can be derived hierarchically via Fork(purpose, index) so that
/// independent components never share a stream.
class Rng {
 public:
  /// Seeds the generator. The 64-bit seed is expanded to 256 bits of state
  /// with SplitMix64, as recommended by the xoshiro authors.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextUint64();

  /// Returns a uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform float in [0, 1).
  float NextFloat();

  /// Returns a uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Returns a standard-normal sample (Box-Muller; caches the second value).
  double NextGaussian();

  /// Returns a normal sample with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child stream from this stream's seed, a purpose
  /// label, and an index. Deterministic: the same (seed, purpose, index)
  /// always yields the same stream regardless of how much this stream has
  /// been consumed.
  Rng Fork(std::string_view purpose, uint64_t index = 0) const;

  /// The seed this stream was constructed with.
  uint64_t seed() const { return seed_; }

  /// Mixes a 64-bit value through SplitMix64's finalizer (useful as a cheap
  /// deterministic hash for stream derivation).
  static uint64_t Mix64(uint64_t x);

 private:
  uint64_t seed_ = 0;
  uint64_t state_[4] = {0, 0, 0, 0};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mmm

#endif  // MMM_COMMON_RNG_H_
