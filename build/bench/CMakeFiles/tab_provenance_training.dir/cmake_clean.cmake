file(REMOVE_RECURSE
  "CMakeFiles/tab_provenance_training.dir/tab_provenance_training.cpp.o"
  "CMakeFiles/tab_provenance_training.dir/tab_provenance_training.cpp.o.d"
  "tab_provenance_training"
  "tab_provenance_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_provenance_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
