#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/manager.h"
#include "serve/layer_cache.h"
#include "serve/service.h"
#include "serve/trace.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::RandomTensor;
using testing::TempDir;

Sha256Digest DigestOf(uint8_t tag) {
  Sha256Digest d;
  d.bytes.fill(tag);
  return d;
}

// ---------------------------------------------------------------------------
// LayerCache invariants.

TEST(LayerCacheTest, RoundTripAndHitCounters) {
  LayerCache cache(1 << 20, /*shards=*/4);
  Tensor t = RandomTensor(Shape{16, 4}, 1);
  Tensor out;
  EXPECT_FALSE(cache.Get(DigestOf(1), &out));
  EXPECT_TRUE(cache.Put(DigestOf(1), t));
  EXPECT_FALSE(cache.Put(DigestOf(1), t));  // duplicate declined
  EXPECT_TRUE(cache.Get(DigestOf(1), &out));
  EXPECT_TRUE(out.Equals(t));
  LayerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LayerCacheTest, CapacityNeverExceeded) {
  Tensor t = RandomTensor(Shape{64}, 2);
  uint64_t charge = LayerCache::ChargeOf(t);
  // One shard so the budget is a single LRU; room for ~4 entries.
  LayerCache cache(charge * 4, /*shards=*/1);
  for (uint8_t i = 0; i < 100; ++i) {
    cache.Put(DigestOf(i), t);
    LayerCacheStats stats = cache.stats();
    ASSERT_LE(stats.bytes_used, cache.capacity_bytes());
    ASSERT_LE(stats.entries, 4u);
  }
  LayerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 96u);
  // An entry larger than the whole budget is declined outright.
  Tensor huge = RandomTensor(Shape{1024}, 3);
  EXPECT_FALSE(cache.Put(DigestOf(200), huge));
  EXPECT_LE(cache.stats().bytes_used, cache.capacity_bytes());
}

TEST(LayerCacheTest, PinnedEntriesSurviveEvictionPressure) {
  Tensor t = RandomTensor(Shape{64}, 4);
  uint64_t charge = LayerCache::ChargeOf(t);
  LayerCache cache(charge * 3, /*shards=*/1);
  ASSERT_TRUE(cache.Put(DigestOf(1), t, /*pinned=*/true));
  ASSERT_TRUE(cache.Put(DigestOf(2), t));
  ASSERT_TRUE(cache.Pin(DigestOf(2)));
  for (uint8_t i = 10; i < 60; ++i) cache.Put(DigestOf(i), t);
  EXPECT_TRUE(cache.Contains(DigestOf(1)));
  EXPECT_TRUE(cache.Contains(DigestOf(2)));
  ASSERT_LE(cache.stats().bytes_used, cache.capacity_bytes());
  // With only pinned entries left in budget, an oversized Put is declined,
  // never evicting a pinned entry.
  Tensor big = RandomTensor(Shape{140}, 5);
  EXPECT_FALSE(cache.Put(DigestOf(99), big));
  EXPECT_TRUE(cache.Contains(DigestOf(1)));
  EXPECT_TRUE(cache.Contains(DigestOf(2)));
  // Unpinning releases them for eviction again.
  cache.Unpin(DigestOf(1));
  cache.Unpin(DigestOf(2));
  for (uint8_t i = 60; i < 70; ++i) cache.Put(DigestOf(i), t);
  EXPECT_FALSE(cache.Contains(DigestOf(1)));
}

TEST(LayerCacheTest, InvalidateRemovesEvenPinned) {
  Tensor t = RandomTensor(Shape{8}, 6);
  LayerCache cache(1 << 20, /*shards=*/2);
  ASSERT_TRUE(cache.Put(DigestOf(1), t, /*pinned=*/true));
  EXPECT_TRUE(cache.Invalidate(DigestOf(1)));
  EXPECT_FALSE(cache.Contains(DigestOf(1)));
  LayerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bytes_used, 0u);
  EXPECT_EQ(stats.bytes_pinned, 0u);
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_FALSE(cache.Invalidate(DigestOf(1)));
}

// ---------------------------------------------------------------------------
// Trace generation.

TEST(TraceTest, ZipfianTraceIsDeterministicAndSkewed) {
  std::vector<std::string> ids = {"a", "b", "c", "d", "e"};
  std::vector<std::string> t1 = BuildZipfianTrace(ids, 1000, 0.99, 7);
  std::vector<std::string> t2 = BuildZipfianTrace(ids, 1000, 0.99, 7);
  EXPECT_EQ(t1, t2);
  std::map<std::string, size_t> counts;
  for (const std::string& id : t1) counts[id] += 1;
  // ids[0] is the hottest item by construction.
  EXPECT_GT(counts["a"], counts["e"]);
  EXPECT_GT(counts["a"], 1000u / ids.size());
}

TEST(TraceTest, SummarizePercentiles) {
  std::vector<uint64_t> nanos;
  for (uint64_t i = 1; i <= 100; ++i) nanos.push_back(i);
  LatencySummary s = Summarize(nanos);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.p50, 50u);
  EXPECT_EQ(s.p99, 99u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(Summarize({}).p99, 0u);
}

// ---------------------------------------------------------------------------
// ModelSetService: a small battery deployment saved by every approach.

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : temp_("serve") {}

  void OpenManager(UpdateApproachOptions update_options = {}) {
    ScenarioConfig config = ScenarioConfig::Battery(12);
    config.samples_per_dataset = 64;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    ASSERT_OK(scenario_->Init());
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    options.update_options = update_options;
    // Modeled store latency on, so per-request cost comparisons are
    // meaningful (the clock is simulated — no real waiting).
    options.profile = SetupProfile::Server();
    ASSERT_OK_AND_ASSIGN(manager_, ModelSetManager::Open(options));
  }

  // Saves the current scenario state with `type` (derived from the
  // approach's chain head when `update` is given) and records the expected
  // recovered state.
  std::string Save(ApproachType type, const ModelSetUpdateInfo* update) {
    Result<SaveResult> saved =
        update == nullptr
            ? manager_->SaveInitial(type, scenario_->current_set())
            : [&] {
                ModelSetUpdateInfo derived = *update;
                derived.base_set_id = heads_[type];
                return manager_->SaveDerived(type, scenario_->current_set(),
                                             derived);
              }();
    saved.status().Check();
    heads_[type] = saved.ValueOrDie().set_id;
    expected_[saved.ValueOrDie().set_id] = scenario_->current_set();
    return saved.ValueOrDie().set_id;
  }

  // Saves the current state with all four approaches.
  void SaveAll(const ModelSetUpdateInfo* update) {
    for (ApproachType type : kAllApproaches) Save(type, update);
  }

  void ExpectSetEquals(const ModelSet& recovered, const ModelSet& expected) {
    ASSERT_EQ(recovered.models.size(), expected.models.size());
    ASSERT_EQ(recovered.spec, expected.spec);
    for (size_t m = 0; m < recovered.models.size(); ++m) {
      ASSERT_EQ(recovered.models[m].size(), expected.models[m].size());
      for (size_t p = 0; p < recovered.models[m].size(); ++p) {
        ASSERT_EQ(recovered.models[m][p].first, expected.models[m][p].first);
        ASSERT_TRUE(
            recovered.models[m][p].second.Equals(expected.models[m][p].second))
            << "model " << m << " param " << recovered.models[m][p].first;
      }
    }
  }

  size_t TotalLayers(const ModelSet& set) const {
    return set.models.empty() ? 0 : set.models.size() * set.models[0].size();
  }

  uint64_t SetChargeBytes(const ModelSet& set) const {
    uint64_t total = 0;
    for (const StateDict& model : set.models) {
      for (const auto& [key, tensor] : model) {
        total += LayerCache::ChargeOf(tensor);
      }
    }
    return total;
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
  std::map<ApproachType, std::string> heads_;
  std::map<std::string, ModelSet> expected_;
};

// All four approaches, served concurrently, stay bit-exact at any worker
// count (content-hash keying + deterministic lane assignment).
TEST_F(ServeTest, ReplayAllApproachesBitExact) {
  OpenManager();
  SaveAll(nullptr);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    SaveAll(&update);
  }
  // Every saved set, twice, so the second round hits the warm cache.
  std::vector<std::string> trace;
  for (const auto& [id, set] : expected_) trace.push_back(id);
  const std::vector<std::string> once = trace;
  trace.insert(trace.end(), once.begin(), once.end());

  for (size_t workers : {size_t{1}, size_t{4}}) {
    ModelSetServiceOptions options;
    options.workers = workers;
    ModelSetService service(manager_.get(), options);
    std::vector<ModelSet> recovered;
    std::vector<ServeResult> results = service.Replay(trace, &recovered);
    ASSERT_EQ(results.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok())
          << "request " << i << " set " << trace[i] << ": "
          << results[i].status.ToString();
      EXPECT_EQ(results[i].set_id, trace[i]);
      ExpectSetEquals(recovered[i], expected_[trace[i]]);
    }
  }
}

// With the cache off and one worker, the service is a pass-through: results
// and modeled store cost are identical to calling Recover directly.
TEST_F(ServeTest, CacheOffSingleWorkerMatchesDirectRecover) {
  OpenManager();
  SaveAll(nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  SaveAll(&update);

  ModelSetServiceOptions options;
  options.workers = 1;
  options.cache_enabled = false;
  ModelSetService service(manager_.get(), options);
  for (const auto& [id, expected] : expected_) {
    RecoverStats direct_stats;
    ASSERT_OK_AND_ASSIGN(ModelSet direct,
                         manager_->Recover(id, &direct_stats));
    ServeResult result;
    ASSERT_OK_AND_ASSIGN(ModelSet served, service.Recover(id, &result));
    ExpectSetEquals(served, direct);
    ExpectSetEquals(served, expected);
    EXPECT_EQ(result.modeled_store_nanos, direct_stats.simulated_store_nanos);
    EXPECT_EQ(result.sets_walked, direct_stats.sets_recovered);
    EXPECT_EQ(result.cache.layer_hits + result.cache.layer_misses, 0u);
  }
}

// Exact hit accounting at one worker: a repeated request probes every layer
// and hits all of them, serving the set without a single file-store read.
TEST_F(ServeTest, WarmCacheHitCountersAreExact) {
  OpenManager();
  std::string base_id = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  std::string head_id = Save(ApproachType::kUpdate, &update);
  size_t layers = TotalLayers(expected_[head_id]);

  ModelSetService service(manager_.get(), ModelSetServiceOptions{});
  // Cold request: every probed layer misses (head + base are both walked).
  ServeResult cold;
  ASSERT_OK_AND_ASSIGN(ModelSet first, service.Recover(head_id, &cold));
  ExpectSetEquals(first, expected_[head_id]);
  EXPECT_EQ(cold.cache.layer_hits, 0u);
  EXPECT_EQ(cold.cache.layer_misses, 2 * layers);  // head + its base
  EXPECT_EQ(cold.cache.meta_misses, 2u);
  EXPECT_EQ(cold.sets_walked, 2u);

  // Warm request: all layers hit, zero file-store reads, strictly cheaper.
  StoreStats before = manager_->file_store()->stats();
  ServeResult warm;
  ASSERT_OK_AND_ASSIGN(ModelSet second, service.Recover(head_id, &warm));
  StoreStats delta = manager_->file_store()->stats() - before;
  ExpectSetEquals(second, expected_[head_id]);
  EXPECT_EQ(warm.cache.layer_hits, layers);
  EXPECT_EQ(warm.cache.layer_misses, 0u);
  EXPECT_EQ(warm.cache.meta_hits, 1u);
  EXPECT_EQ(warm.cache.sets_from_cache, 1u);
  EXPECT_EQ(warm.sets_walked, 1u);
  EXPECT_EQ(delta.read_ops, 0u);
  EXPECT_EQ(delta.bytes_read, 0u);
  EXPECT_LT(warm.modeled_store_nanos, cold.modeled_store_nanos);

  // Sibling sharing: the base set's unchanged layers are already resident,
  // so its first recovery hits on every layer too (the hash table is the
  // only store read left besides documents).
  ServeResult base_result;
  ASSERT_OK_AND_ASSIGN(ModelSet base, service.Recover(base_id, &base_result));
  ExpectSetEquals(base, expected_[base_id]);
  EXPECT_EQ(base_result.cache.layer_hits, layers);
  EXPECT_EQ(base_result.cache.sets_from_cache, 1u);
}

// Pinned sets survive arbitrary eviction pressure; pin bookkeeping is
// rolled back cleanly when the cache cannot hold the set.
TEST_F(ServeTest, PinnedSetSurvivesEvictionPressure) {
  OpenManager();
  std::string base_id = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  std::string head_id = Save(ApproachType::kUpdate, &update);

  // Budget: the base set plus a little headroom — not both sets.
  ModelSetServiceOptions options;
  options.cache_capacity_bytes =
      SetChargeBytes(expected_[base_id]) + (SetChargeBytes(expected_[base_id]) / 4);
  options.cache_shards = 1;
  ModelSetService service(manager_.get(), options);

  ASSERT_OK(service.PinSet(base_id));
  EXPECT_EQ(service.PinnedSets(), std::vector<std::string>{base_id});
  EXPECT_TRUE(service.PinSet(base_id).IsAlreadyExists());

  // Churn the cache well past capacity; the pinned base must keep serving
  // from memory.
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(service.Recover(head_id).status());
  }
  ServeResult pinned_result;
  ASSERT_OK_AND_ASSIGN(ModelSet base, service.Recover(base_id, &pinned_result));
  ExpectSetEquals(base, expected_[base_id]);
  EXPECT_EQ(pinned_result.cache.layer_misses, 0u);
  EXPECT_EQ(pinned_result.cache.sets_from_cache, 1u);
  LayerCacheStats cache_stats = service.cache_stats();
  EXPECT_LE(cache_stats.bytes_used, cache_stats.capacity_bytes);
  EXPECT_GT(cache_stats.bytes_pinned, 0u);

  ASSERT_OK(service.UnpinSet(base_id));
  EXPECT_TRUE(service.UnpinSet(base_id).IsNotFound());
  EXPECT_EQ(service.cache_stats().bytes_pinned, 0u);

  // A cache that cannot hold the set refuses the pin and leaks nothing.
  ModelSetServiceOptions tiny;
  tiny.cache_capacity_bytes = 1024;
  tiny.cache_shards = 1;
  ModelSetService tiny_service(manager_.get(), tiny);
  EXPECT_TRUE(tiny_service.PinSet(base_id).IsInvalidArgument());
  EXPECT_TRUE(tiny_service.PinnedSets().empty());
  EXPECT_EQ(tiny_service.cache_stats().bytes_pinned, 0u);
}

// GC coherence: deleting a collected set invalidates its cached layers, a
// pinned set blocks deletion of anything its recovery needs, and a set
// whose base was legally collected still recovers bit-exact.
TEST_F(ServeTest, DeleteInvalidatesAndRespectsPins) {
  UpdateApproachOptions update_options;
  update_options.snapshot_interval = 2;  // B(full) <- D1(delta) <- D2(full)
  OpenManager(update_options);
  std::string b_id = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo u1, scenario_->AdvanceCycle());
  std::string d1_id = Save(ApproachType::kUpdate, &u1);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo u2, scenario_->AdvanceCycle());
  std::string d2_id = Save(ApproachType::kUpdate, &u2);

  ModelSetService service(manager_.get(), ModelSetServiceOptions{});
  // Warm the cache with every set.
  for (const std::string& id : {b_id, d1_id, d2_id}) {
    ASSERT_OK(service.Recover(id).status());
  }

  // D1 is pinned: deleting it, or its recovery ancestors, pin-fails.
  ASSERT_OK(service.PinSet(d1_id));
  EXPECT_TRUE(service.DeleteSet(d1_id).status().IsInvalidArgument());
  EXPECT_TRUE(service.DeleteSet(b_id).status().IsInvalidArgument());
  ASSERT_OK(service.UnpinSet(d1_id));

  // D2 is a full snapshot, so its base D1 is legally collectable.
  uint64_t invalidated_before = service.cache_stats().invalidated;
  ASSERT_OK_AND_ASSIGN(DeleteReport report, service.DeleteSet(d1_id));
  EXPECT_EQ(report.deleted_set_ids, std::vector<std::string>{d1_id});
  EXPECT_GT(service.cache_stats().invalidated, invalidated_before);

  // The deleted set is gone for good — cached layers cannot resurrect it —
  // while its descendant still recovers bit-exact.
  EXPECT_TRUE(service.Recover(d1_id).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(ModelSet d2, service.Recover(d2_id));
  ExpectSetEquals(d2, expected_[d2_id]);
  ASSERT_OK_AND_ASSIGN(ModelSet b, service.Recover(b_id));
  ExpectSetEquals(b, expected_[b_id]);
}

// Compaction coherence: the compactor rewrites a cached set while a
// *different* set is pinned. The pinned set's lineage and cached layers must
// survive untouched, the rewritten set's stale cache entries must be
// invalidated, and every hit counter stays exact.
TEST_F(ServeTest, CompactionInvalidatesRewrittenSetsAndSparesPins) {
  OpenManager();
  std::string b_id = Save(ApproachType::kUpdate, nullptr);
  std::vector<std::string> chain{b_id};
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    chain.push_back(Save(ApproachType::kUpdate, &update));
  }
  const std::string d3_id = chain.back();  // depth 3
  size_t layers = TotalLayers(expected_[d3_id]);

  ModelSetService service(manager_.get(), ModelSetServiceOptions{});
  // Warm the cache through the deep set (walks and caches the whole chain),
  // then pin the root — a different set than the one compaction rewrites.
  ASSERT_OK(service.Recover(d3_id).status());
  ASSERT_OK(service.PinSet(b_id));

  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  uint64_t invalidated_before = service.cache_stats().invalidated;
  ASSERT_OK_AND_ASSIGN(CompactionReport report, service.CompactChains(policy));
  EXPECT_EQ(report.sets_rebased, 1u);
  EXPECT_EQ(report.rebased_set_ids, std::vector<std::string>{d3_id});
  EXPECT_EQ(report.rewritten_set_ids, std::vector<std::string>{d3_id});
  EXPECT_GT(service.cache_stats().invalidated, invalidated_before);

  // The pinned set still serves entirely from the cache: its layers were
  // spared by the pin-aware invalidation, and its metadata memo was not
  // touched (only rewritten sets are invalidated).
  ServeResult pinned;
  ASSERT_OK_AND_ASSIGN(ModelSet b, service.Recover(b_id, &pinned));
  ExpectSetEquals(b, expected_[b_id]);
  EXPECT_EQ(pinned.cache.layer_hits, layers);
  EXPECT_EQ(pinned.cache.layer_misses, 0u);
  EXPECT_EQ(pinned.cache.meta_hits, 1u);
  EXPECT_EQ(pinned.cache.sets_from_cache, 1u);

  // The rewritten set lost its metadata memo (its recorded chain shape
  // changed) and every cached layer except the ones the pinned set still
  // holds — layers are keyed by content hash, so exactly the tensors it
  // shares with the pinned root are still resident.
  size_t shared = 0;
  const ModelSet& d3 = expected_[d3_id];
  const ModelSet& root = expected_[b_id];
  for (size_t m = 0; m < d3.models.size(); ++m) {
    for (const auto& [key, tensor] : d3.models[m]) {
      bool resident = false;
      for (size_t rm = 0; rm < root.models.size() && !resident; ++rm) {
        for (const auto& [rkey, rtensor] : root.models[rm]) {
          if (tensor.Equals(rtensor)) {
            resident = true;
            break;
          }
        }
      }
      if (resident) ++shared;
    }
  }
  ASSERT_GT(shared, 0u);
  ASSERT_LT(shared, layers);
  ServeResult rewritten;
  ASSERT_OK_AND_ASSIGN(ModelSet d3_recovered, service.Recover(d3_id, &rewritten));
  ExpectSetEquals(d3_recovered, expected_[d3_id]);
  EXPECT_EQ(rewritten.cache.meta_misses, 1u);
  EXPECT_EQ(rewritten.cache.layer_hits, shared);
  EXPECT_EQ(rewritten.cache.layer_misses, layers - shared);
  // The rebase turned the set into a full snapshot: one set materialized,
  // no chain walk — the serving-side TTR bound compaction exists for.
  EXPECT_EQ(rewritten.sets_walked, 1u);

  // Unpin and recover once more: the service keeps functioning normally on
  // the compacted store.
  ASSERT_OK(service.UnpinSet(b_id));
  ASSERT_OK_AND_ASSIGN(ModelSet again, service.Recover(d3_id));
  ExpectSetEquals(again, expected_[d3_id]);
}

// RetainOnly through the service implicitly keeps pinned sets (and their
// lineage) and invalidates everything it collected.
TEST_F(ServeTest, RetainOnlyKeepsPinnedSets) {
  OpenManager();
  std::string base_id = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  std::string head_id = Save(ApproachType::kUpdate, &update);
  std::string baseline_id = Save(ApproachType::kBaseline, nullptr);

  ModelSetService service(manager_.get(), ModelSetServiceOptions{});
  ASSERT_OK(service.Recover(head_id).status());
  ASSERT_OK(service.PinSet(head_id));

  // Keep only the baseline set; the pinned update chain must survive.
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       service.RetainOnly({baseline_id}));
  EXPECT_EQ(report.sets_deleted, 0u);  // head's lineage covers base too

  ASSERT_OK_AND_ASSIGN(ModelSet head, service.Recover(head_id));
  ExpectSetEquals(head, expected_[head_id]);

  // After unpinning, the sweep collects the update chain and the service
  // refuses to serve it afterwards.
  ASSERT_OK(service.UnpinSet(head_id));
  ASSERT_OK_AND_ASSIGN(report, service.RetainOnly({baseline_id}));
  EXPECT_EQ(report.sets_deleted, 2u);
  EXPECT_TRUE(service.Recover(head_id).status().IsNotFound());
  EXPECT_TRUE(service.Recover(base_id).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(ModelSet baseline, service.Recover(baseline_id));
  ExpectSetEquals(baseline, expected_[baseline_id]);
}

// Concurrent Zipfian replay against one shared cache — the TSan target.
TEST_F(ServeTest, ConcurrentZipfianReplayIsRaceFreeAndExact) {
  OpenManager();
  Save(ApproachType::kUpdate, nullptr);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    Save(ApproachType::kUpdate, &update);
  }
  std::vector<std::string> ids;
  for (const auto& [id, set] : expected_) ids.push_back(id);
  std::vector<std::string> trace = BuildZipfianTrace(ids, 60, 0.99, 11);

  ModelSetServiceOptions options;
  options.workers = 4;
  options.cache_capacity_bytes = 1 << 20;  // force eviction under load
  ModelSetService service(manager_.get(), options);
  std::vector<ModelSet> recovered;
  std::vector<ServeResult> results = service.Replay(trace, &recovered);
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_OK(results[i].status);
    ExpectSetEquals(recovered[i], expected_[trace[i]]);
  }
  LayerCacheStats cache_stats = service.cache_stats();
  EXPECT_LE(cache_stats.bytes_used, cache_stats.capacity_bytes);
}

// Per-request modeled store cost is exact at any worker count: charges are
// attributed through the per-thread clock accumulator and a request runs
// entirely on one worker, so the 4-worker replay reports the same
// modeled_store_nanos per request as the sequential one — not just the same
// total. Cache off, so every request takes the full store path.
TEST_F(ServeTest, PerRequestModeledCostExactUnderConcurrency) {
  OpenManager();
  SaveAll(nullptr);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    SaveAll(&update);
  }
  std::vector<std::string> ids;
  for (const auto& [id, set] : expected_) ids.push_back(id);
  std::vector<std::string> trace = BuildZipfianTrace(ids, 48, 0.99, 13);

  std::vector<std::vector<ServeResult>> runs;
  for (size_t workers : {size_t{1}, size_t{4}}) {
    ModelSetServiceOptions options;
    options.workers = workers;
    options.cache_enabled = false;
    ModelSetService service(manager_.get(), options);
    runs.push_back(service.Replay(trace));
  }
  ASSERT_EQ(runs[0].size(), trace.size());
  ASSERT_EQ(runs[1].size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_OK(runs[0][i].status);
    ASSERT_OK(runs[1][i].status);
    EXPECT_GT(runs[0][i].modeled_store_nanos, 0u) << "request " << i;
    EXPECT_EQ(runs[0][i].modeled_store_nanos, runs[1][i].modeled_store_nanos)
        << "request " << i << " set " << trace[i];
    EXPECT_EQ(runs[0][i].sets_walked, runs[1][i].sets_walked);
  }
}

}  // namespace
}  // namespace mmm
