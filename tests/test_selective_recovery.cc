#include <gtest/gtest.h>

#include "core/manager.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// Fixture: a 40-model battery scenario advanced two cycles and saved with
// every approach, so selective recovery can be checked against the live set.
class SelectiveRecoveryTest : public ::testing::Test {
 protected:
  SelectiveRecoveryTest() : temp_("selective") {
    ScenarioConfig config = ScenarioConfig::Battery(40);
    config.samples_per_dataset = 48;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  void SaveChains(int cycles) {
    for (ApproachType type : kAllApproaches) {
      heads_[type] = manager_->SaveInitial(type, scenario_->current_set())
                         .ValueOrDie()
                         .set_id;
    }
    for (int i = 0; i < cycles; ++i) {
      ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
      for (ApproachType type : kAllApproaches) {
        ModelSetUpdateInfo derived = update;
        derived.base_set_id = heads_[type];
        heads_[type] = manager_
                           ->SaveDerived(type, scenario_->current_set(), derived)
                           .ValueOrDie()
                           .set_id;
      }
    }
  }

  void ExpectMatchesLive(const std::vector<StateDict>& recovered,
                         const std::vector<size_t>& indices) {
    ASSERT_EQ(recovered.size(), indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      const StateDict& expected = scenario_->current_set().models[indices[i]];
      ASSERT_EQ(recovered[i].size(), expected.size());
      for (size_t p = 0; p < expected.size(); ++p) {
        EXPECT_EQ(recovered[i][p].first, expected[p].first);
        EXPECT_TRUE(recovered[i][p].second.Equals(expected[p].second))
            << "model " << indices[i] << " param " << expected[p].first;
      }
    }
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
  std::map<ApproachType, std::string> heads_;
};

class SelectiveRecoverySweep
    : public SelectiveRecoveryTest,
      public ::testing::WithParamInterface<ApproachType> {};

TEST_P(SelectiveRecoverySweep, SubsetMatchesFullRecovery) {
  SaveChains(2);
  std::vector<size_t> indices{3, 17, 39, 0};
  ASSERT_OK_AND_ASSIGN(
      std::vector<StateDict> recovered,
      manager_->RecoverModels(heads_[GetParam()], indices));
  ExpectMatchesLive(recovered, indices);
}

TEST_P(SelectiveRecoverySweep, SingleModelFromInitialSet) {
  SaveChains(0);
  std::vector<size_t> indices{11};
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager_->RecoverModels(heads_[GetParam()], indices));
  ExpectMatchesLive(recovered, indices);
}

TEST_P(SelectiveRecoverySweep, DuplicatesAndOrderPreserved) {
  SaveChains(1);
  std::vector<size_t> indices{5, 5, 2, 5};
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager_->RecoverModels(heads_[GetParam()], indices));
  ExpectMatchesLive(recovered, indices);
  EXPECT_TRUE(recovered[0][0].second.Equals(recovered[3][0].second));
}

TEST_P(SelectiveRecoverySweep, OutOfRangeIndexFails) {
  SaveChains(0);
  EXPECT_TRUE(manager_->RecoverModels(heads_[GetParam()], {40})
                  .status()
                  .IsInvalidArgument());
}

TEST_P(SelectiveRecoverySweep, EmptyIndexListYieldsEmptyResult) {
  SaveChains(0);
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager_->RecoverModels(heads_[GetParam()], {}));
  EXPECT_TRUE(recovered.empty());
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, SelectiveRecoverySweep,
                         ::testing::Values(ApproachType::kMMlibBase,
                                           ApproachType::kBaseline,
                                           ApproachType::kUpdate,
                                           ApproachType::kProvenance),
                         [](const auto& info) {
                           std::string name = ApproachTypeName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST_F(SelectiveRecoveryTest, BaselineSelectiveReadsFarFewerBytes) {
  SaveChains(0);
  manager_->file_store()->ResetStats();
  manager_->RecoverModels(heads_[ApproachType::kBaseline], {7}).status().Check();
  uint64_t selective_bytes = manager_->file_store()->stats().bytes_read;
  manager_->file_store()->ResetStats();
  manager_->Recover(heads_[ApproachType::kBaseline]).status().Check();
  uint64_t full_bytes = manager_->file_store()->stats().bytes_read;
  // One model out of 40: selective reads ~1/40th of the parameter bytes.
  EXPECT_LT(selective_bytes * 10, full_bytes);
}

TEST_F(SelectiveRecoveryTest, UpdateSelectiveAvoidsFullChainMaterialization) {
  SaveChains(3);
  manager_->file_store()->ResetStats();
  RecoverStats stats;
  manager_->RecoverModels(heads_[ApproachType::kUpdate], {1, 2}, &stats)
      .status()
      .Check();
  uint64_t selective_bytes = manager_->file_store()->stats().bytes_read;
  EXPECT_EQ(stats.sets_recovered, 4u);  // walks the metadata of all 4 sets
  manager_->file_store()->ResetStats();
  manager_->Recover(heads_[ApproachType::kUpdate]).status().Check();
  uint64_t full_bytes = manager_->file_store()->stats().bytes_read;
  EXPECT_LT(selective_bytes, full_bytes / 2);
}

TEST_F(SelectiveRecoveryTest, ProvenanceSelectiveRetrainsOnlyRequestedModels) {
  SaveChains(2);
  // Find a model updated in cycle 1 or 2 and one never updated.
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<StateDict> recovered,
      manager_->RecoverModels(heads_[ApproachType::kProvenance], {0, 1, 2, 3},
                              &stats));
  ASSERT_EQ(recovered.size(), 4u);
  // At most (4 requested) x (2 cycles) retrainings; full recovery would do
  // 8 retrainings (4 updated models per cycle x 2 cycles).
  EXPECT_LE(stats.models_retrained, 8u);
  ExpectMatchesLive(recovered, {0, 1, 2, 3});
}

TEST_F(SelectiveRecoveryTest, SelectiveRecoveryFromCompressedStore) {
  TempDir temp("selective-compressed");
  ScenarioConfig config = ScenarioConfig::Battery(10);
  config.samples_per_dataset = 32;
  MultiModelScenario scenario(config);
  scenario.Init().Check();
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  options.blob_compression = Compression::kShuffleLz;
  auto manager = ModelSetManager::Open(options).ValueOrDie();
  std::string id = manager
                       ->SaveInitial(ApproachType::kBaseline,
                                     scenario.current_set())
                       .ValueOrDie()
                       .set_id;
  // Compressed blobs force the full-read fallback, which must still work.
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> recovered,
                       manager->RecoverModels(id, {4}));
  EXPECT_TRUE(
      recovered[0][2].second.Equals(scenario.current_set().models[4][2].second));
}

}  // namespace
}  // namespace mmm
