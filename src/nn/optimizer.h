#ifndef MMM_NN_OPTIMIZER_H_
#define MMM_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "nn/parameter.h"

namespace mmm {

/// \brief Base class for gradient-descent optimizers.
///
/// Optimizers hold borrowed pointers to the network's parameters and update
/// only those marked `trainable` — partial model updates freeze all but the
/// retrained layers (paper §2.1).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  virtual std::string TypeName() const = 0;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (Parameter* p : parameters_) p->ZeroGrad();
  }

 protected:
  std::vector<Parameter*> parameters_;
};

/// \brief Stochastic gradient descent with optional momentum and weight decay.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> parameters, float learning_rate,
      float momentum = 0.0f, float weight_decay = 0.0f);

  std::string TypeName() const override { return "sgd"; }
  void Step() override;

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f);

  std::string TypeName() const override { return "adam"; }
  void Step() override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace mmm

#endif  // MMM_NN_OPTIMIZER_H_
