# Empty dependencies file for test_conv_ops.
# This may be replaced when dependencies are built.
