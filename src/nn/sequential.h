#ifndef MMM_NN_SEQUENTIAL_H_
#define MMM_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/module.h"

namespace mmm {

/// \brief A named parameter within a network ("fc1.weight" -> Parameter*).
struct NamedParameter {
  std::string qualified_name;
  Parameter* parameter;
};

/// \brief Container running child modules in order.
///
/// Children are registered with stable names ("fc1", "act1", ...); parameter
/// keys are "<child>.<param>". The ordered list of named parameters is the
/// model's *state dict* — the unit of persistence for every management
/// approach.
class Sequential : public Module {
 public:
  std::string TypeName() const override { return "sequential"; }

  /// Appends a child module under `name` (must be unique, non-empty,
  /// '.'-free) and returns a borrowed pointer to it.
  Module* Add(std::string name, std::unique_ptr<Module> module);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  /// Qualified parameters in deterministic (layer, parameter) order.
  std::vector<NamedParameter> NamedParameters();

  /// Looks up a child by name.
  Result<Module*> Child(const std::string& name);
  const std::vector<std::pair<std::string, std::unique_ptr<Module>>>& children()
      const {
    return children_;
  }

  /// Total number of scalar parameters.
  size_t ParameterCount();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Sets `trainable` on every parameter whose layer name is in `layers`
  /// (and clears it on all others). Passing an empty list unfreezes all.
  /// Unknown layer names are an InvalidArgument error.
  Status SetTrainableLayers(const std::vector<std::string>& layers);

 private:
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> children_;
};

}  // namespace mmm

#endif  // MMM_NN_SEQUENTIAL_H_
