#ifndef MMM_WORKLOAD_SCENARIO_H_
#define MMM_WORKLOAD_SCENARIO_H_

#include <string>
#include <vector>

#include "battery/data_gen.h"
#include "core/model_set.h"
#include "data/cifar_synthetic.h"
#include "data/dataset_ref.h"

namespace mmm {

/// Which deployment the scenario emulates (paper §4.1).
enum class ScenarioKind { kBattery, kCifar };

/// \brief Parameters of the evaluation scenario (Figure 2: one U1 followed
/// by iterations of U3).
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kBattery;
  ArchitectureSpec spec;
  /// Number of models in the set; the paper uses 5000 battery cells.
  size_t num_models = 5000;
  /// Fractions of models fully / partially updated per U3 iteration
  /// (paper default: 5% + 5% = 10% update rate).
  double full_update_fraction = 0.05;
  double partial_update_fraction = 0.05;
  /// Layers retrained by partial updates (last two layers by default,
  /// realizing §2.1's "retrain single layers").
  std::vector<std::string> partial_layers;
  uint64_t seed = 7;

  /// \name Training-scale knobs (scaled down from the paper's 342 M samples;
  /// see DESIGN.md §1).
  /// @{
  size_t samples_per_dataset = 256;
  int epochs = 1;
  size_t batch_size = 64;
  float learning_rate = 0.05f;
  /// @}

  /// Battery aging: SoH decrement per update cycle (§4.1: "we decrement the
  /// state of health of the batteries every update cycle").
  double initial_soh = 1.0;
  double soh_decrement = 0.01;

  /// Default battery scenario (FFNN-48).
  static ScenarioConfig Battery(size_t num_models = 5000);
  /// Battery scenario with the larger FFNN-69 model.
  static ScenarioConfig BatteryLarge(size_t num_models = 5000);
  /// Image-classification scenario (CIFAR convnet).
  static ScenarioConfig Cifar(size_t num_models = 5000);
};

/// \brief Drives the multi-model deployment: maintains the live model set,
/// schedules updates, trains updated models, and resolves dataset
/// references during Provenance recovery.
///
/// Fully deterministic in the config: two scenarios with equal configs
/// produce bit-identical model-set sequences, so every approach can be
/// evaluated on exactly the same workload.
class MultiModelScenario : public DatasetResolver {
 public:
  explicit MultiModelScenario(ScenarioConfig config);

  /// Builds the initial model set (use case U1). Must be called once before
  /// AdvanceCycle.
  Status Init();

  /// Runs one U3 iteration: selects models per the update fractions,
  /// retrains them on freshly generated data, and returns the derivation
  /// metadata (base_set_id left empty — each approach chain fills its own).
  Result<ModelSetUpdateInfo> AdvanceCycle();

  /// The live model set (after Init / the latest AdvanceCycle).
  const ModelSet& current_set() const { return set_; }

  /// Completed U3 iterations.
  uint64_t cycle() const { return cycle_; }

  const ScenarioConfig& config() const { return config_; }

  /// The shared training pipeline of cycle `cycle` (identical across models
  /// of a cycle — §3.4's assumption 1).
  TrainPipelineSpec PipelineForCycle(uint64_t cycle) const;

  /// Canonical dataset reference of (model, cycle), with content hash.
  DatasetRef MakeDatasetRef(uint64_t model_index, uint64_t cycle) const;

  /// DatasetResolver: regenerates the referenced dataset (the scenario's
  /// generators play the role of the external data owner) and verifies the
  /// content hash.
  Result<TrainingData> Resolve(const DatasetRef& ref) override;

 private:
  TrainingData GenerateData(uint64_t model_index, uint64_t cycle) const;
  Status TrainOne(size_t model_index, UpdateKind kind, uint64_t cycle,
                  std::string* content_hash);

  ScenarioConfig config_;
  BatteryDataGenerator battery_gen_;
  CifarSyntheticGenerator cifar_gen_;
  ModelSet set_;
  uint64_t cycle_ = 0;
  bool initialized_ = false;
};

}  // namespace mmm

#endif  // MMM_WORKLOAD_SCENARIO_H_
