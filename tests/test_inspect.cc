#include "core/inspect.h"

#include <gtest/gtest.h>

#include "core/manager.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

class InspectTest : public ::testing::Test {
 protected:
  InspectTest() : temp_("inspect") {
    ScenarioConfig config = ScenarioConfig::Battery(12);
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  /// Saves U1 + `cycles` update-approach deltas; returns the chain ids.
  std::vector<std::string> BuildUpdateChain(int cycles) {
    std::vector<std::string> ids;
    ids.push_back(manager_->SaveInitial(ApproachType::kUpdate,
                                        scenario_->current_set())
                      .ValueOrDie()
                      .set_id);
    for (int i = 0; i < cycles; ++i) {
      ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      ids.push_back(manager_
                        ->SaveDerived(ApproachType::kUpdate,
                                      scenario_->current_set(), update)
                        .ValueOrDie()
                        .set_id);
    }
    return ids;
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(InspectTest, ListSetsEmptyStore) {
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> sets, manager_->ListSets());
  EXPECT_TRUE(sets.empty());
}

TEST_F(InspectTest, ListSetsReturnsAllInOrder) {
  std::vector<std::string> ids = BuildUpdateChain(2);
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> sets, manager_->ListSets());
  ASSERT_EQ(sets.size(), 3u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(sets[i].id, ids[i]);
    EXPECT_EQ(sets[i].approach, "update");
    EXPECT_EQ(sets[i].num_models, 12u);
    EXPECT_GT(sets[i].artifact_bytes, 0u);
  }
  EXPECT_EQ(sets[0].kind, "full");
  EXPECT_EQ(sets[1].kind, "delta");
  EXPECT_GT(sets[0].artifact_bytes, sets[1].artifact_bytes);
}

TEST_F(InspectTest, LineageWalksToRoot) {
  std::vector<std::string> ids = BuildUpdateChain(3);
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> chain,
                       manager_->Lineage(ids.back()));
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.front().id, ids.back());
  EXPECT_EQ(chain.back().id, ids.front());
  EXPECT_EQ(chain.back().kind, "full");
}

TEST_F(InspectTest, LineageOfRootIsSingleton) {
  std::vector<std::string> ids = BuildUpdateChain(0);
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> chain,
                       manager_->Lineage(ids[0]));
  EXPECT_EQ(chain.size(), 1u);
}

TEST_F(InspectTest, LineageOfUnknownIdFails) {
  BuildUpdateChain(1);
  EXPECT_TRUE(manager_->Lineage("set-xxxxx").status().IsNotFound());
}

TEST_F(InspectTest, ValidateHealthyStore) {
  BuildUpdateChain(2);
  // Mix in the other approaches.
  manager_->SaveInitial(ApproachType::kBaseline, scenario_->current_set())
      .status()
      .Check();
  manager_->SaveInitial(ApproachType::kMMlibBase, scenario_->current_set())
      .status()
      .Check();
  manager_->SaveInitial(ApproachType::kProvenance, scenario_->current_set())
      .status()
      .Check();
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager_->ValidateStore());
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  EXPECT_EQ(report.sets_checked, 6u);
  EXPECT_GT(report.blobs_checked, 6u);
}

TEST_F(InspectTest, ValidateDetectsMissingBlob) {
  std::vector<std::string> ids = BuildUpdateChain(1);
  manager_->file_store()->Delete(ids[1] + ".diff.bin").Check();
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager_->ValidateStore());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.problems[0].find("cannot read"), std::string::npos);
}

TEST_F(InspectTest, ValidateDetectsCorruptedParamBlob) {
  std::vector<std::string> ids = BuildUpdateChain(0);
  std::string blob_name = ids[0] + ".params.bin";
  auto blob = manager_->file_store()->Get(blob_name).ValueOrDie();
  blob[blob.size() / 2] ^= 0x01;
  manager_->file_store()->Put(blob_name, blob).Check();
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager_->ValidateStore());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.problems[0].find("params.bin"), std::string::npos);
}

TEST_F(InspectTest, ValidateDetectsBrokenChain) {
  // Save a delta whose base document is later removed from a *fresh* store
  // view: simulate by corrupting the WAL state via a doc referencing a
  // non-existent base. Easiest realistic path: delete the base's blobs and
  // check chain validation still reports the missing-artifact problems.
  std::vector<std::string> ids = BuildUpdateChain(1);
  manager_->file_store()->Delete(ids[0] + ".params.bin").Check();
  manager_->file_store()->Delete(ids[0] + ".arch.json").Check();
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager_->ValidateStore());
  EXPECT_FALSE(report.ok());
}

TEST_F(InspectTest, ValidateCompressedStore) {
  TempDir temp("inspect-compressed");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.blob_compression = Compression::kShuffleLz;
  auto manager = ModelSetManager::Open(options).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 6, 3));
  manager->SaveInitial(ApproachType::kUpdate, set).status().Check();
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager->ValidateStore());
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
}

TEST_F(InspectTest, CompressedRoundTripThroughManager) {
  TempDir temp("compressed-roundtrip");
  ScenarioConfig config = ScenarioConfig::Battery(10);
  config.samples_per_dataset = 32;
  MultiModelScenario scenario(config);
  scenario.Init().Check();
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  options.blob_compression = Compression::kShuffleLz;
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  std::string head = manager
                         ->SaveInitial(ApproachType::kUpdate,
                                       scenario.current_set())
                         .ValueOrDie()
                         .set_id;
  ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
  update.base_set_id = head;
  head = manager
             ->SaveDerived(ApproachType::kUpdate, scenario.current_set(), update)
             .ValueOrDie()
             .set_id;
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(head));
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      EXPECT_TRUE(recovered.models[m][p].second.Equals(
          scenario.current_set().models[m][p].second));
    }
  }
}

TEST_F(InspectTest, CompressionReducesStoredBytes) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 40, 5));
  auto run = [&](Compression codec) {
    TempDir temp("compression-size");
    ModelSetManager::Options options;
    options.root_dir = temp.path() + "/store";
    options.blob_compression = codec;
    auto manager = ModelSetManager::Open(options).ValueOrDie();
    return manager->SaveInitial(ApproachType::kBaseline, set)
        .ValueOrDie()
        .bytes_written;
  };
  EXPECT_LT(run(Compression::kShuffleLz), run(Compression::kNone));
}

}  // namespace
}  // namespace mmm
