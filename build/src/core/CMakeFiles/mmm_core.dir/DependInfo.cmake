
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/mmm_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/mmm_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/blob_formats.cc" "src/core/CMakeFiles/mmm_core.dir/blob_formats.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/blob_formats.cc.o.d"
  "/root/repo/src/core/gc.cc" "src/core/CMakeFiles/mmm_core.dir/gc.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/gc.cc.o.d"
  "/root/repo/src/core/inspect.cc" "src/core/CMakeFiles/mmm_core.dir/inspect.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/inspect.cc.o.d"
  "/root/repo/src/core/manager.cc" "src/core/CMakeFiles/mmm_core.dir/manager.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/manager.cc.o.d"
  "/root/repo/src/core/mmlib_base.cc" "src/core/CMakeFiles/mmm_core.dir/mmlib_base.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/mmlib_base.cc.o.d"
  "/root/repo/src/core/model_set.cc" "src/core/CMakeFiles/mmm_core.dir/model_set.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/model_set.cc.o.d"
  "/root/repo/src/core/provenance.cc" "src/core/CMakeFiles/mmm_core.dir/provenance.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/provenance.cc.o.d"
  "/root/repo/src/core/recommend.cc" "src/core/CMakeFiles/mmm_core.dir/recommend.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/recommend.cc.o.d"
  "/root/repo/src/core/set_codec.cc" "src/core/CMakeFiles/mmm_core.dir/set_codec.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/set_codec.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/mmm_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/streaming.cc.o.d"
  "/root/repo/src/core/update.cc" "src/core/CMakeFiles/mmm_core.dir/update.cc.o" "gcc" "src/core/CMakeFiles/mmm_core.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mmm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mmm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/mmm_prov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
