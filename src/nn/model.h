#ifndef MMM_NN_MODEL_H_
#define MMM_NN_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nn/architecture.h"
#include "nn/sequential.h"

namespace mmm {

/// Ordered qualified-name -> tensor snapshot of a model's parameters.
/// This is the persistence unit of every management approach.
using StateDict = std::vector<std::pair<std::string, Tensor>>;

/// \brief A deployable model: an architecture plus its parameter values.
///
/// Models are move-only (the network owns its layers); use Clone() to copy.
/// The management layer identifies a model inside a set purely by its index,
/// mirroring the paper's setting where model k always corresponds to battery
/// cell k across update cycles.
class Model {
 public:
  /// Builds a model with zero-initialized parameters.
  static Result<Model> Create(const ArchitectureSpec& spec);

  /// Builds a model and initializes parameters deterministically from `seed`.
  static Result<Model> CreateInitialized(const ArchitectureSpec& spec,
                                         uint64_t seed);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const ArchitectureSpec& spec() const { return spec_; }
  Sequential* network() { return network_.get(); }

  /// Runs the network in inference mode.
  Tensor Predict(const Tensor& input) { return network_->Forward(input); }

  /// Deep copy of all parameters, in deterministic order.
  StateDict GetStateDict() const;

  /// Loads parameters; keys and shapes must match the model exactly.
  Status LoadStateDict(const StateDict& state);

  /// Total scalar parameter count.
  size_t ParameterCount() const { return network_->ParameterCount(); }

  /// Deep copy (same spec, same parameters).
  Result<Model> Clone() const;

 private:
  Model(ArchitectureSpec spec, std::unique_ptr<Sequential> network)
      : spec_(std::move(spec)), network_(std::move(network)) {}

  ArchitectureSpec spec_;
  std::unique_ptr<Sequential> network_;
};

}  // namespace mmm

#endif  // MMM_NN_MODEL_H_
