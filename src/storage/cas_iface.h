#ifndef MMM_STORAGE_CAS_IFACE_H_
#define MMM_STORAGE_CAS_IFACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mmm {

/// \brief Write-path seam between StoreBatch and the content-addressed
/// chunk store (src/cas/), kept abstract here so mmm_storage never depends
/// on mmm_cas.
///
/// One session covers exactly one batch commit:
///
///   1. StoreBatch calls TransformWrite for every staged blob write (in
///      staging order, after its producer has run). The session may rewrite
///      the payload into a chunk manifest and hand back the chunk blobs the
///      batch must additionally write; chunks already live in the store or
///      already staged earlier in this batch are not returned again.
///   2. TrackDelete is called for every staged blob retirement, so deleting
///      a chunked blob decrements its chunks instead of leaking them.
///   3. After the commit is durable, Applied() folds the session's refcount
///      deltas into the index, sweeps chunks that dropped to zero, and
///      persists the index checkpoint. If the commit fails, Aborted() drops
///      the session; any chunk blobs that already landed are reclaimed by
///      the open-time orphan sweep.
class CasWriteSession {
 public:
  virtual ~CasWriteSession() = default;

  /// A chunk blob the batch must write as part of the commit.
  struct ChunkWrite {
    std::string name;
    std::vector<uint8_t> data;
  };

  /// Possibly rewrites `*data` (the payload about to be stored under
  /// `name`) into a manifest, appending the new chunk blobs to
  /// `new_chunks`. Leaves ineligible payloads untouched.
  virtual Status TransformWrite(const std::string& name,
                                std::vector<uint8_t>* data,
                                std::vector<ChunkWrite>* new_chunks) = 0;

  /// Records that the commit retires blob `name` once durable.
  virtual Status TrackDelete(const std::string& name) = 0;

  /// The commit is durable: apply refcount deltas, sweep, checkpoint.
  virtual Status Applied() = 0;

  /// The commit failed before becoming durable: discard the session.
  virtual void Aborted() = 0;
};

/// \brief Factory the batch asks for a per-commit session. Implemented by
/// CasStore (cas/cas_store.h); a null CasWriter on the batch means CAS is
/// off and every payload is stored verbatim.
class CasWriter {
 public:
  virtual ~CasWriter() = default;
  virtual std::unique_ptr<CasWriteSession> BeginSession() = 0;
};

}  // namespace mmm

#endif  // MMM_STORAGE_CAS_IFACE_H_
