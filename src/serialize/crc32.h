#ifndef MMM_SERIALIZE_CRC32_H_
#define MMM_SERIALIZE_CRC32_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace mmm {

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected).
///
/// Every blob artifact written by the approaches carries a CRC32 footer so
/// recovery can distinguish truncation/corruption from logic errors.
class Crc32 {
 public:
  /// Extends `crc` (use 0 for the first chunk) over `data`.
  static uint32_t Extend(uint32_t crc, std::span<const uint8_t> data);

  /// One-shot checksum.
  static uint32_t Compute(std::span<const uint8_t> data);
  static uint32_t Compute(std::string_view data);
};

}  // namespace mmm

#endif  // MMM_SERIALIZE_CRC32_H_
