# Empty compiler generated dependencies file for image_classifiers.
# This may be replaced when dependencies are built.
