#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status st = Status::NotFound("missing ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing 42");
  EXPECT_EQ(st.ToString(), "not-found: missing 42");
}

TEST(StatusTest, AllCodesRoundTripThroughPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "io-error");
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status st = Status::IOError("disk full");
  Status wrapped = st.WithContext("while saving set ", 7);
  EXPECT_TRUE(wrapped.IsIOError());
  EXPECT_EQ(wrapped.message(), "while saving set 7: disk full");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("irrelevant");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    MMM_RETURN_NOT_OK(Status::Corruption("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result = std::string("yes");
  EXPECT_EQ(result.ValueOr("no"), "yes");
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).ValueOrDie();
  EXPECT_EQ(*value, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("fail requested");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    MMM_ASSIGN_OR_RETURN(int value, inner(fail));
    return value * 2;
  };
  EXPECT_EQ(outer(false).ValueOrDie(), 14);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

}  // namespace
}  // namespace mmm
